"""Graph substrate: synthetic generators, adjacency matrices, and I/O.

The paper's evaluation uses Erdős–Rényi graphs with edge probability
``p_e = (1 + eps) * ln(n) / n`` (Section 5.1).  Beyond that, this package
provides the workloads the paper's introduction motivates — neighborhood
graphs over high-dimensional point clouds (Isomap / manifold learning) and
weighted network graphs — so the example applications exercise realistic
inputs.
"""

from repro.graph.generators import (
    erdos_renyi_adjacency,
    directed_erdos_renyi_adjacency,
    paper_edge_probability,
    erdos_renyi_graph,
    random_geometric_adjacency,
    grid_adjacency,
    path_adjacency,
    complete_adjacency,
    star_adjacency,
)
from repro.graph.adjacency import (
    adjacency_from_edges,
    adjacency_from_networkx,
    to_networkx,
    knn_adjacency,
    is_symmetric_adjacency,
    validate_adjacency,
    num_reachable_pairs,
)
from repro.graph.io import (LoadedGraph, save_edge_list, load_edge_list,
                            save_matrix, load_matrix, save_sparse_npz,
                            load_sparse_npz, load_graph, load_external_edges,
                            load_mtx, convert_graph)
from repro.graph.sparse import (erdos_renyi_sparse, grid_sparse, is_sparse,
                                knn_sparse, random_geometric_sparse,
                                sparse_to_blocks, sparse_to_dense,
                                validate_sparse_adjacency)

__all__ = [
    "erdos_renyi_sparse",
    "grid_sparse",
    "knn_sparse",
    "random_geometric_sparse",
    "is_sparse",
    "sparse_to_blocks",
    "sparse_to_dense",
    "validate_sparse_adjacency",
    "save_sparse_npz",
    "load_sparse_npz",
    "erdos_renyi_adjacency",
    "directed_erdos_renyi_adjacency",
    "paper_edge_probability",
    "erdos_renyi_graph",
    "random_geometric_adjacency",
    "grid_adjacency",
    "path_adjacency",
    "complete_adjacency",
    "star_adjacency",
    "adjacency_from_edges",
    "adjacency_from_networkx",
    "to_networkx",
    "knn_adjacency",
    "is_symmetric_adjacency",
    "validate_adjacency",
    "num_reachable_pairs",
    "save_edge_list",
    "load_edge_list",
    "save_matrix",
    "load_matrix",
    "LoadedGraph",
    "load_graph",
    "load_external_edges",
    "load_mtx",
    "convert_graph",
]

"""Sparse (CSR) adjacency ingestion: blocks are cut straight from CSR.

The historical ingestion path materializes every graph — however sparse — as
a dense ``n x n`` matrix on the driver before the first block is cut.  For
the near-threshold Erdős–Rényi graphs the paper evaluates
(``p_e ≈ ln(n) / n``, so ``nnz ≈ n ln n``), that dense staging dominates
driver memory long before the solve starts.  This module keeps the input in
Compressed Sparse Row form end to end:

* :func:`erdos_renyi_sparse` samples G(n, p) directly into CSR by geometric
  index skipping over the upper triangle — O(nnz) work and memory, no
  ``n x n`` Bernoulli matrix; :func:`random_geometric_sparse`,
  :func:`grid_sparse` and :func:`knn_sparse` are the CSR twins of the
  remaining dense generators (k-d tree range/nearest queries replace the
  dense pairwise-distance matrices);
* :func:`validate_sparse_adjacency` is the CSR counterpart of
  :func:`repro.graph.adjacency.validate_adjacency` (squareness, the
  algebra's weight precondition, symmetry), returning a canonical CSR that a
  :class:`~repro.core.base.SolvePlan` carries *instead of* a dense matrix;
* :func:`sparse_to_blocks` groups the stored entries by block id in one
  O(nnz) pass and emits each ``((I, J), block)`` record individually —
  dense ndarray or packed bitset per the storage policy — so peak driver
  memory during block construction is O(nnz + b²), never O(n²).

CSR semantics: a *stored* entry is an edge (its value the weight; any value
for the boolean algebra), an *unstored* cell is "no edge" (the algebra's
``zero``); the diagonal of the closure is forced to the algebra's ``one``
exactly as the dense preparation does.  Explicitly stored non-finite values
are treated as missing edges and pruned during validation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.common.validation import check_block_size, check_positive_int
from repro.linalg.algebra import Semiring, get_algebra, validate_dag_weights
from repro.linalg.blocks import (BlockId, block_shape, check_storage,
                                 encode_block, num_blocks,
                                 upper_triangular_block_ids, all_block_ids)

try:  # SciPy is a hard dependency of the package, but keep the import local.
    import scipy.sparse as _sp
    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without SciPy
    _sp = None
    _HAVE_SCIPY = False


def is_sparse(obj) -> bool:
    """True when ``obj`` is a SciPy sparse matrix/array."""
    return _HAVE_SCIPY and _sp.issparse(obj)


def _require_scipy() -> None:
    if not _HAVE_SCIPY:  # pragma: no cover - scipy ships with the package
        raise ImportError("scipy is required for sparse adjacency support")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def _sample_upper_triangle(n: int, p: float, rng) -> np.ndarray:
    """Sample strict-upper-triangle linear indices of G(n, p) in O(nnz).

    Geometric skipping: successive gaps between present pairs are
    Geometric(p), so only the ~``p * n(n-1)/2`` hits are ever touched —
    never the full Bernoulli triangle.
    """
    total = n * (n - 1) // 2
    if total == 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    chunks = []
    pos = np.int64(-1)
    # Draw skip batches sized to the expected remaining hit count.
    batch = max(1024, int(total * p * 1.1) + 16)
    while pos < total:
        steps = rng.geometric(p, size=batch)
        positions = pos + np.cumsum(steps, dtype=np.int64)
        chunks.append(positions[positions < total])
        pos = positions[-1]
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)


def _linear_to_pairs(idx: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Map strict-upper-triangle linear indices to ``(i, j)`` with ``i < j``.

    Row ``i`` owns ``n - 1 - i`` consecutive indices; the row boundary table
    has only ``n`` entries, so the inversion is a searchsorted, not algebra
    on 64-bit squares.
    """
    counts = np.arange(n - 1, 0, -1, dtype=np.int64)      # pairs per row
    offsets = np.concatenate(([0], np.cumsum(counts)))     # row start indices
    i = np.searchsorted(offsets, idx, side="right") - 1
    j = idx - offsets[i] + i + 1
    return i.astype(np.int64), j.astype(np.int64)


def erdos_renyi_sparse(n: int, *, p: float | None = None, epsilon: float = 0.1,
                       weighted: bool = True, weight_low: float = 1.0,
                       weight_high: float = 10.0,
                       seed: int | np.random.Generator | None = 0,
                       dtype: str | np.dtype | None = None):
    """Generate an undirected G(n, p) adjacency directly as a CSR matrix.

    The sparse twin of
    :func:`repro.graph.generators.erdos_renyi_adjacency`: same parameter
    surface and paper edge probability, but O(nnz) time and memory — no
    dense ``n x n`` array is ever allocated.  ``dtype="bool"`` produces a
    boolean structure-only graph for the reachability algebra.
    """
    _require_scipy()
    from repro.graph.generators import paper_edge_probability
    check_positive_int(n, "n")
    if p is None:
        p = paper_edge_probability(n, epsilon)
    if not (0.0 <= p <= 1.0):
        raise ValidationError(f"edge probability must be in [0, 1], got {p}")
    if weighted and weight_low <= 0:
        raise ValidationError("weight_low must be positive for weighted graphs")
    if weighted and weight_high < weight_low:
        raise ValidationError("weight_high must be >= weight_low")
    rng = make_rng(seed)
    idx = _sample_upper_triangle(n, float(p), rng)
    i, j = _linear_to_pairs(idx, n)
    dt = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    if dt == np.bool_:
        data = np.ones(idx.shape[0], dtype=bool)
    elif weighted:
        data = rng.uniform(weight_low, weight_high, size=idx.shape[0]).astype(dt)
    else:
        data = np.ones(idx.shape[0], dtype=dt)
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    values = np.concatenate([data, data])
    out = _sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
    out.sort_indices()
    return out


def _symmetric_csr(i: np.ndarray, j: np.ndarray, values: np.ndarray, n: int):
    """Build a symmetric CSR from one orientation of each undirected edge."""
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    data = np.concatenate([values, values])
    out = _sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    out.sort_indices()
    return out


def random_geometric_sparse(n: int, *, radius: float | None = None, dim: int = 2,
                            seed: int | np.random.Generator | None = 0):
    """Random geometric graph directly as CSR: the sparse twin of
    :func:`repro.graph.generators.random_geometric_adjacency`.

    Same point cloud and radius policy as the dense generator (identical
    graph for an identical seed), but neighbour pairs come from a k-d tree
    range query instead of the dense ``n x n`` pairwise-distance matrix, so
    time and memory are O(n log n + nnz).
    """
    _require_scipy()
    import math
    from scipy.spatial import cKDTree
    check_positive_int(n, "n")
    check_positive_int(dim, "dim")
    rng = make_rng(seed)
    if radius is None:
        # Same policy as the dense twin: expected degree around 2 ln(n).
        target_degree = max(4.0, 2.0 * math.log(max(n, 2)))
        radius = float((target_degree / max(n - 1, 1)) ** (1.0 / dim))
    points = rng.random((n, dim))
    pairs = cKDTree(points).query_pairs(float(radius), output_type="ndarray")
    i = pairs[:, 0].astype(np.int64)
    j = pairs[:, 1].astype(np.int64)
    values = np.sqrt(((points[i] - points[j]) ** 2).sum(axis=1))
    return _symmetric_csr(i, j, values, n)


def grid_sparse(rows: int, cols: int, *, weight: float = 1.0):
    """2-D grid graph directly as CSR: the sparse twin of
    :func:`repro.graph.generators.grid_adjacency`.

    4-neighbour connectivity built from vectorized index arithmetic —
    O(nnz) with no Python-level loop over cells and no dense matrix.
    """
    _require_scipy()
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    n = rows * cols
    vid = np.arange(n, dtype=np.int64).reshape(rows, cols)
    horiz_a = vid[:, :-1].reshape(-1)
    horiz_b = vid[:, 1:].reshape(-1)
    vert_a = vid[:-1, :].reshape(-1)
    vert_b = vid[1:, :].reshape(-1)
    i = np.concatenate([horiz_a, vert_a])
    j = np.concatenate([horiz_b, vert_b])
    values = np.full(i.shape[0], float(weight), dtype=np.float64)
    return _symmetric_csr(i, j, values, n)


def knn_sparse(points: np.ndarray, k: int, *, symmetrize: bool = True):
    """k-nearest-neighbour graph directly as CSR: the sparse twin of
    :func:`repro.graph.adjacency.knn_adjacency`.

    Neighbours come from a k-d tree query (``k + 1`` hits per point, the
    self-match dropped) rather than the dense pairwise-distance matrix.
    ``symmetrize=True`` keeps an edge when *either* endpoint selected the
    other — since both orientations carry the same Euclidean distance,
    that is an elementwise maximum against the transpose in CSR land
    (the unstored mirror is an implicit zero, and distances are >= 0).
    """
    _require_scipy()
    from scipy.spatial import cKDTree
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValidationError("points must be a 2-D array (n_points, n_dims)")
    n = pts.shape[0]
    check_positive_int(k, "k")
    if k >= n:
        raise ValidationError(f"k ({k}) must be smaller than the number of points ({n})")
    dists, idx = cKDTree(pts).query(pts, k=k + 1)
    # Drop each row's self-match; with duplicated points the self hit may not
    # sit in column 0, so a stable sort on the self mask keeps the k nearest
    # non-self neighbours in distance order.
    self_mask = idx == np.arange(n)[:, None]
    order = np.argsort(self_mask, axis=1, kind="stable")[:, :k]
    take = np.arange(n)[:, None]
    i = np.repeat(np.arange(n, dtype=np.int64), k)
    j = idx[take, order].reshape(-1).astype(np.int64)
    values = dists[take, order].reshape(-1)
    out = _sp.coo_matrix((values, (i, j)), shape=(n, n)).tocsr()
    if symmetrize:
        out = out.maximum(out.T).tocsr()
    out.sort_indices()
    return out


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def validate_sparse_adjacency(adjacency, *, require_symmetric: bool = False,
                              algebra: Semiring | str | None = None,
                              dtype: str | np.dtype | None = None):
    """Validate and canonicalize a SciPy sparse adjacency matrix.

    The CSR counterpart of :func:`repro.graph.adjacency.validate_adjacency`:
    checks squareness, runs the algebra's weight precondition over the stored
    values, optionally checks symmetry, prunes explicitly stored non-finite
    entries (they mean "no edge"), and casts the values to the resolved
    dtype.  Returns a canonical CSR matrix with sorted indices — *not* a
    dense matrix; the dense mapping into the algebra's domain happens
    per-block in :func:`sparse_to_blocks`.
    """
    _require_scipy()
    if not is_sparse(adjacency):
        raise ValidationError("validate_sparse_adjacency expects a scipy.sparse matrix")
    resolved = get_algebra(algebra)
    if resolved.input_validator is validate_dag_weights:
        raise ValidationError(
            f"algebra {resolved.name!r} requires a DAG (cycle) check, which the "
            "sparse ingestion path does not perform; provide a dense matrix")
    csr = adjacency.tocsr()
    if csr.ndim != 2 or csr.shape[0] != csr.shape[1]:
        raise ValidationError(f"adjacency must be square, got shape {csr.shape}")
    if csr.shape[0] == 0:
        raise ValidationError("adjacency must be non-empty")
    csr.sum_duplicates()

    # Resolve the element dtype against the algebra's policy, preserving a
    # supported input dtype just like the dense path does.
    if dtype is not None:
        dt = resolved.resolve_dtype(dtype)
    elif csr.dtype.name in resolved.dtypes:
        dt = np.dtype(csr.dtype)
    else:
        dt = np.dtype(resolved.default_dtype)

    if csr.dtype != np.bool_:
        finite = np.isfinite(csr.data)
        if not finite.all():
            # Rebuild without the non-finite entries rather than zeroing them:
            # eliminate_zeros() would also drop legitimate zero-weight edges.
            coo = csr.tocoo()
            keep = np.isfinite(coo.data)
            csr = _sp.coo_matrix(
                (coo.data[keep], (coo.row[keep], coo.col[keep])),
                shape=csr.shape).tocsr()
    resolved.validate_input(csr.data, "adjacency")

    if require_symmetric:
        if (csr != csr.T).nnz != 0:
            raise ValidationError("adjacency must be symmetric for undirected solvers")

    if dt == np.bool_:
        if csr.dtype != np.bool_:
            csr = csr.astype(bool)
    elif csr.dtype != dt:
        csr = csr.astype(dt)
    csr.sort_indices()
    return csr


# ---------------------------------------------------------------------------
# Block construction
# ---------------------------------------------------------------------------
def sparse_to_blocks(csr, block_size: int, *,
                     algebra: Semiring | str | None = None,
                     dtype: str | np.dtype | None = None,
                     storage: str = "dense",
                     upper_only: bool = True,
                     witness: bool = False,
                     single_plane: bool = False) -> Iterator[tuple[BlockId, object]]:
    """Cut a validated CSR adjacency into ``((I, J), block)`` records.

    The sparse counterpart of
    :func:`repro.linalg.blocks.matrix_to_blocks` *fused with* the algebra's
    :meth:`~repro.linalg.algebra.Semiring.prepare_adjacency` mapping: stored
    entries land in their block, unstored cells become the algebra's
    ``zero``, diagonal blocks get ``one`` on the diagonal.  Entries are
    grouped by block id in a single O(nnz) pass; each block is materialized
    (and, under ``storage="packed"``, packed) one at a time, so no dense
    ``n x n`` array ever exists — peak extra memory is O(nnz + b²).  With
    ``witness=True`` each block is emitted as a
    :class:`~repro.linalg.witness.WitnessBlock` stamped with global vertex
    ids (the ``paths=True`` ingestion path; incompatible with packed storage).
    """
    from repro.linalg import witness as witness_mod
    _require_scipy()
    algebra = get_algebra(algebra)
    check_storage(storage)
    if witness and storage == "packed":
        raise ValidationError(
            "witness tracking has no packed-bitset kernels; "
            "use storage='dense' for paths=True solves")
    if single_plane and upper_only:
        raise ValidationError(
            "single-plane witness blocks cannot be mirrored and therefore "
            "require the full block grid (upper_only=False)")
    n = csr.shape[0]
    b = check_block_size(block_size, n)
    q = num_blocks(n, b)
    dt = algebra.resolve_dtype(dtype) if dtype is not None else \
        (np.dtype(csr.dtype) if csr.dtype.name in algebra.dtypes
         else np.dtype(algebra.default_dtype))

    coo = csr.tocoo()
    rows = np.asarray(coo.row, dtype=np.int64)
    cols = np.asarray(coo.col, dtype=np.int64)
    data = coo.data
    bi = rows // b
    bj = cols // b
    if upper_only:
        # Symmetric storage: lower-triangle entries are the mirrors of stored
        # upper blocks (validation has already checked symmetry).
        keep = bi <= bj
        rows, cols, data, bi, bj = rows[keep], cols[keep], data[keep], bi[keep], bj[keep]
    key = bi * q + bj
    order = np.argsort(key, kind="stable")
    rows, cols, data, key = rows[order], cols[order], data[order], key[order]

    zero = algebra.zero_like(dt)
    one = algebra.one_like(dt)
    ids = upper_triangular_block_ids(q) if upper_only else all_block_ids(q)
    for (i, j) in ids:
        lo, hi = np.searchsorted(key, [i * q + j, i * q + j + 1])
        shape = block_shape((i, j), b, n)
        block = np.full(shape, zero, dtype=dt)
        if hi > lo:
            local_r = rows[lo:hi] - i * b
            local_c = cols[lo:hi] - j * b
            if dt == np.bool_:
                block[local_r, local_c] = True
            else:
                block[local_r, local_c] = data[lo:hi].astype(dt, copy=False)
        if i == j:
            np.fill_diagonal(block, one)
        if witness:
            yield (i, j), witness_mod.witness_block(block, i * b, j * b, algebra,
                                                    single_plane=single_plane)
        else:
            yield (i, j), encode_block(block, storage)


def sparse_to_dense(csr, *, algebra: Semiring | str | None = None) -> np.ndarray:
    """Expand a CSR adjacency to the *canonical* dense representation.

    For numeric algebras that is the historical form — ``inf`` for missing
    edges, ``0`` on the diagonal; for the boolean algebra a plain boolean
    matrix with a ``True`` diagonal.  Intended for verification and small
    inputs; this is exactly the allocation the sparse ingestion path avoids.
    """
    _require_scipy()
    algebra = get_algebra(algebra)
    n = csr.shape[0]
    coo = csr.tocoo()
    if np.dtype(algebra.default_dtype) == np.bool_ or csr.dtype == np.bool_:
        out = np.zeros((n, n), dtype=bool)
        out[coo.row, coo.col] = True
        np.fill_diagonal(out, True)
        return out
    out = np.full((n, n), np.inf, dtype=np.float64)
    out[coo.row, coo.col] = coo.data
    np.fill_diagonal(out, 0.0)
    return out

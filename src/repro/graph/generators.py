"""Synthetic graph generators used by the evaluation and the examples.

All generators return dense adjacency matrices in the representation the
solvers expect: ``float64``, ``inf`` for missing edges, ``0`` on the diagonal,
and symmetric (undirected) unless stated otherwise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.common.validation import check_positive_int

try:
    import networkx as nx  # noqa: F401 — availability probe for the nx helpers
    _HAVE_NX = True
except Exception:  # pragma: no cover
    _HAVE_NX = False


def paper_edge_probability(n: int, epsilon: float = 0.1) -> float:
    """Edge probability used in the paper: ``p_e = (1 + eps) * ln(n) / n``.

    This is just above the connectivity threshold of the Erdős–Rényi model,
    chosen by the authors so that graphs are (almost surely) connected while
    remaining fast to generate (Section 5.1).
    """
    check_positive_int(n, "n")
    if n == 1:
        return 0.0
    return min(1.0, (1.0 + epsilon) * math.log(n) / n)


def _empty_adjacency(n: int) -> np.ndarray:
    adj = np.full((n, n), np.inf, dtype=np.float64)
    np.fill_diagonal(adj, 0.0)
    return adj


def erdos_renyi_adjacency(n: int, *, p: float | None = None, epsilon: float = 0.1,
                          weighted: bool = True, weight_low: float = 1.0,
                          weight_high: float = 10.0,
                          seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Generate the adjacency matrix of an undirected Erdős–Rényi graph G(n, p).

    Parameters
    ----------
    p:
        Edge probability; defaults to the paper's
        ``(1 + epsilon) * ln(n) / n`` when omitted.
    weighted:
        When true edge weights are drawn uniformly from
        ``[weight_low, weight_high)``; otherwise all edges have weight 1.
    """
    check_positive_int(n, "n")
    if p is None:
        p = paper_edge_probability(n, epsilon)
    if not (0.0 <= p <= 1.0):
        raise ValidationError(f"edge probability must be in [0, 1], got {p}")
    if weighted and weight_low <= 0:
        raise ValidationError("weight_low must be positive for weighted graphs")
    if weighted and weight_high < weight_low:
        raise ValidationError("weight_high must be >= weight_low")
    rng = make_rng(seed)
    adj = _empty_adjacency(n)
    if n == 1 or p == 0.0:
        return adj
    # Sample only the strict upper triangle and mirror it.
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].shape[0]) < p
    if weighted:
        weights = rng.uniform(weight_low, weight_high, size=iu[0].shape[0])
    else:
        weights = np.ones(iu[0].shape[0], dtype=np.float64)
    values = np.where(mask, weights, np.inf)
    adj[iu] = values
    adj[(iu[1], iu[0])] = values
    return adj


def directed_erdos_renyi_adjacency(n: int, *, p: float | None = None,
                                   epsilon: float = 0.1, weighted: bool = True,
                                   weight_low: float = 1.0,
                                   weight_high: float = 10.0,
                                   acyclic: bool = False,
                                   seed: int | np.random.Generator | None = 0
                                   ) -> np.ndarray:
    """Generate the adjacency matrix of a *directed* Erdős–Rényi graph.

    Every ordered off-diagonal pair ``(u, v)`` gets an independent edge with
    probability ``p`` (default: the paper's ``(1 + epsilon) * ln(n) / n``),
    so ``A`` is asymmetric with overwhelming probability — the input shape
    the ``layout="full"`` block grid exists for.  With ``acyclic=True`` only
    pairs ``u < v`` are sampled, yielding a DAG (topologically ordered by
    vertex id) suitable for the longest-path algebra.
    """
    check_positive_int(n, "n")
    if p is None:
        p = paper_edge_probability(n, epsilon)
    if not (0.0 <= p <= 1.0):
        raise ValidationError(f"edge probability must be in [0, 1], got {p}")
    if weighted and weight_low <= 0:
        raise ValidationError("weight_low must be positive for weighted graphs")
    if weighted and weight_high < weight_low:
        raise ValidationError("weight_high must be >= weight_low")
    rng = make_rng(seed)
    adj = _empty_adjacency(n)
    if n == 1 or p == 0.0:
        return adj
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    if acyclic:
        mask &= np.triu(np.ones((n, n), dtype=bool), k=1)
    if weighted:
        weights = rng.uniform(weight_low, weight_high, size=(n, n))
    else:
        weights = np.ones((n, n), dtype=np.float64)
    adj[mask] = weights[mask]
    return adj


def erdos_renyi_graph(n: int, **kwargs):
    """Generate an Erdős–Rényi graph as a :class:`networkx.Graph`.

    Convenience wrapper over :func:`erdos_renyi_adjacency` for the examples.
    """
    if not _HAVE_NX:  # pragma: no cover
        raise ImportError("networkx is required for erdos_renyi_graph")
    from repro.graph.adjacency import to_networkx
    return to_networkx(erdos_renyi_adjacency(n, **kwargs))


def random_geometric_adjacency(n: int, *, radius: float | None = None, dim: int = 2,
                               seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Random geometric graph: points uniform in the unit cube, edges below ``radius``.

    Edge weights are Euclidean distances, which is exactly the neighborhood
    graph used by manifold-learning pipelines (Isomap) that motivate the
    paper; the APSP distances then approximate geodesic distances.
    """
    check_positive_int(n, "n")
    check_positive_int(dim, "dim")
    rng = make_rng(seed)
    if radius is None:
        # Choose a radius that keeps the expected degree around 2 * ln(n) so the
        # graph is connected with high probability.
        target_degree = max(4.0, 2.0 * math.log(max(n, 2)))
        radius = float((target_degree / max(n - 1, 1)) ** (1.0 / dim))
    points = rng.random((n, dim))
    diff = points[:, None, :] - points[None, :, :]
    dists = np.sqrt((diff ** 2).sum(axis=2))
    adj = np.where(dists <= radius, dists, np.inf)
    np.fill_diagonal(adj, 0.0)
    return np.asarray(adj, dtype=np.float64)


def grid_adjacency(rows: int, cols: int, *, weight: float = 1.0) -> np.ndarray:
    """2-D grid graph with ``rows * cols`` vertices and 4-neighbour connectivity."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    n = rows * cols
    adj = _empty_adjacency(n)

    def vid(r: int, c: int) -> int:
        """Map 2-D grid coordinates to a vertex id."""
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                a, b = vid(r, c), vid(r, c + 1)
                adj[a, b] = adj[b, a] = weight
            if r + 1 < rows:
                a, b = vid(r, c), vid(r + 1, c)
                adj[a, b] = adj[b, a] = weight
    return adj


def path_adjacency(n: int, *, weight: float = 1.0) -> np.ndarray:
    """Path graph 0 - 1 - ... - (n-1); distances are trivially checkable."""
    check_positive_int(n, "n")
    adj = _empty_adjacency(n)
    for i in range(n - 1):
        adj[i, i + 1] = adj[i + 1, i] = weight
    return adj


def complete_adjacency(n: int, *, weight: float = 1.0,
                       seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Complete graph; random uniform weights in (0, weight] when a seed is given."""
    check_positive_int(n, "n")
    adj = _empty_adjacency(n)
    if n == 1:
        return adj
    iu = np.triu_indices(n, k=1)
    if seed is None:
        values = np.full(iu[0].shape[0], weight, dtype=np.float64)
    else:
        rng = make_rng(seed)
        values = rng.uniform(weight / 2.0, weight, size=iu[0].shape[0])
    adj[iu] = values
    adj[(iu[1], iu[0])] = values
    return adj


def star_adjacency(n: int, *, weight: float = 1.0) -> np.ndarray:
    """Star graph with vertex 0 at the center."""
    check_positive_int(n, "n")
    adj = _empty_adjacency(n)
    for i in range(1, n):
        adj[0, i] = adj[i, 0] = weight
    return adj

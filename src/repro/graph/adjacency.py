"""Adjacency-matrix construction and conversion utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_positive_int, check_square_matrix

try:
    import networkx as nx
    _HAVE_NX = True
except Exception:  # pragma: no cover
    _HAVE_NX = False


def adjacency_from_edges(n: int, edges: Iterable[tuple[int, int] | tuple[int, int, float]],
                         *, directed: bool = False, default_weight: float = 1.0) -> np.ndarray:
    """Build a dense adjacency matrix from an edge list.

    Each edge is ``(u, v)`` or ``(u, v, weight)``.  Parallel edges keep the
    minimum weight, matching shortest-path semantics.
    """
    check_positive_int(n, "n")
    adj = np.full((n, n), np.inf, dtype=np.float64)
    np.fill_diagonal(adj, 0.0)
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            w = default_weight
        elif len(edge) == 3:
            u, v, w = edge  # type: ignore[misc]
        else:
            raise ValidationError(f"edge must have 2 or 3 elements, got {edge!r}")
        if not (0 <= u < n and 0 <= v < n):
            raise ValidationError(f"edge ({u}, {v}) out of range for n={n}")
        if w < 0:
            raise ValidationError("negative edge weights are not supported")
        adj[u, v] = min(adj[u, v], float(w))
        if not directed:
            adj[v, u] = min(adj[v, u], float(w))
    return adj


def adjacency_from_networkx(graph, *, weight: str = "weight",
                            default_weight: float = 1.0) -> np.ndarray:
    """Convert a networkx graph to the dense inf-padded adjacency representation.

    Vertices are relabelled to 0..n-1 in sorted order of the original labels.
    """
    if not _HAVE_NX:  # pragma: no cover
        raise ImportError("networkx is required")
    nodes = sorted(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    edges = []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, default_weight))
        edges.append((index[u], index[v], w))
    return adjacency_from_edges(max(n, 1), edges, directed=graph.is_directed())


def to_networkx(adjacency: np.ndarray, *, directed: bool = False):
    """Convert a dense adjacency matrix back to a networkx graph."""
    if not _HAVE_NX:  # pragma: no cover
        raise ImportError("networkx is required")
    arr = check_square_matrix(adjacency)
    n = arr.shape[0]
    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.isfinite(arr) & (arr > 0))
    for u, v in zip(rows.tolist(), cols.tolist()):
        if not directed and u > v:
            continue
        graph.add_edge(u, v, weight=float(arr[u, v]))
    return graph


def knn_adjacency(points: np.ndarray, k: int, *, symmetrize: bool = True) -> np.ndarray:
    """k-nearest-neighbour graph over a point cloud, weighted by Euclidean distance.

    This is the Isomap-style neighborhood graph from the paper's motivation
    (Section 1): APSP over this graph approximates geodesic distances on the
    underlying manifold.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValidationError("points must be a 2-D array (n_points, n_dims)")
    n = pts.shape[0]
    check_positive_int(k, "k")
    if k >= n:
        raise ValidationError(f"k ({k}) must be smaller than the number of points ({n})")
    diff = pts[:, None, :] - pts[None, :, :]
    dists = np.sqrt((diff ** 2).sum(axis=2))
    np.fill_diagonal(dists, np.inf)
    adj = np.full((n, n), np.inf, dtype=np.float64)
    neighbor_idx = np.argsort(dists, axis=1)[:, :k]
    rows = np.repeat(np.arange(n), k)
    cols = neighbor_idx.reshape(-1)
    adj[rows, cols] = dists[rows, cols]
    if symmetrize:
        adj = np.minimum(adj, adj.T)
    np.fill_diagonal(adj, 0.0)
    return adj


def is_symmetric_adjacency(adjacency) -> bool:
    """True when the adjacency is symmetric (dense or SciPy sparse).

    This is the sniff behind ``layout="auto"``: a symmetric input keeps the
    mirrored upper-triangular block storage, an asymmetric one forces the
    full grid.  Non-finite cells compare equal to each other (two ``inf``
    entries both mean "no edge"), matching the tolerance used by
    ``validate_adjacency(require_symmetric=True)``.
    """
    from repro.graph import sparse as sparse_mod
    if sparse_mod.is_sparse(adjacency):
        return (adjacency != adjacency.T).nnz == 0
    arr = np.asarray(adjacency)
    if arr.dtype == np.bool_:
        return bool(np.array_equal(arr, arr.T))
    a, at = arr, arr.T
    both_inf = np.isinf(a) & np.isinf(at)
    return bool((np.isclose(a, at) | both_inf).all())


def validate_adjacency(adjacency: np.ndarray, *, require_symmetric: bool = False,
                       algebra=None, dtype=None,
                       allow_sparse: bool = False) -> np.ndarray:
    """Validate and normalize an adjacency matrix for a path algebra.

    With the default ``algebra=None`` this is the historical (min, +)
    behaviour: a float64 matrix with non-negative weights and a zero
    diagonal.  With an algebra (name or
    :class:`~repro.linalg.algebra.Semiring`) the input is checked against the
    algebra's own weight precondition (its input-validator hook), mapped into
    its domain (missing edges become the algebra's ``zero``, the diagonal its
    ``one``) and cast to the resolved ``dtype``.

    With ``allow_sparse=True`` (the distributed solvers' ``prepare`` path —
    the callers whose block construction understands CSR) SciPy sparse
    inputs are validated *without densifying* and returned as a canonical
    CSR matrix (see :func:`repro.graph.sparse.validate_sparse_adjacency`).
    Callers that need a dense matrix keep the default and get a fail-fast
    :class:`~repro.common.errors.ValidationError` for sparse input instead
    of an obscure crash downstream.
    """
    from repro.linalg.algebra import get_algebra
    from repro.graph import sparse as sparse_mod
    if sparse_mod.is_sparse(adjacency):
        if not allow_sparse:
            raise ValidationError(
                "this solver requires a dense adjacency matrix; densify the "
                "sparse input with repro.graph.sparse_to_dense(...) or solve "
                "it with a distributed solver via APSPEngine/solve_apsp")
        return sparse_mod.validate_sparse_adjacency(
            adjacency, require_symmetric=require_symmetric,
            algebra=algebra, dtype=dtype)
    resolved = get_algebra(algebra)
    arr = check_square_matrix(adjacency, "adjacency",
                              dtype=np.float64 if algebra is None and dtype is None
                              else None)
    resolved.validate_input(arr, "adjacency")
    if require_symmetric and not is_symmetric_adjacency(arr):
        raise ValidationError("adjacency must be symmetric for undirected solvers")
    return resolved.prepare_adjacency(arr, dtype=dtype)


def num_reachable_pairs(distances: np.ndarray) -> int:
    """Count ordered pairs (i, j), i != j, with a finite shortest-path distance."""
    arr = check_square_matrix(distances, "distances")
    finite = np.isfinite(arr)
    np.fill_diagonal(finite, False)
    return int(finite.sum())

"""Simple persistence for graphs and distance matrices.

The paper's artifact ships benchmark data as edge lists; these helpers provide
an equivalent plain-text format plus ``.npy`` round-tripping for matrices.
"""

from __future__ import annotations

import os

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_square_matrix
from repro.graph.adjacency import adjacency_from_edges


def save_edge_list(adjacency: np.ndarray, path: str | os.PathLike, *,
                   directed: bool = False) -> int:
    """Write the finite, non-diagonal entries of ``adjacency`` as ``u v w`` lines.

    Returns the number of edges written.  For undirected graphs only the upper
    triangle is written.
    """
    arr = check_square_matrix(adjacency)
    n = arr.shape[0]
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# n={n} directed={int(directed)}\n")
        rows, cols = np.nonzero(np.isfinite(arr))
        for u, v in zip(rows.tolist(), cols.tolist()):
            if u == v:
                continue
            if not directed and u > v:
                continue
            fh.write(f"{u} {v} {float(arr[u, v])!r}\n")
            count += 1
    return count


def load_edge_list(path: str | os.PathLike) -> np.ndarray:
    """Load an edge list written by :func:`save_edge_list` back into a matrix."""
    n = None
    directed = False
    edges: list[tuple[int, int, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("n="):
                        n = int(token[2:])
                    elif token.startswith("directed="):
                        directed = bool(int(token[len("directed="):]))
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValidationError(f"malformed edge line: {line!r}")
            edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
    if n is None:
        n = 1 + max((max(u, v) for u, v, _ in edges), default=0)
    return adjacency_from_edges(n, edges, directed=directed)


def save_matrix(matrix: np.ndarray, path: str | os.PathLike) -> None:
    """Save a dense matrix to ``.npy``."""
    np.save(path, np.asarray(matrix, dtype=np.float64))


def load_matrix(path: str | os.PathLike) -> np.ndarray:
    """Load a dense matrix saved by :func:`save_matrix`."""
    return np.asarray(np.load(path), dtype=np.float64)


def save_sparse_npz(adjacency, path: str | os.PathLike) -> None:
    """Save a SciPy sparse adjacency matrix to ``.npz`` (CSR on disk).

    The on-disk format is :func:`scipy.sparse.save_npz`'s, so files
    round-trip with plain SciPy too; stored entries are edges, unstored
    cells "no edge" (see :mod:`repro.graph.sparse`).
    """
    import scipy.sparse as sp
    if not sp.issparse(adjacency):
        raise ValidationError("save_sparse_npz expects a scipy.sparse matrix")
    sp.save_npz(os.fspath(path), adjacency.tocsr())


def load_sparse_npz(path: str | os.PathLike):
    """Load a ``.npz`` CSR adjacency saved by :func:`save_sparse_npz` (or SciPy)."""
    import scipy.sparse as sp
    matrix = sp.load_npz(os.fspath(path))
    return matrix.tocsr()

"""Simple persistence for graphs and distance matrices.

The paper's artifact ships benchmark data as edge lists; these helpers provide
an equivalent plain-text format plus ``.npy`` round-tripping for matrices, and
converters for the two interchange formats external graph collections actually
use — whitespace edge lists (SNAP, DIMACS ``.gr``-style dumps) and MatrixMarket
coordinate files (SuiteSparse) — so downloaded datasets flow straight into the
sparse CSR ingestion path without a densifying detour.
"""

from __future__ import annotations

import os
from typing import Any, NamedTuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_square_matrix
from repro.graph.adjacency import adjacency_from_edges, is_symmetric_adjacency


class LoadedGraph(NamedTuple):
    """A loaded adjacency plus the directedness the source file resolved to.

    ``directed`` comes from the file itself — a ``directed=`` comment token,
    MatrixMarket symmetry, or (for opaque binary formats) a symmetry sniff —
    so callers can feed ``layout="auto"`` without a second pass over the data.
    """

    adjacency: Any
    directed: bool


def save_edge_list(adjacency: np.ndarray, path: str | os.PathLike, *,
                   directed: bool = False) -> int:
    """Write the finite, non-diagonal entries of ``adjacency`` as ``u v w`` lines.

    Returns the number of edges written.  For undirected graphs only the upper
    triangle is written.
    """
    arr = check_square_matrix(adjacency)
    n = arr.shape[0]
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# n={n} directed={int(directed)}\n")
        rows, cols = np.nonzero(np.isfinite(arr))
        for u, v in zip(rows.tolist(), cols.tolist()):
            if u == v:
                continue
            if not directed and u > v:
                continue
            fh.write(f"{u} {v} {float(arr[u, v])!r}\n")
            count += 1
    return count


def load_edge_list(path: str | os.PathLike) -> np.ndarray:
    """Load an edge list written by :func:`save_edge_list` back into a matrix."""
    n = None
    directed = False
    edges: list[tuple[int, int, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("n="):
                        n = int(token[2:])
                    elif token.startswith("directed="):
                        directed = bool(int(token[len("directed="):]))
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValidationError(f"malformed edge line: {line!r}")
            edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
    if n is None:
        n = 1 + max((max(u, v) for u, v, _ in edges), default=0)
    return adjacency_from_edges(n, edges, directed=directed)


def save_matrix(matrix: np.ndarray, path: str | os.PathLike) -> None:
    """Save a dense matrix to ``.npy``."""
    np.save(path, np.asarray(matrix, dtype=np.float64))


def load_matrix(path: str | os.PathLike) -> np.ndarray:
    """Load a dense matrix saved by :func:`save_matrix`."""
    return np.asarray(np.load(path), dtype=np.float64)


def save_sparse_npz(adjacency, path: str | os.PathLike) -> None:
    """Save a SciPy sparse adjacency matrix to ``.npz`` (CSR on disk).

    The on-disk format is :func:`scipy.sparse.save_npz`'s, so files
    round-trip with plain SciPy too; stored entries are edges, unstored
    cells "no edge" (see :mod:`repro.graph.sparse`).
    """
    import scipy.sparse as sp
    if not sp.issparse(adjacency):
        raise ValidationError("save_sparse_npz expects a scipy.sparse matrix")
    sp.save_npz(os.fspath(path), adjacency.tocsr())


def load_sparse_npz(path: str | os.PathLike):
    """Load a ``.npz`` CSR adjacency saved by :func:`save_sparse_npz` (or SciPy)."""
    import scipy.sparse as sp
    matrix = sp.load_npz(os.fspath(path))
    return matrix.tocsr()


# ---------------------------------------------------------------------------
# External interchange formats -> canonical CSR
# ---------------------------------------------------------------------------

def _edges_to_csr(rows, cols, vals, n: int):
    """Build a canonical CSR from COO triples, deduplicating with ``min``.

    ``scipy``'s COO->CSR conversion *sums* duplicate entries — wrong for
    edge weights, where a repeated edge should keep its best (minimum)
    weight.  Duplicates are collapsed here first: lexsort by (row, col),
    then a grouped ``np.minimum.reduceat``.  Self-loops are dropped (the
    canonical CSR stores off-diagonal edges only; the diagonal is implied
    by the algebra's ``one``).
    """
    import scipy.sparse as sp
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    keep = rows != cols
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    if rows.size:
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        first = np.empty(rows.size, dtype=bool)
        first[0] = True
        first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        starts = np.nonzero(first)[0]
        rows, cols = rows[starts], cols[starts]
        vals = np.minimum.reduceat(vals, starts)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def load_external_edges(path: str | os.PathLike, *, directed: bool = False,
                        default_weight: float = 1.0):
    """Load a plain-text edge list (SNAP/DIMACS style) as a canonical CSR.

    Accepts ``u v`` or ``u v w`` lines, whitespace- or comma-separated;
    ``#`` and ``%`` start comments.  Unweighted lines get ``default_weight``.
    Vertex ids are taken verbatim (0-based), with ``n`` inferred as the
    largest id + 1; a comment token ``n=N`` pins it explicitly and
    ``directed=0/1`` overrides the keyword (so files written by
    :func:`save_edge_list` load with the right orientation).  The default
    ``directed=False`` matches :func:`save_edge_list`,
    :func:`repro.graph.adjacency.adjacency_from_edges` and :func:`load_mtx` —
    the repo-wide canonical default.  Undirected edges are mirrored,
    duplicates keep their minimum weight, self-loops are dropped.
    """
    return _load_external_edges_resolved(
        path, directed=directed, default_weight=default_weight)[0]


def _load_external_edges_resolved(path: str | os.PathLike, *,
                                  directed: bool = False,
                                  default_weight: float = 1.0):
    """:func:`load_external_edges` body, also returning resolved directedness."""
    n: int | None = None
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            comment = line[:1] in ("#", "%")
            if comment:
                for token in line[1:].split():
                    if token.startswith("n="):
                        n = int(token[2:])
                    elif token.startswith("directed="):
                        directed = bool(int(token[len("directed="):]))
            if not line or comment:
                continue
            fields = line.replace(",", " ").split()
            if len(fields) not in (2, 3):
                raise ValidationError(
                    f"{path}:{lineno}: expected 'u v [w]', got {raw.strip()!r}")
            try:
                u, v = int(fields[0]), int(fields[1])
                w = float(fields[2]) if len(fields) == 3 else float(default_weight)
            except ValueError as exc:
                raise ValidationError(f"{path}:{lineno}: {exc}") from None
            if u < 0 or v < 0:
                raise ValidationError(
                    f"{path}:{lineno}: vertex ids must be >= 0, got ({u}, {v})")
            src.append(u)
            dst.append(v)
            wts.append(w)
    inferred = 1 + max((max(pair) for pair in zip(src, dst)), default=-1)
    if n is None:
        n = inferred
    elif inferred > n:
        raise ValidationError(
            f"{path}: vertex id {inferred - 1} out of range for declared n={n}")
    if not directed:
        src, dst = src + dst, dst + src
        wts = wts + wts
    return _edges_to_csr(src, dst, wts, n), directed


def load_mtx(path: str | os.PathLike):
    """Load a MatrixMarket coordinate file (``.mtx``) as a canonical CSR.

    Supports the ``coordinate`` layout with ``real``/``integer``/``pattern``
    fields and ``general``/``symmetric`` symmetry — the combinations the
    SuiteSparse collection's graph matrices use.  ``pattern`` entries (no
    stored value) become weight-1 edges; symmetric files are mirrored;
    indices are converted from MatrixMarket's 1-based convention.  A
    ``directed=0/1`` token in a ``%`` comment line records directedness the
    same way edge-list comments do (see :func:`_load_mtx_resolved`).
    """
    return _load_mtx_resolved(path)[0]


def _load_mtx_resolved(path: str | os.PathLike):
    """:func:`load_mtx` body, also returning resolved directedness.

    ``symmetric`` files are undirected by construction.  For ``general``
    files a ``directed=0/1`` comment token wins; without one the stored
    entries are sniffed for symmetry, so a general-symmetry export of an
    undirected graph still reports ``directed=False``.
    """
    directed: bool | None = None
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValidationError(f"{path}: missing %%MatrixMarket header")
        tokens = header.split()
        if len(tokens) < 5 or tokens[1].lower() != "matrix" \
                or tokens[2].lower() != "coordinate":
            raise ValidationError(
                f"{path}: only 'matrix coordinate' MatrixMarket files are "
                f"supported, got {header.strip()!r}")
        field = tokens[3].lower()
        symmetry = tokens[4].lower()
        if field not in ("real", "integer", "pattern"):
            raise ValidationError(
                f"{path}: unsupported MatrixMarket field {field!r} "
                "(expected real, integer or pattern)")
        if symmetry not in ("general", "symmetric"):
            raise ValidationError(
                f"{path}: unsupported MatrixMarket symmetry {symmetry!r} "
                "(expected general or symmetric)")
        dims = None
        src: list[int] = []
        dst: list[int] = []
        wts: list[float] = []
        for lineno, raw in enumerate(fh, start=2):
            line = raw.strip()
            if line.startswith("%"):
                for token in line.lstrip("%").split():
                    if token.startswith("directed="):
                        directed = bool(int(token[len("directed="):]))
                continue
            if not line:
                continue
            fields = line.split()
            if dims is None:
                if len(fields) != 3:
                    raise ValidationError(
                        f"{path}:{lineno}: expected 'rows cols nnz' size line")
                rows_count, cols_count, _ = (int(f) for f in fields)
                if rows_count != cols_count:
                    raise ValidationError(
                        f"{path}: adjacency must be square, got "
                        f"{rows_count} x {cols_count}")
                dims = rows_count
                continue
            expected = 2 if field == "pattern" else 3
            if len(fields) != expected:
                raise ValidationError(
                    f"{path}:{lineno}: expected {expected} fields, "
                    f"got {raw.strip()!r}")
            u, v = int(fields[0]) - 1, int(fields[1]) - 1
            if not (0 <= u < dims and 0 <= v < dims):
                raise ValidationError(
                    f"{path}:{lineno}: entry ({u + 1}, {v + 1}) out of range "
                    f"for n={dims}")
            w = 1.0 if field == "pattern" else float(fields[2])
            src.append(u)
            dst.append(v)
            wts.append(w)
    if dims is None:
        raise ValidationError(f"{path}: missing MatrixMarket size line")
    if symmetry == "symmetric":
        src, dst = src + dst, dst + src
        wts = wts + wts
        directed = False
    csr = _edges_to_csr(src, dst, wts, dims)
    if directed is None:
        directed = not is_symmetric_adjacency(csr)
    return csr, directed


def load_graph(path: str | os.PathLike) -> LoadedGraph:
    """Load a graph by extension, returning :class:`LoadedGraph`.

    ``.npz`` -> CSR (:func:`load_sparse_npz`), ``.npy`` -> dense
    (:func:`load_matrix`), ``.mtx`` -> CSR (:func:`load_mtx`), anything else
    -> plain-text edge list as CSR (:func:`load_external_edges`).  This is
    the single ingestion front door the CLI's ``--input`` and ``convert``
    commands use.

    The returned tuple carries the source's directedness alongside the
    adjacency: text formats resolve it from their ``directed=`` comment
    tokens (or MatrixMarket symmetry), binary formats (``.npz``/``.npy``)
    sniff structural symmetry — either way a single pass decides how
    ``layout="auto"`` should treat the graph.
    """
    name = os.fspath(path)
    lower = name.lower()
    if lower.endswith(".npz"):
        csr = load_sparse_npz(name)
        return LoadedGraph(csr, not is_symmetric_adjacency(csr))
    if lower.endswith(".npy"):
        dense = load_matrix(name)
        return LoadedGraph(dense, not is_symmetric_adjacency(dense))
    if lower.endswith(".mtx"):
        return LoadedGraph(*_load_mtx_resolved(name))
    return LoadedGraph(*_load_external_edges_resolved(name))


def convert_graph(source: str | os.PathLike, target: str | os.PathLike) -> tuple[int, int]:
    """Convert any :func:`load_graph` input into ``.npz`` CSR or ``.npy`` dense.

    Returns ``(n, nnz)`` of the converted graph.  Dense sources become CSR
    by taking their finite off-diagonal entries as edges; CSR sources become
    dense through the canonical expansion (``inf`` for missing edges).
    """
    from repro.graph import sparse as sparse_mod
    graph = load_graph(source).adjacency
    lower = os.fspath(target).lower()
    sparse = sparse_mod.is_sparse(graph)
    if lower.endswith(".npz"):
        if not sparse:
            arr = check_square_matrix(graph)
            mask = np.isfinite(arr) & ~np.eye(arr.shape[0], dtype=bool)
            rows, cols = np.nonzero(mask)
            graph = _edges_to_csr(rows, cols, arr[rows, cols], arr.shape[0])
        save_sparse_npz(graph, target)
        return graph.shape[0], int(graph.nnz)
    if lower.endswith(".npy"):
        if sparse:
            graph = sparse_mod.sparse_to_dense(graph)
        nnz = int(np.isfinite(graph).sum() - graph.shape[0])
        save_matrix(graph, target)
        return graph.shape[0], nnz
    raise ValidationError(
        f"unsupported convert target {os.fspath(target)!r} "
        "(expected .npz sparse CSR or .npy dense)")

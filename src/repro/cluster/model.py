"""Machine model of the evaluation cluster.

Defaults follow Section 5 of the paper: 32 nodes, two 16-core Skylake
processors and 192 GB of RAM per node (1,024 cores / 6 TB total), 1 TB of
local SSD per node used by Spark for shuffle staging, GbE interconnect, and a
shared GPFS file system used by the impure solvers as a broadcast channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

GIB = 1024 ** 3
MIB = 1024 ** 2


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node."""

    cores: int = 32
    memory_bytes: int = 192 * GIB
    local_storage_bytes: int = 1024 * GIB      # 1 TB SSD for Spark local staging
    #: Effective sequential SSD bandwidth for shuffle restaging (writes are
    #: absorbed by the page cache and overlap with compute, so the effective
    #: figure exceeds the raw device write rate).
    local_storage_bandwidth: float = 1024 * MIB

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("cores must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect between nodes (the paper's cluster uses GbE)."""

    bandwidth_per_node: float = 125 * MIB      # 1 Gbit/s ≈ 125 MB/s, bytes/s
    latency: float = 2.5e-4                    # per-message latency (MPI over TCP/GbE), seconds


@dataclass(frozen=True)
class SharedStorageSpec:
    """Shared persistent storage (GPFS) available to the driver and all executors."""

    write_bandwidth: float = 1024 * MIB        # aggregate write bandwidth, bytes/s
    read_bandwidth_per_node: float = 500 * MIB # per-client read bandwidth, bytes/s


@dataclass(frozen=True)
class SparkOverheadSpec:
    """Empirical Spark runtime overheads.

    ``task_overhead`` models scheduling + serialization + Python worker
    dispatch per task; ``stage_overhead`` models per-stage fixed latency
    (DAG scheduling, synchronization).  The defaults are chosen so the 2D
    Floyd-Warshall per-iteration time reported in Table 2 (~16-21 s at
    p = 1024, B = 2, essentially independent of the block size) is reproduced,
    since that solver's iterations are almost pure overhead.
    """

    task_overhead: float = 4.0e-3
    stage_overhead: float = 0.5
    collect_bandwidth: float = 125 * MIB       # executors -> driver, bytes/s
    broadcast_bandwidth: float = 125 * MIB     # driver -> executors, bytes/s


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster."""

    num_nodes: int = 32
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    shared_storage: SharedStorageSpec = field(default_factory=SharedStorageSpec)
    spark: SparkOverheadSpec = field(default_factory=SparkOverheadSpec)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")

    @property
    def total_cores(self) -> int:
        """Cores across all nodes."""
        return self.num_nodes * self.node.cores

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate RAM across all nodes."""
        return self.num_nodes * self.node.memory_bytes

    @property
    def total_local_storage_bytes(self) -> int:
        """Aggregate local (spill) storage across all nodes."""
        return self.num_nodes * self.node.local_storage_bytes

    def with_cores(self, total_cores: int) -> "ClusterSpec":
        """Return a cluster scaled to ``total_cores`` (same per-node shape).

        Used by the weak-scaling study, which varies ``p`` from 64 to 1024 on
        the same hardware by using fewer nodes.
        """
        if total_cores <= 0:
            raise ConfigurationError("total_cores must be positive")
        cores_per_node = self.node.cores
        nodes = max(1, (total_cores + cores_per_node - 1) // cores_per_node)
        return ClusterSpec(num_nodes=nodes, node=self.node, network=self.network,
                           shared_storage=self.shared_storage, spark=self.spark)


def paper_cluster() -> ClusterSpec:
    """The 32-node / 1,024-core cluster of Section 5."""
    return ClusterSpec()


def small_test_cluster() -> ClusterSpec:
    """A small cluster model for unit tests (4 nodes x 4 cores, tiny storage)."""
    return ClusterSpec(
        num_nodes=4,
        node=NodeSpec(cores=4, memory_bytes=8 * GIB, local_storage_bytes=2 * GIB),
    )

"""Analytic per-solver cost models used to project paper-scale runtimes.

Table 2 of the paper is itself a projection: the authors measure the time of a
single outer iteration at full scale and multiply by the iteration count.
Running at full scale is impossible here, so the projection goes one step
further: per-iteration times are assembled from an explicit breakdown —
per-block kernel throughput (calibrated, see
:class:`~repro.cluster.calibration.KernelCalibration`), data volumes implied
by each algorithm's structure, cluster bandwidths, Spark scheduling overheads,
and the load imbalance induced by the chosen partitioner (computed from the
partitioner's *actual* block distribution, the quantity shown in the bottom
panel of Figure 3).

The constants are documented with the observation that anchors them; the goal
is that the *shape* of the paper's results is reproduced (orderings,
crossovers, infeasibility regions), with absolute numbers in the right
ballpark.  EXPERIMENTS.md records the paper-vs-model numbers side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.calibration import KernelCalibration
from repro.cluster.model import ClusterSpec, paper_cluster, GIB
from repro.common.errors import ConfigurationError
from repro.linalg.blocks import all_block_ids, num_blocks, upper_triangular_block_ids
from repro.linalg.semiring import minplus_closure_iterations
from repro.spark.partitioner import partitioner_by_name

#: Canonical solver names understood by the cost model.
SOLVER_NAMES = ("repeated-squaring", "fw-2d", "blocked-im", "blocked-cb")

#: Block grid layouts the cost model prices (mirrors SolvePlan.layout).
LAYOUT_NAMES = ("triangular", "full")


def stored_block_count(q: int, layout: str = "triangular") -> float:
    """Blocks a ``q x q`` grid stores: ``q(q+1)/2`` triangular, ``q²`` full."""
    if layout not in LAYOUT_NAMES:
        raise ConfigurationError(
            f"unknown block layout {layout!r}; expected one of {LAYOUT_NAMES}")
    if layout == "full":
        return float(q) * q
    return q * (q + 1) / 2.0

#: Effective per-node shuffle bandwidth (bytes/s).  Although the interconnect
#: is GbE, Spark compresses shuffle blocks (early-iteration distance blocks are
#: dominated by +inf and compress extremely well) and overlaps serialization
#: with transfers, so the effective rate implied by the paper's measured
#: single-iteration times is well above the raw 125 MB/s.
DEFAULT_SHUFFLE_BANDWIDTH = 1 * GIB

#: Driver collect / shared-storage effective bandwidths (bytes/s).
DEFAULT_COLLECT_BANDWIDTH = 1 * GIB
DEFAULT_SHAREDFS_WRITE_BANDWIDTH = 1 * GIB
DEFAULT_SHAREDFS_READ_BANDWIDTH_PER_NODE = 2 * GIB


def element_bytes(algebra=None, dtype: str | None = None,
                  storage: str | None = None) -> float:
    """Bytes per matrix element implied by an (algebra, dtype, storage) triple.

    The data-volume terms of the cost model historically hardcoded 8 bytes —
    a float64 assumption.  A float32 solve moves half that, a boolean
    ``reachability`` solve one byte per cell, and a *packed-bitset*
    reachability solve one **bit** per cell (0.125 bytes).  ``storage=None``
    or ``"auto"`` resolves to the algebra's default storage, matching what a
    :class:`~repro.core.request.SolveRequest` would actually run.
    """
    from repro.linalg.algebra import get_algebra
    resolved = get_algebra(algebra)
    # resolve_storage validates the policy against the algebra (typos and
    # unsupported combinations like packed shortest-path raise, exactly as a
    # SolveRequest would, instead of silently mis-sizing the model 64x).
    if resolved.resolve_storage(storage) == "packed":
        return 1.0 / 8.0
    import numpy as np
    return float(np.dtype(resolved.resolve_dtype(dtype)).itemsize)


def rank1_update_seconds(n: int, *, algebra=None, dtype: str | None = None,
                         storage: str | None = None, orientations: int = 1,
                         witnessed: bool = False,
                         calibration: KernelCalibration | None = None) -> float:
    """Estimated seconds to relax a cached ``n x n`` closure through one edge.

    One edge insertion is a rank-1 sweep — one ⊗ and one ⊕ per closure cell,
    the min-plus rate's unit of work — per *orientation* (an undirected edge
    sweeps both directions).  Witness tracking roughly doubles the sweep (the
    parents/succs planes are gathered and rewritten alongside the values);
    narrower element storage scales the bandwidth-bound sweep by its byte
    ratio against the float64 the calibration rates were anchored on.
    """
    cal = calibration if calibration is not None else KernelCalibration.paper()
    seconds = float(n) * n * max(1, int(orientations)) / cal.minplus_rate
    if witnessed:
        seconds *= 2.0
    return seconds * element_bytes(algebra, dtype, storage) / 8.0


def full_resolve_seconds(n: int, *, algebra=None, dtype: str | None = None,
                         storage: str | None = None,
                         calibration: KernelCalibration | None = None) -> float:
    """Estimated seconds to rebuild the closure from scratch (``n^3`` sweep).

    The alternative a batched update is weighed against: the sequential
    Floyd-Warshall at the calibrated rate, scaled by the same storage byte
    ratio as :func:`rank1_update_seconds` so the comparison stays
    apples-to-apples under packed or narrow-dtype storage.
    """
    cal = calibration if calibration is not None else KernelCalibration.paper()
    seconds = float(n) ** 3 / cal.floyd_warshall_rate
    return seconds * element_bytes(algebra, dtype, storage) / 8.0


def update_break_even(n: int, *, algebra=None, dtype: str | None = None,
                      storage: str | None = None, orientations: int = 1,
                      witnessed: bool = False,
                      calibration: KernelCalibration | None = None) -> int:
    """Batch size past which a full re-closure beats per-edge rank-1 sweeps.

    ``full_resolve_seconds / rank1_update_seconds`` — roughly ``0.46 n`` for
    an undirected dense float64 shortest-path closure under the paper rates,
    i.e. dynamic maintenance wins until the batch rewrites a sizable
    fraction of the graph's rows.
    """
    per_edge = rank1_update_seconds(n, algebra=algebra, dtype=dtype,
                                    storage=storage, orientations=orientations,
                                    witnessed=witnessed, calibration=calibration)
    resolve = full_resolve_seconds(n, algebra=algebra, dtype=dtype,
                                   storage=storage, calibration=calibration)
    if per_edge <= 0.0:
        return 1
    return max(1, int(resolve / per_edge))


def predicted_task_seconds(n: int, block_size: int, *,
                           num_partitions: int | None = None,
                           algebra=None, dtype: str | None = None,
                           storage: str | None = None,
                           calibration: KernelCalibration | None = None) -> float:
    """Estimated wall seconds of one stage task (one partition's block kernels).

    The scheduler's *soft* task timeout is this prediction times
    ``EngineConfig.task_timeout_multiplier``: an attempt running far past the
    modelled kernel time is a straggler and worth speculating against.  The
    estimate is deliberately simple — blocks per partition × the calibrated
    per-block min-plus product time, scaled by element width — because it
    only needs to be the right order of magnitude (the scheduler floors the
    derived timeout well above any test-scale task wall).
    """
    cal = calibration if calibration is not None else KernelCalibration.paper()
    q = num_blocks(n, block_size)
    parts = max(1, int(num_partitions) if num_partitions else 1)
    blocks_per_task = max(1.0, float(q) * q / parts)
    per_block = float(block_size) ** 3 / cal.minplus_rate
    return blocks_per_task * per_block * element_bytes(algebra, dtype, storage) / 8.0


@dataclass
class IterationEstimate:
    """Breakdown of one outer iteration of a solver."""

    solver: str
    block_size: int
    iterations: int
    compute_seconds: float
    sequential_seconds: float
    shuffle_seconds: float
    driver_seconds: float
    sharedfs_seconds: float
    overhead_seconds: float
    imbalance_factor: float

    @property
    def single_iteration_seconds(self) -> float:
        """Sum of all per-iteration cost terms."""
        return (self.compute_seconds + self.sequential_seconds + self.shuffle_seconds
                + self.driver_seconds + self.sharedfs_seconds + self.overhead_seconds)

    @property
    def projected_total_seconds(self) -> float:
        """Single-iteration time scaled by the iteration count."""
        return self.single_iteration_seconds * self.iterations


@dataclass
class ProjectionResult:
    """Full projection for one (solver, n, b, p, partitioner, B) configuration."""

    solver: str
    n: int
    block_size: int
    p: int
    partitioner: str
    partitions_per_core: int
    iteration: IterationEstimate
    feasible: bool
    infeasibility_reason: str | None = None
    layout: str = "triangular"

    @property
    def iterations(self) -> int:
        """Outer-iteration count of the projected run."""
        return self.iteration.iterations

    @property
    def single_iteration_seconds(self) -> float:
        """Projected seconds for one outer iteration."""
        return self.iteration.single_iteration_seconds

    @property
    def projected_total_seconds(self) -> float:
        """Projected end-to-end runtime in seconds."""
        return self.iteration.projected_total_seconds

    @property
    def gops_per_core(self) -> float:
        """``n^3 / (T * p)`` in Gop/s per core — the metric of Figure 5."""
        if not self.feasible or self.projected_total_seconds <= 0:
            return 0.0
        return float(self.n) ** 3 / self.projected_total_seconds / self.p / 1e9


@dataclass
class CostModel:
    """Analytic cost model for the four Spark solvers and the two MPI baselines."""

    cluster: ClusterSpec = field(default_factory=paper_cluster)
    calibration: KernelCalibration = field(default_factory=KernelCalibration.paper)
    shuffle_bandwidth_per_node: float = DEFAULT_SHUFFLE_BANDWIDTH
    collect_bandwidth: float = DEFAULT_COLLECT_BANDWIDTH
    sharedfs_write_bandwidth: float = DEFAULT_SHAREDFS_WRITE_BANDWIDTH
    sharedfs_read_bandwidth_per_node: float = DEFAULT_SHAREDFS_READ_BANDWIDTH_PER_NODE
    #: Per-task driver-side dispatch cost and per-stage fixed cost (scheduling,
    #: synchronization, Python-worker round trips).  Anchored on the 2D
    #: Floyd-Warshall iterations of Table 2, which are nearly pure scheduling
    #: overhead (~17 s per iteration with ~2 stages x 2048 tasks at p = 1024).
    task_dispatch_seconds: float = 1.0e-3
    stage_overhead_seconds: float = 4.0
    #: Straggler slack when there is little over-decomposition: Spark can only
    #: load-balance dynamically if each core has several partitions to work
    #: through, which is why the paper insists on B >= 2 (Section 5.3).  The
    #: compute and shuffle terms are multiplied by ``1 + coefficient / B``.
    straggler_coefficient: float = 0.3
    #: When true, the model charges both orientations of each stored
    #: upper-triangular block as separate kernel invocations (Section 4 notes
    #: that symmetric storage "increases computational costs of processing
    #: tasks").  The paper's measured single-iteration times are consistent
    #: with the transpose update being obtained for free (it is the transpose
    #: of the stored update), so the default is False; Repeated Squaring always
    #: pays both roles because its column products genuinely differ.
    duplicate_transpose_work: bool = False
    #: Memo for partitioner-imbalance factors (they are pure functions of the
    #: partitioner, q and the partition count, and expensive for large q).
    _imbalance_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ helpers
    def _nodes_for(self, p: int) -> int:
        return max(1, math.ceil(p / self.cluster.node.cores))

    @staticmethod
    def _block_bytes(b: int, element_size: float = 8.0) -> float:
        return element_size * b * b

    def iteration_count(self, solver: str, n: int, block_size: int) -> int:
        """Outer iterations as counted in Table 2."""
        q = num_blocks(n, block_size)
        if solver == "repeated-squaring":
            return q * max(1, minplus_closure_iterations(n))
        if solver == "fw-2d":
            return n
        if solver in ("blocked-im", "blocked-cb"):
            return q
        raise ConfigurationError(f"unknown solver {solver!r}")

    def imbalance_factor(self, partitioner_name: str, n: int, block_size: int,
                         p: int, partitions_per_core: int,
                         layout: str = "triangular") -> float:
        """Load-imbalance multiplier implied by the partitioner's block histogram.

        The real distribution of upper-triangular block keys over partitions is
        computed exactly (the quantity shown in the bottom panel of Figure 3);
        partitions are then packed onto the ``p`` cores greedily, largest
        first, which models Spark's dynamic task scheduling.  The factor is
        the heaviest core's load relative to the mean.  With B = 1 there is
        exactly one partition per core and no scheduling freedom, so the skew
        of the Portable Hash partitioner hits with full force — the behaviour
        the paper highlights (Section 5.3).
        """
        q = num_blocks(n, block_size)
        partitions = max(1, p * partitions_per_core)
        cache_key = (partitioner_name.upper(), q, partitions, p, layout)
        if cache_key in self._imbalance_cache:
            return self._imbalance_cache[cache_key]
        partitioner = partitioner_by_name(partitioner_name, partitions, q)
        block_ids = (all_block_ids(q) if layout == "full"
                     else upper_triangular_block_ids(q))
        counts = partitioner.distribution(block_ids)
        total = counts.sum()
        if total == 0:
            return 1.0
        # Greedy longest-processing-time packing of partitions onto cores.
        cores = np.zeros(min(p, int(total)) or 1, dtype=np.int64)
        for load in sorted(counts.tolist(), reverse=True):
            if load == 0:
                break
            cores[np.argmin(cores)] += load
        mean = total / cores.shape[0]
        factor = float(max(1.0, cores.max() / max(mean, 1e-12)))
        self._imbalance_cache[cache_key] = factor
        return factor

    # ------------------------------------------------------------------ Spark solvers
    def estimate_iteration(self, solver: str, n: int, block_size: int, p: int, *,
                           partitioner: str = "MD",
                           partitions_per_core: int = 2,
                           algebra=None, dtype: str | None = None,
                           storage: str | None = None,
                           layout: str = "triangular") -> IterationEstimate:
        """Estimate one outer iteration of a Spark solver at cluster scale.

        ``algebra``/``dtype``/``storage`` size both the data-volume and the
        kernel terms: the defaults keep the historical float64
        (8 bytes/element) projection bit-for-bit, ``dtype="float32"`` halves
        every transfer *and* the (memory-bandwidth-bound) block kernels, and
        a packed-bitset reachability solve moves 1/64th of the float64
        volume while its word-parallel kernels run at the packed element
        width.  ``layout`` prices the block grid: the full (directed) grid
        stores — and therefore computes, shuffles and spills — roughly twice
        the blocks of the mirrored upper triangle at the same ``b``.
        """
        if solver not in SOLVER_NAMES:
            raise ConfigurationError(f"unknown solver {solver!r}")
        q = num_blocks(n, block_size)
        b = block_size
        nodes = self._nodes_for(p)
        partitions = max(1, p * partitions_per_core)
        element_size = element_bytes(algebra, dtype, storage)
        block_bytes = self._block_bytes(b, element_size)
        stored_blocks = stored_block_count(q, layout)
        role_factor = 2.0 if self.duplicate_transpose_work else 1.0
        imbalance = self.imbalance_factor(partitioner, n, block_size, p,
                                          partitions_per_core, layout)
        imbalance *= 1.0 + self.straggler_coefficient / max(1, partitions_per_core)
        iterations = self.iteration_count(solver, n, block_size)

        # The per-core kernel rates were anchored on float64 operands; the
        # block kernels are memory-bandwidth-bound, so narrower elements
        # speed them up by their byte ratio (packed reachability kernels are
        # word-parallel: 64 cells per uint64 op).
        kernel_scale = element_size / 8.0
        mp_rate = self.calibration.minplus_rate / kernel_scale
        fw_rate = self.calibration.floyd_warshall_rate / kernel_scale
        def sched(stages, tasks):
            """Driver scheduling overhead for a stage/task mix."""
            return (stages * self.stage_overhead_seconds
                    + tasks * self.task_dispatch_seconds)

        sequential = 0.0
        compute = 0.0
        shuffle = 0.0
        driver = 0.0
        sharedfs = 0.0
        overhead = 0.0

        if solver == "fw-2d":
            # Rank-1 update of every stored block: b^2 work per block.
            update_ops = stored_blocks * role_factor * float(b) ** 2
            compute = update_ops / mp_rate / p * imbalance
            # The broadcast pivot column is a dense vector even under packed
            # block storage, so it is sized by the element dtype alone.
            column_bytes = max(element_size, 1.0) * n
            driver = column_bytes / self.collect_bandwidth \
                + column_bytes * nodes / self.cluster.spark.broadcast_bandwidth
            overhead = sched(stages=2, tasks=2 * partitions)
        elif solver == "repeated-squaring":
            # One iteration = one column-block sweep: every stored block performs a
            # min-plus product per role (both roles are genuine work here),
            # contributions are shuffled for the MatMin reduction, and the staged
            # column is read from shared storage.
            products = stored_blocks * 2.0
            compute = products * float(b) ** 3 / mp_rate / p * imbalance
            contribution_bytes = products * block_bytes
            shuffle = contribution_bytes / nodes / self.shuffle_bandwidth_per_node
            column_bytes = q * block_bytes
            driver = column_bytes / self.collect_bandwidth
            sharedfs = column_bytes / self.sharedfs_write_bandwidth + \
                contribution_bytes / nodes / self.sharedfs_read_bandwidth_per_node
            overhead = sched(stages=3, tasks=3 * partitions)
        else:
            # Blocked methods share the three-phase structure.
            sequential = float(b) ** 3 / fw_rate                       # phase 1 pivot block
            phase2_products = 2.0 * (q - 1) * role_factor
            phase3_products = max(0.0, stored_blocks - 2 * (q - 1) - 1) * role_factor
            # Granularity: phase 2 rarely has enough tasks to fill p cores.
            phase2_time = math.ceil(phase2_products / p) * float(b) ** 3 / mp_rate
            phase3_time = phase3_products * float(b) ** 3 / mp_rate / p * imbalance
            compute = phase2_time + phase3_time
            if solver == "blocked-im":
                # Phase-2 diagonal copies go to the q-1 row/column blocks; phase-3
                # copies deliver the two operands of every stored off-pivot block.
                phase3_blocks = max(0.0, stored_blocks - 2 * (q - 1) - 1)
                copies_volume = ((q - 1) + 2.0 * phase3_blocks) * block_bytes
                repartition_volume = stored_blocks * block_bytes
                shuffle = (copies_volume + repartition_volume) / nodes \
                    / self.shuffle_bandwidth_per_node * imbalance
                overhead = sched(stages=4, tasks=4 * partitions)
            else:  # blocked-cb
                collected = (2.0 * (q - 1) + 1.0) * block_bytes
                driver = collected / self.collect_bandwidth
                reads = 2.0 * stored_blocks * block_bytes
                sharedfs = collected / self.sharedfs_write_bandwidth + \
                    reads / nodes / self.sharedfs_read_bandwidth_per_node
                restage = stored_blocks * block_bytes / nodes \
                    / self.cluster.node.local_storage_bandwidth
                shuffle = restage
                overhead = sched(stages=3, tasks=3 * partitions)

        return IterationEstimate(
            solver=solver, block_size=block_size, iterations=iterations,
            compute_seconds=compute, sequential_seconds=sequential,
            shuffle_seconds=shuffle, driver_seconds=driver,
            sharedfs_seconds=sharedfs, overhead_seconds=overhead,
            imbalance_factor=imbalance,
        )

    def spill_per_node_bytes(self, solver: str, n: int, block_size: int, p: int, *,
                             algebra=None, dtype: str | None = None,
                             storage: str | None = None,
                             layout: str = "triangular") -> float:
        """Cumulative local-storage spill per node over the whole run (Blocked-IM only)."""
        if solver != "blocked-im":
            return 0.0
        q = num_blocks(n, block_size)
        block_bytes = self._block_bytes(block_size,
                                        element_bytes(algebra, dtype, storage))
        stored_blocks = stored_block_count(q, layout)
        phase3_blocks = max(0.0, stored_blocks - 2 * (q - 1) - 1)
        per_iter = ((q - 1) + 2.0 * phase3_blocks + stored_blocks) * block_bytes
        return per_iter * q / self._nodes_for(p)

    def project(self, solver: str, n: int, block_size: int, p: int, *,
                partitioner: str = "MD", partitions_per_core: int = 2,
                algebra=None, dtype: str | None = None,
                storage: str | None = None,
                layout: str = "triangular") -> ProjectionResult:
        """Project the full runtime of a Spark solver configuration."""
        iteration = self.estimate_iteration(solver, n, block_size, p,
                                            partitioner=partitioner,
                                            partitions_per_core=partitions_per_core,
                                            algebra=algebra, dtype=dtype,
                                            storage=storage, layout=layout)
        feasible = True
        reason = None
        if solver == "blocked-im":
            spill = self.spill_per_node_bytes(solver, n, block_size, p,
                                              algebra=algebra, dtype=dtype,
                                              storage=storage, layout=layout)
            capacity = self.cluster.node.local_storage_bytes
            if spill > capacity:
                feasible = False
                reason = (f"local storage exhausted: {spill / GIB:.0f} GiB spilled per node "
                          f"> {capacity / GIB:.0f} GiB available")
        memory_needed = (3.0 * element_bytes(algebra, dtype, storage)
                         * float(n) * n / self._nodes_for(p))
        if memory_needed > self.cluster.node.memory_bytes:
            feasible = feasible and True  # memory pressure is absorbed by spilling in Spark
        return ProjectionResult(
            solver=solver, n=n, block_size=block_size, p=p, partitioner=partitioner,
            partitions_per_core=partitions_per_core, iteration=iteration,
            feasible=feasible, infeasibility_reason=reason, layout=layout,
        )

    def best_block_size(self, solver: str, n: int, p: int, *,
                        candidates=(256, 512, 768, 1024, 1280, 1536, 2048, 2560, 4096),
                        partitioner: str = "MD",
                        partitions_per_core: int = 2,
                        algebra=None, dtype: str | None = None,
                        storage: str | None = None,
                        layout: str = "triangular") -> ProjectionResult:
        """Pick the feasible block size with the smallest projected total (Table 3 tuning).

        Every per-candidate estimate is priced under the *requested*
        ``storage``/``layout`` policy — a packed-bitset or full-grid sweep
        compares candidates on its own spill walls and kernel rates instead
        of the dense-triangular ones (which used to hide, e.g., that a
        packed Blocked-IM stays feasible at block sizes whose dense twin
        has already hit the local-storage wall).
        """
        best: ProjectionResult | None = None
        for b in candidates:
            if b > n:
                continue
            result = self.project(solver, n, b, p, partitioner=partitioner,
                                  partitions_per_core=partitions_per_core,
                                  algebra=algebra, dtype=dtype, storage=storage,
                                  layout=layout)
            if not result.feasible:
                continue
            if best is None or result.projected_total_seconds < best.projected_total_seconds:
                best = result
        if best is None:
            # Return the least-bad infeasible configuration so callers can report it.
            return self.project(solver, n, min(max(candidates), n), p,
                                partitioner=partitioner,
                                partitions_per_core=partitions_per_core,
                                algebra=algebra, dtype=dtype, storage=storage,
                                layout=layout)
        return best

    # ------------------------------------------------------------------ dynamic updates
    def rank1_update_seconds(self, n: int, **kwargs) -> float:
        """Per-edge incremental-update estimate under this model's calibration."""
        return rank1_update_seconds(n, calibration=self.calibration, **kwargs)

    def full_resolve_seconds(self, n: int, **kwargs) -> float:
        """Full re-closure estimate under this model's calibration."""
        return full_resolve_seconds(n, calibration=self.calibration, **kwargs)

    def update_break_even(self, n: int, **kwargs) -> int:
        """Incremental-vs-resolve break-even batch size under this calibration."""
        return update_break_even(n, calibration=self.calibration, **kwargs)

    # ------------------------------------------------------------------ baselines
    def sequential_seconds(self, n: int) -> float:
        """T1: single-core SciPy Floyd-Warshall."""
        return self.calibration.sequential_apsp_seconds(n)

    def mpi_fw2d_seconds(self, n: int, p: int, *,
                         algebra=None, dtype: str | None = None,
                         storage: str | None = None) -> float:
        """FW-2D-GbE: n iterations of (2 grid broadcasts + rank-1 update of the local block).

        The broadcast follows the straightforward implementation the paper
        describes as "naive": the segment owner sends to each of the ``g - 1``
        peers in its grid row/column point-to-point, so the latency term grows
        linearly in the grid dimension — the behaviour the paper blames for
        the solver's poor scaling (Section 5.5).  Like the Spark-solver
        estimates, the broadcast volume is sized by
        :func:`element_bytes` — the defaults keep the historical 8-byte
        float64 projection; narrower dtypes shrink the bandwidth term
        proportionally (latency and compute are element-size independent).
        """
        g = max(1, int(round(math.sqrt(p))))
        local = n / g
        net = self.cluster.network
        element_size = element_bytes(algebra, dtype, storage)
        bcast = (g - 1) * (net.latency
                           + element_size * local / net.bandwidth_per_node)
        update = local * local / self.calibration.floyd_warshall_rate
        return n * (2.0 * bcast + update)

    def mpi_dc_seconds(self, n: int, p: int, *,
                       algebra=None, dtype: str | None = None,
                       storage: str | None = None) -> float:
        """DC-GbE: communication-avoiding divide & conquer (Solomonik et al.).

        Compute is ``~n^3 / p`` at the optimized kernel rate; communication is
        the 2D lower bound ``O(n^2 / sqrt(p))`` words plus ``O(sqrt(p) log^2 p)``
        messages.  The bandwidth term is sized by :func:`element_bytes`
        (historically a hardcoded 8 bytes/word); latency and compute are
        element-size independent.
        """
        net = self.cluster.network
        element_size = element_bytes(algebra, dtype, storage)
        compute = float(n) ** 3 / p / self.calibration.dc_optimized_rate
        bandwidth_term = (element_size * float(n) ** 2 / math.sqrt(p)
                          / net.bandwidth_per_node)
        latency_term = math.sqrt(p) * (math.log2(max(2, p)) ** 2) * net.latency
        return compute + bandwidth_term + latency_term

    # ------------------------------------------------------------------ experiment-level helpers
    def weak_scaling(self, *, vertices_per_core: int = 256,
                     core_counts=(64, 128, 256, 512, 1024),
                     partitioner: str = "MD",
                     partitions_per_core: int = 2) -> list[dict]:
        """Reproduce Table 3 / Figure 5: weak scaling with ``n = vertices_per_core * p``."""
        rows: list[dict] = []
        for p in core_counts:
            n = vertices_per_core * p
            im = self.best_block_size("blocked-im", n, p, partitioner=partitioner,
                                      partitions_per_core=partitions_per_core)
            cb = self.best_block_size("blocked-cb", n, p, partitioner=partitioner,
                                      partitions_per_core=partitions_per_core)
            row = {
                "p": p,
                "n": n,
                "blocked-im": im,
                "blocked-cb": cb,
                "fw-2d-mpi_seconds": self.mpi_fw2d_seconds(n, p),
                "dc-mpi_seconds": self.mpi_dc_seconds(n, p),
                "sequential_reference_seconds": self.sequential_seconds(vertices_per_core),
            }
            rows.append(row)
        return rows

    def gops_per_core(self, n: int, p: int, seconds: float) -> float:
        """Normalized throughput ``n^3 / (T p)`` in Gop/s, as plotted in Figure 5."""
        if seconds <= 0:
            return 0.0
        return float(n) ** 3 / seconds / p / 1e9

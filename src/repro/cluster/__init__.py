"""Cluster model and analytic cost models for paper-scale projections.

The paper's largest experiments (n = 262,144 on 1,024 cores) cannot be run in
this environment; the evaluation itself, however, already relies on
projection — Table 2 multiplies measured single-iteration times by iteration
counts.  This package provides the same construction: a machine model of the
paper's cluster (:mod:`repro.cluster.model`), kernel-rate calibration either
measured on the host or fixed to the paper's reported sequential throughput
(:mod:`repro.cluster.calibration`), and per-solver analytic cost models that
combine compute, network, storage and Spark-overhead terms
(:mod:`repro.cluster.costmodel`).

:mod:`repro.cluster.fitting` closes the loop in the other direction: it
regresses the *measured* ``BENCH_*.json`` archives into per-unit machine
constants (``apspark bench calibrate``) that the auto-tuner
(:mod:`repro.core.tuner`) uses to resolve ``solver="auto"`` requests.
"""

from repro.cluster.model import (
    NodeSpec,
    NetworkSpec,
    SharedStorageSpec,
    SparkOverheadSpec,
    ClusterSpec,
    paper_cluster,
    small_test_cluster,
)
from repro.cluster.calibration import KernelCalibration, measure_kernel_times
from repro.cluster.costmodel import (
    CostModel,
    IterationEstimate,
    ProjectionResult,
    SOLVER_NAMES,
    element_bytes,
    stored_block_count,
)
from repro.cluster.fitting import (
    CALIBRATION_SCHEMA_VERSION,
    Observation,
    accuracy_report,
    build_calibration,
    extract_observations,
    fit_constants,
    load_calibration,
    paper_constants,
    predict_seconds,
    scenario_features,
    validate_calibration,
    write_calibration,
)

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "SharedStorageSpec",
    "SparkOverheadSpec",
    "ClusterSpec",
    "paper_cluster",
    "small_test_cluster",
    "KernelCalibration",
    "measure_kernel_times",
    "element_bytes",
    "CostModel",
    "IterationEstimate",
    "ProjectionResult",
    "SOLVER_NAMES",
    "stored_block_count",
    "CALIBRATION_SCHEMA_VERSION",
    "Observation",
    "accuracy_report",
    "build_calibration",
    "extract_observations",
    "fit_constants",
    "load_calibration",
    "paper_constants",
    "predict_seconds",
    "scenario_features",
    "validate_calibration",
    "write_calibration",
]

"""Fit the cost model's machine constants against archived bench results.

The cluster cost model (:mod:`repro.cluster.costmodel`) projects *paper-scale*
runtimes from paper-anchored constants; the bench subsystem records *measured*
walls on this host (``BENCH_<suite>.json``).  This module closes the loop
between the two — the cost-vs-actual calibration idiom: express each archived
scenario's wall time as a linear combination of **structural features**
(kernel element-ops by algebra × dtype × storage, scheduler stages and tasks
by backend, staging/IPC byte volumes, serving row solves, fault retries) and
regress the per-unit machine constants with a non-negative least squares fit.

The design constraint that shapes everything here: features must be
computable from a scenario's *parameters alone* — never from its measured
metrics — so the very same feature extractor prices configurations that were
never benchmarked.  That is what lets the auto-tuner
(:mod:`repro.core.tuner`) rank candidate (solver, block size, storage,
layout, backend) configurations for an unseen problem with the fitted
constants.

The fit is deterministic: NNLS (Lawson–Hanson active set) over a fixed
row/column ordering with fixed relative-error weights, constants rounded to
12 significant digits before serialization.  Re-running ``apspark bench
calibrate`` over the same archives reproduces ``benchmarks/calibration.json``
bit for bit — the golden-file regression test depends on it.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.costmodel import element_bytes, stored_block_count
from repro.common.errors import ConfigurationError, ValidationError
from repro.linalg.algebra import get_algebra
from repro.linalg.semiring import closure_iterations

#: Bump when the calibration document layout changes incompatibly.
CALIBRATION_SCHEMA_VERSION = 1

#: Keys every calibration document must carry to be considered well-formed.
_REQUIRED_KEYS = ("schema_version", "constants", "accuracy")

#: Noise floor for relative-error weighting: scenarios faster than this are
#: scheduler-jitter territory and should not dominate the fit.
WALL_FLOOR_SECONDS = 2e-3

#: Significant digits kept when serializing fitted constants.  Enough to be
#: lossless for prediction purposes while shaving the low-order bits where
#: BLAS builds legitimately differ across platforms.
_ROUND_DIGITS = 12

#: Engine backends the task/crash constants are keyed by.
BACKENDS = ("serial", "threads", "processes")

#: Last-resort per-unit constants used when a feature was never observed in
#: the fitted archives (or when no calibration file exists at all).  They are
#: paper-flavoured orders of magnitude, not measurements — the tuner still
#: ranks candidates sensibly with them, just less sharply.
FALLBACK_SECONDS_PER_UNIT = {
    "ops": 8.0 / 0.70e9,        # per float64-equivalent byte of kernel work
    "stages": 3.0e-4,
    "tasks": 1.5e-5,
    "bytes": 2.0e-8,
    "bytes:ipc": 4.0e-8,
    "taskbytes": 5.0e-9,
    "driver": 3.0e-4,
    "kernels": 1.5e-4,
    "update_edges": 4.0e-4,
    "serve_cells": 5.0e-8,
    "serve_queries": 6.0e-6,
    "failures": 5.0e-3,
    "crashes": 2.0e-2,
}


def ops_key(algebra, dtype: str | None = None, storage: str | None = None,
            *, paths: bool = False) -> str:
    """Canonical kernel-rate key for an (algebra, dtype, storage) triple."""
    resolved = get_algebra(algebra)
    dtype_name = resolved.resolve_dtype(dtype).name
    storage_name = resolved.resolve_storage(storage, paths=paths)
    return f"ops:{resolved.name}|{dtype_name}|{storage_name}"


@dataclass
class Observation:
    """One archived scenario: its structural features and its measured wall."""

    suite: str
    scenario_id: str
    wall_seconds: float
    features: dict[str, float] = field(default_factory=dict)
    params: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Structural feature extraction
# ---------------------------------------------------------------------------
def _resolved_policies(params: dict) -> tuple:
    """Resolve (algebra, dtype, storage, layout, paths, directed) like a request."""
    algebra = get_algebra(params.get("algebra", "shortest-path"))
    paths = bool(params.get("paths", False))
    directed = bool(params.get("directed", False))
    dtype = algebra.resolve_dtype(params.get("dtype")).name
    storage = algebra.resolve_storage(params.get("storage"), paths=paths)
    layout = algebra.resolve_layout(params.get("layout"), directed=directed)
    if layout == "auto":
        # Bench graphs are symmetric unless the scenario is directed; mirror
        # the prepare()-time sniff structurally.
        layout = "full" if directed else "triangular"
    return algebra, dtype, storage, layout, paths, directed


def _resolved_geometry(params: dict, layout: str) -> tuple[int, int, int, int]:
    """(n, block_size, q, num_partitions) as the engine would resolve them."""
    from repro.core.base import auto_block_size  # deferred: core imports cluster

    n = int(params.get("n", 0))
    if n < 1:
        raise ConfigurationError(f"scenario params carry no problem size: {params!r}")
    total_cores = (max(1, int(params.get("num_executors", 2)))
                   * max(1, int(params.get("cores_per_executor", 2))))
    ppc = max(1, int(params.get("partitions_per_core", 2)))
    block = params.get("block_size")
    if block is None:
        block = auto_block_size(n, total_cores, ppc, layout=layout)
    block = max(1, min(int(block), n))
    q = int(math.ceil(n / block))
    partitions = int(params.get("num_partitions") or total_cores * ppc)
    return n, block, q, partitions


def _solver_shape(solver: str, n: int, block: int, q: int, stored: float,
                  element_size: float) -> tuple[float, float, float, float, dict]:
    """(ops, stages, bytes, kernel calls, driver features) for one solve.

    The shapes mirror the real schedulers.  ``stages`` is a *weighted*
    scheduler-overhead count: both blocked methods charge four data-moving
    stages per outer iteration (Blocked-IM's extra phases are metadata-only
    and measure free), scaled by ``stored / tri_stored`` because per-stage
    block handling grows with the stored grid.  FW-2D's per-pivot column
    extraction and repeated squaring's driver-side block union are genuinely
    different driver operations, so they get their own ``driver:<solver>``
    features with independently fitted rates.  Byte volumes follow each
    solver's per-iteration collect/restage/copy structure (the same
    construction as :meth:`CostModel.estimate_iteration`, without the
    cluster-bandwidth division — the fit learns the effective local rate).
    """
    b3 = float(block) ** 3
    block_bytes = element_size * block * block
    tri_stored = q * (q + 1) / 2.0
    if solver in ("blocked-cb", "blocked-im"):
        iterations = q
        products = 1.0 + 2.0 * (q - 1) + max(0.0, stored - 2.0 * (q - 1) - 1.0)
        ops = iterations * products * b3
        stages = (4.0 * q + 1.0) * (stored / tri_stored)
        if solver == "blocked-cb":
            bytes_moved = iterations * block_bytes * (stored + 2.0 * q - 1.0)
        else:
            phase3 = max(0.0, stored - 2.0 * (q - 1) - 1.0)
            bytes_moved = iterations * block_bytes * (
                4.0 * stored + (q - 1.0) + 2.0 * phase3)
        return ops, stages, bytes_moved, iterations * products, {}
    if solver == "fw-2d":
        ops = float(n) * stored * float(block) ** 2
        stages = float(n) + 4.0
        bytes_moved = 2.0 * float(n) * n * element_size  # pivot column out+back
        driver = {"driver:fw-2d": float(n) * stored / q}
        return ops, stages, bytes_moved, float(n) * stored, driver
    if solver == "repeated-squaring":
        iterations = max(1, closure_iterations(n))
        ops = iterations * 2.0 * stored * b3
        stages = 7.0 * iterations + 1.0
        bytes_moved = iterations * block_bytes * (3.0 * stored + q)
        driver = {"driver:repeated-squaring": float(iterations) * stored}
        return ops, stages, bytes_moved, iterations * 2.0 * stored, driver
    raise ConfigurationError(f"unknown solver {solver!r}")


def _expected_distinct_sources(n: int, queries: int, query_sources: int) -> float:
    """Expected number of distinct queried sources in a replayed stream."""
    pool = min(query_sources, n) if query_sources > 0 else n
    if pool <= 0:
        return 0.0
    # Uniform draws with replacement from `pool` sources.
    return float(pool) * (1.0 - (1.0 - 1.0 / pool) ** max(0, queries))


def scenario_features(params: dict, *, cpu_count: int = 1) -> dict[str, float]:
    """Structural cost features of one scenario, from its parameters alone.

    ``cpu_count`` is the *physical* parallelism of the host the constants
    describe: the kernel-ops features are divided by the effective worker
    parallelism ``min(total_cores, cpu_count)`` for the threads/processes
    backends (the serial backend always runs on one core).  Every feature is
    a plain non-negative number; the predicted wall is the dot product with
    the fitted per-unit constants.
    """
    algebra, dtype, storage, layout, paths, directed = _resolved_policies(params)
    n, block, q, partitions = _resolved_geometry(params, layout)
    stored = stored_block_count(q, layout)
    element_size = element_bytes(algebra, dtype, storage)
    solver = str(params.get("solver", "blocked-cb"))
    backend = str(params.get("backend", "serial"))
    if backend not in BACKENDS:
        raise ConfigurationError(f"unknown backend {backend!r}")
    total_cores = (max(1, int(params.get("num_executors", 2)))
                   * max(1, int(params.get("cores_per_executor", 2))))
    parallelism = 1.0 if backend == "serial" else float(
        max(1, min(total_cores, max(1, int(cpu_count)))))

    ops, stages, bytes_moved, kernel_calls, driver = _solver_shape(
        solver, n, block, q, stored, element_size)
    if paths:
        # Witness tracking doubles the kernel work (paired value/parent
        # kernels), the moved volume, and the per-stage block handling —
        # every stage now touches two planes per block.
        ops *= 2.0
        bytes_moved *= 2.0
        stages *= 2.0
        kernel_calls *= 2.0

    solves = 1.0
    update_edges = 0.0
    # -- update workload: per-edge driver sweeps or a full re-solve
    update_batch = int(params.get("update_batch", 0) or 0)
    if str(params.get("workload", "solve")) == "update" and update_batch > 0:
        orientations = 1 if directed else 2
        mode = str(params.get("update_mode", "auto"))
        if mode == "auto":
            from repro.cluster.costmodel import update_break_even
            break_even = update_break_even(
                n, algebra=algebra, dtype=dtype, storage=storage,
                orientations=orientations, witnessed=paths)
            mode = "resolve" if (update_batch >= break_even
                                 or not algebra.absorptive) else "incremental"
        if mode == "resolve":
            solves += 1.0
        else:
            sweep = 2.0 if paths else 1.0
            ops += update_batch * float(n) * n * orientations * sweep
        # Classification and application carry a fixed driver cost per edge
        # in either mode.
        update_edges = float(update_batch)

    ops *= solves
    stages *= solves
    bytes_moved *= solves
    kernel_calls *= solves
    tasks = stages * partitions

    features: dict[str, float] = {
        ops_key(algebra, dtype, storage, paths=paths): ops / parallelism,
        f"stages:{backend}": stages,
        f"tasks:{backend}": tasks,
        "bytes": bytes_moved,
    }
    for key, value in driver.items():
        features[key] = value * solves
    if backend == "processes":
        # Every byte crosses a pickle + pipe boundary on top of the normal
        # staging cost.
        features["bytes:ipc"] = bytes_moved
    if backend == "threads":
        # Future dispatch plus GIL handoff per task scales with the block
        # payload each task carries.
        features["taskbytes:threads"] = tasks * element_size * block * block
    if storage == "packed":
        # Bitset pack/unpack is a fixed cost per kernel invocation that
        # dominates at small blocks.
        features["kernels:packed"] = kernel_calls
    if update_edges > 0.0:
        features["update_edges"] = update_edges

    # -- serve workload: lazy parent-row solves + per-query walk overhead
    queries = int(params.get("queries", 0) or 0)
    if str(params.get("workload", "solve")) == "serve" and queries > 0:
        sources = _expected_distinct_sources(
            n, queries, int(params.get("query_sources", 0) or 0))
        cache_rows = params.get("cache_rows")
        rows = sources
        if cache_rows is not None and 0 < int(cache_rows) < sources:
            # Steady-state LRU under uniform access: misses re-solve rows.
            miss_rate = 1.0 - float(cache_rows) / sources
            rows += max(0.0, queries - sources) * miss_rate
        features["serve_cells"] = rows * float(n) * n
        features["serve_queries"] = float(queries)

    # -- fault injection: retries and pool rebuilds scale with task count
    failure_rate = float(params.get("failure_rate", 0.0) or 0.0)
    crash_rate = float(params.get("crash_rate", 0.0) or 0.0)
    if failure_rate > 0.0:
        features["failures"] = failure_rate * tasks
    if crash_rate > 0.0:
        features[f"crashes:{backend}"] = crash_rate * tasks
    return {key: float(value) for key, value in features.items() if value > 0.0}


# ---------------------------------------------------------------------------
# Observations from archived reports
# ---------------------------------------------------------------------------
def extract_observations(reports: list[dict]) -> list[Observation]:
    """Turn loaded ``BENCH_*.json`` report dicts into fit observations.

    Reports must already be schema-validated
    (:func:`repro.bench.results.load_report` does that); scenarios without a
    positive wall are skipped.  The observation order — report order, then
    scenario order — is part of the deterministic-fit contract.
    """
    observations: list[Observation] = []
    for report in reports:
        suite = str(report.get("suite", "?"))
        cpu_count = int((report.get("host") or {}).get("cpu_count") or 1)
        for entry in report.get("scenarios", ()):
            wall = float(entry.get("wall_seconds", 0.0))
            params = entry.get("params") or {}
            if wall <= 0.0 or not params:
                continue
            observations.append(Observation(
                suite=suite,
                scenario_id=str(entry.get("id", "?")),
                wall_seconds=wall,
                features=scenario_features(params, cpu_count=cpu_count),
                params=dict(params),
            ))
    return observations


def _round_sig(value: float, digits: int = _ROUND_DIGITS) -> float:
    if value == 0.0 or not math.isfinite(value):
        return 0.0
    return float(f"{value:.{digits}e}")


def fit_constants(observations: list[Observation], *,
                  cpu_count: int = 1) -> dict:
    """Non-negative least squares fit of the per-unit machine constants.

    Rows are weighted by ``1 / max(wall, floor)`` so the objective
    approximates *relative* error — a 3.5 s solve and a 5 ms solve pull with
    comparable force.  Returns the ``constants`` subtree of a calibration
    document: ``seconds_per_unit`` keyed by feature name, the host
    parallelism the ops features were normalized with, and fit bookkeeping.
    """
    if not observations:
        raise ValidationError("cannot fit constants from zero observations")
    from scipy.optimize import nnls

    keys = sorted({key for obs in observations for key in obs.features})
    matrix = np.zeros((len(observations), len(keys)), dtype=np.float64)
    target = np.zeros(len(observations), dtype=np.float64)
    for i, obs in enumerate(observations):
        weight = 1.0 / max(obs.wall_seconds, WALL_FLOOR_SECONDS)
        target[i] = obs.wall_seconds * weight
        for j, key in enumerate(keys):
            matrix[i, j] = obs.features.get(key, 0.0) * weight
    # Column scaling keeps the active-set solve well conditioned across the
    # ~15 orders of magnitude separating ops counts from crash counts.
    scales = np.maximum(np.abs(matrix).max(axis=0), 1e-300)
    solution, residual = nnls(matrix / scales, target)
    theta = solution / scales
    seconds_per_unit = {key: _round_sig(float(value))
                        for key, value in zip(keys, theta)}
    return {
        "source": "fitted",
        "cpu_count": max(1, int(cpu_count)),
        "observations": len(observations),
        "residual": _round_sig(float(residual), 6),
        "seconds_per_unit": seconds_per_unit,
    }


def paper_constants(*, cpu_count: int | None = None) -> dict:
    """Fallback constants used when no fitted calibration file is available.

    Every prediction then rides on :data:`FALLBACK_SECONDS_PER_UNIT` — the
    paper-flavoured defaults — which keeps the auto-tuner functional (and
    deterministic for a fixed host) before the first ``bench calibrate``.
    """
    return {
        "source": "paper-default",
        "cpu_count": max(1, int(cpu_count if cpu_count is not None
                                else (os.cpu_count() or 1))),
        "observations": 0,
        "residual": 0.0,
        "seconds_per_unit": {},
    }


# ---------------------------------------------------------------------------
# Prediction
# ---------------------------------------------------------------------------
def _fallback_rate(key: str, fitted: dict[str, float]) -> float:
    """Per-unit rate for a feature the fit never observed.

    Unseen kernel keys borrow the median *per-byte* rate of the fitted
    kernel keys (so an unfitted float32 algebra still prices ~2x faster
    than its float64 twin); other families fall back to the documented
    defaults.
    """
    family = key.split(":", 1)[0] if not key.startswith("ops:") else "ops"
    if key.startswith("ops:"):
        per_byte: list[float] = []
        for fit_key, rate in fitted.items():
            if not fit_key.startswith("ops:") or rate <= 0.0:
                continue
            algebra, dtype, storage = fit_key[4:].split("|")
            per_byte.append(rate / element_bytes(algebra, dtype, storage))
        element_size = element_bytes(*key[4:].split("|"))
        if per_byte:
            return float(np.median(per_byte)) * element_size
        return FALLBACK_SECONDS_PER_UNIT["ops"] / 8.0 * element_size
    if family in ("stages", "tasks", "crashes", "driver", "taskbytes",
                  "kernels"):
        siblings = [rate for fit_key, rate in fitted.items()
                    if fit_key.startswith(family + ":") and rate > 0.0]
        if siblings:
            return float(np.median(siblings))
        return FALLBACK_SECONDS_PER_UNIT[family]
    return FALLBACK_SECONDS_PER_UNIT.get(key, FALLBACK_SECONDS_PER_UNIT.get(
        family, 0.0))


def predict_seconds(params: dict, constants: dict) -> float:
    """Predicted wall seconds of one scenario under fitted constants.

    The one prediction function everything shares: the accuracy report, the
    prediction-accuracy test harness, and the auto-tuner's candidate ranking
    all call this, so they can never drift apart.
    """
    rates = constants.get("seconds_per_unit") or {}
    features = scenario_features(params,
                                 cpu_count=int(constants.get("cpu_count", 1)))
    total = 0.0
    for key, value in features.items():
        rate = rates.get(key)
        if rate is None:
            # Unseen during fitting.  A *fitted zero* is kept as zero — the
            # archives said that cost is indistinguishable from free.
            rate = _fallback_rate(key, rates)
        total += value * rate
    return total


def accuracy_report(observations: list[Observation], constants: dict) -> dict:
    """Predicted-vs-actual accuracy of ``constants`` over the observations."""
    rows: list[dict] = []
    for obs in observations:
        predicted = predict_seconds(obs.params, constants)
        rel_error = (abs(predicted - obs.wall_seconds) / obs.wall_seconds
                     if obs.wall_seconds > 0 else float("inf"))
        rows.append({
            "suite": obs.suite,
            "id": obs.scenario_id,
            "actual_seconds": _round_sig(obs.wall_seconds),
            "predicted_seconds": _round_sig(predicted),
            "rel_error": _round_sig(rel_error, 6),
        })
    errors = [row["rel_error"] for row in rows]
    per_suite: dict[str, dict] = {}
    for suite in sorted({row["suite"] for row in rows}):
        suite_errors = [row["rel_error"] for row in rows if row["suite"] == suite]
        per_suite[suite] = {
            "scenarios": len(suite_errors),
            "median_rel_error": _round_sig(float(np.median(suite_errors)), 6),
            "max_rel_error": _round_sig(max(suite_errors), 6),
        }
    worst = sorted(rows, key=lambda row: (-row["rel_error"], row["suite"],
                                          row["id"]))[:5]
    return {
        "scenarios": len(rows),
        "median_rel_error": (_round_sig(float(np.median(errors)), 6)
                             if errors else 0.0),
        "mean_rel_error": (_round_sig(float(np.mean(errors)), 6)
                           if errors else 0.0),
        "per_suite": per_suite,
        "per_scenario": rows,
        "worst": [dict(row) for row in worst],
    }


# ---------------------------------------------------------------------------
# Calibration documents
# ---------------------------------------------------------------------------
def build_calibration(reports: list[dict], *,
                      source_paths: list[str] | None = None) -> dict:
    """Fit constants from loaded reports and assemble the full document.

    The document separates volatile provenance (timestamps, git, host) from
    the deterministic ``constants`` / ``accuracy`` subtrees the golden-file
    test compares.
    """
    import time as _time

    from repro.bench.results import git_metadata, host_metadata

    observations = extract_observations(reports)
    cpu_counts = [int((report.get("host") or {}).get("cpu_count") or 1)
                  for report in reports]
    cpu_count = max(cpu_counts) if cpu_counts else 1
    constants = fit_constants(observations, cpu_count=cpu_count)
    sources = []
    for index, report in enumerate(reports):
        sources.append({
            "path": (source_paths[index] if source_paths
                     and index < len(source_paths) else None),
            "suite": report.get("suite"),
            "scenarios": len(report.get("scenarios", ())),
        })
    return {
        "schema_version": CALIBRATION_SCHEMA_VERSION,
        "created_unix": _time.time(),
        "git": git_metadata(),
        "host": host_metadata(),
        "sources": sources,
        "constants": constants,
        "accuracy": accuracy_report(observations, constants),
    }


def write_calibration(calibration: dict, path: str) -> str:
    """Write a calibration document as stable, human-diffable JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(calibration, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_calibration(calibration: dict, path: str = "<calibration>") -> dict:
    """Check a loaded calibration document; returns it on success."""
    if not isinstance(calibration, dict):
        raise ValidationError(f"{path}: calibration must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in calibration]
    if missing:
        raise ValidationError(
            f"{path}: calibration is missing keys: {', '.join(missing)}")
    version = calibration["schema_version"]
    if version != CALIBRATION_SCHEMA_VERSION:
        raise ValidationError(
            f"{path}: unsupported calibration schema version {version!r} "
            f"(this build reads version {CALIBRATION_SCHEMA_VERSION})")
    constants = calibration["constants"]
    if (not isinstance(constants, dict)
            or not isinstance(constants.get("seconds_per_unit"), dict)):
        raise ValidationError(
            f"{path}: 'constants.seconds_per_unit' must be an object")
    for key, value in constants["seconds_per_unit"].items():
        if not isinstance(value, (int, float)) or value < 0:
            raise ValidationError(
                f"{path}: constant {key!r} must be a non-negative number")
    return calibration


def load_calibration(path: str) -> dict:
    """Load and validate a ``calibration.json`` document from disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            calibration = json.load(fh)
    except FileNotFoundError:
        raise ValidationError(f"calibration file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: invalid JSON ({exc})") from exc
    return validate_calibration(calibration, path)

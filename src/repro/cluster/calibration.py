"""Kernel-rate calibration for the cost model.

The paper's cost narrative is anchored in the throughput of the per-block
kernels: the sequential SciPy Floyd-Warshall achieves 0.762 Gop/s on one core
of the evaluation cluster (Section 5.4, the ``T1`` reference), and the blocked
solvers reach roughly 60-80 % of that per core at scale.  The calibration can
either *measure* the equivalent rates on the host machine (used for
"measured" projections and Figure 2) or use the paper's reported numbers
(used to reproduce the paper's tables at their scale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.common.validation import check_positive_int
from repro.linalg.kernels import floyd_warshall_inplace
from repro.linalg.semiring import minplus_product, elementwise_min


def _random_block(b: int, rng) -> np.ndarray:
    block = rng.uniform(1.0, 10.0, size=(b, b))
    np.fill_diagonal(block, 0.0)
    return block


def measure_kernel_times(block_sizes=(64, 96, 128, 192, 256), *, repeats: int = 2,
                         seed: int = 0) -> list[dict]:
    """Measure MatProd+MatMin and FloydWarshall wall-clock times per block size.

    Returns one row per block size with keys ``block_size``, ``minplus_seconds``
    and ``floyd_warshall_seconds``.  This is the measured version of Figure 2.
    """
    rng = make_rng(seed)
    rows: list[dict] = []
    for b in block_sizes:
        check_positive_int(b, "block size")
        a = _random_block(b, rng)
        c = _random_block(b, rng)
        # MatProd + MatMin
        best_mp = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            elementwise_min(a, minplus_product(a, c))
            best_mp = min(best_mp, time.perf_counter() - start)
        # FloydWarshall
        best_fw = float("inf")
        for _ in range(repeats):
            work = a.copy()
            start = time.perf_counter()
            floyd_warshall_inplace(work)
            best_fw = min(best_fw, time.perf_counter() - start)
        rows.append({"block_size": b, "minplus_seconds": best_mp,
                     "floyd_warshall_seconds": best_fw})
    return rows


@dataclass(frozen=True)
class KernelCalibration:
    """Effective per-core kernel throughputs in operations per second.

    ``b^3`` operations are assumed per ``b x b`` block kernel invocation, so a
    rate ``r`` predicts ``t(b) = b^3 / r``.
    """

    floyd_warshall_rate: float
    minplus_rate: float
    dc_optimized_rate: float = 1.7e9
    source: str = "paper"

    @classmethod
    def paper(cls) -> "KernelCalibration":
        """Rates matching the paper's hardware.

        The sequential reference gives 0.762 Gop/s (T1 = 0.022 s at n = 256);
        the min-plus kernel is assumed comparable.  The optimized DC solver's
        effective rate (~1.7 Gop/s/core) is back-computed from its reported
        2 h 52 m at n = 262,144 on 1,024 cores.
        """
        return cls(floyd_warshall_rate=0.762e9, minplus_rate=0.70e9,
                   dc_optimized_rate=1.7e9, source="paper")

    @classmethod
    def measure(cls, block_sizes=(96, 128, 192), *, repeats: int = 2,
                seed: int = 0) -> "KernelCalibration":
        """Fit rates from measurements on the host machine (cubic model)."""
        rows = measure_kernel_times(block_sizes, repeats=repeats, seed=seed)
        fw = np.array([r["floyd_warshall_seconds"] for r in rows])
        mp = np.array([r["minplus_seconds"] for r in rows])
        ops = np.array([float(r["block_size"]) ** 3 for r in rows])
        fw_rate = float(np.median(ops / np.maximum(fw, 1e-9)))
        mp_rate = float(np.median(ops / np.maximum(mp, 1e-9)))
        return cls(floyd_warshall_rate=fw_rate, minplus_rate=mp_rate,
                   dc_optimized_rate=max(fw_rate, mp_rate) * 2.0, source="measured")

    def floyd_warshall_seconds(self, b: int) -> float:
        """Predicted sequential Floyd-Warshall time for a ``b x b`` block."""
        return float(b) ** 3 / self.floyd_warshall_rate

    def minplus_seconds(self, b: int) -> float:
        """Predicted MatProd+MatMin time for ``b x b`` operands."""
        return float(b) ** 3 / self.minplus_rate

    def sequential_apsp_seconds(self, n: int) -> float:
        """Predicted single-core Floyd-Warshall time for an ``n x n`` problem (T1)."""
        return float(n) ** 3 / self.floyd_warshall_rate

"""Pluggable solver registry.

The four paper solvers register themselves at import time through the
:func:`register_solver` decorator; external code can add its own
:class:`~repro.core.base.SparkAPSPSolver` subclasses the same way and they
become reachable from :class:`~repro.core.engine.APSPEngine`,
:func:`~repro.core.api.solve_apsp` and the ``apspark`` CLI without touching
this package.

Every registration carries metadata (canonical name, accepted aliases,
purity, one-line description) that the CLI's ``apspark solvers`` subcommand
and :func:`solver_catalog` expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import ConfigurationError
from repro.linalg.algebra import resolve_algebra_name


@dataclass(frozen=True)
class SolverInfo:
    """Registry metadata for one solver implementation."""

    name: str
    cls: type
    aliases: tuple[str, ...] = ()
    pure: bool = True
    description: str = ""
    #: Canonical names of the path algebras this solver supports.
    algebras: tuple[str, ...] = ("shortest-path",)
    #: Block grid layouts this solver can run (``triangular``/``full``).
    layouts: tuple[str, ...] = ("triangular",)

    def supports_algebra(self, algebra: str) -> bool:
        """True when the solver declares support for the given algebra (or alias)."""
        return resolve_algebra_name(algebra) in self.algebras

    def supports_layout(self, layout: str) -> bool:
        """True when the solver declares support for the given block layout.

        ``"auto"`` is always supported — it resolves to a concrete layout
        (which is then re-checked) once the input has been inspected.
        """
        return layout == "auto" or layout in self.layouts

    def as_dict(self) -> dict:
        """Plain-dict view used by the CLI and reports."""
        return {
            "name": self.name,
            "aliases": ", ".join(self.aliases),
            "pure": self.pure,
            "algebras": ", ".join(self.algebras),
            "layouts": ", ".join(self.layouts),
            "description": self.description,
        }


#: Canonical name -> SolverInfo.
_REGISTRY: dict[str, SolverInfo] = {}
#: Normalised alias -> canonical name.
_ALIAS_INDEX: dict[str, str] = {}


def _normalise(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_solver(cls=None, *, aliases: Iterable[str] = (),
                    description: str | None = None):
    """Class decorator registering a :class:`SparkAPSPSolver` subclass.

    Usable bare (``@register_solver``) or with arguments
    (``@register_solver(aliases=("rs",))``).  The canonical name is taken
    from the class's ``name`` attribute, purity from ``pure``, and the
    description from the argument or the first line of the class docstring.
    Re-registering a name replaces the previous entry (latest wins), so
    test doubles can shadow a built-in solver and restore it afterwards.
    """

    def _register(solver_cls):
        name = getattr(solver_cls, "name", None)
        if not name or name == "abstract":
            raise ConfigurationError(
                f"solver class {solver_cls.__name__} must define a non-abstract "
                "'name' attribute to be registered")
        canonical = _normalise(name)
        doc = (solver_cls.__doc__ or "").strip().splitlines()
        # Canonicalize the class's declared algebras eagerly so a typo in a
        # solver's `algebras` tuple fails at registration, not at solve time.
        declared = tuple(getattr(solver_cls, "algebras", None) or ("shortest-path",))
        declared_layouts = tuple(getattr(solver_cls, "layouts", None)
                                 or ("triangular",))
        unknown_layouts = set(declared_layouts) - {"triangular", "full"}
        if unknown_layouts:
            raise ConfigurationError(
                f"solver class {solver_cls.__name__} declares unknown "
                f"layouts {sorted(unknown_layouts)}")
        info = SolverInfo(
            name=canonical,
            cls=solver_cls,
            aliases=tuple(_normalise(a) for a in aliases),
            pure=bool(getattr(solver_cls, "pure", True)),
            description=description if description is not None else (doc[0] if doc else ""),
            algebras=tuple(resolve_algebra_name(a) for a in declared),
            layouts=declared_layouts,
        )
        # Validate before mutating anything, so a rejected registration
        # leaves the registry exactly as it was.
        for alias in info.aliases:
            owner = _ALIAS_INDEX.get(alias)
            if owner is not None and owner != canonical:
                raise ConfigurationError(
                    f"alias {alias!r} already registered for solver {owner!r}")
            if alias in _REGISTRY and alias != canonical:
                raise ConfigurationError(
                    f"alias {alias!r} would shadow the registered solver of "
                    "the same name")
        previous = _REGISTRY.get(canonical)
        if previous is not None:
            for alias in previous.aliases:
                if _ALIAS_INDEX.get(alias) == canonical:
                    del _ALIAS_INDEX[alias]
        _REGISTRY[canonical] = info
        for alias in info.aliases:
            _ALIAS_INDEX[alias] = canonical
        return solver_cls

    if cls is not None:  # bare @register_solver
        return _register(cls)
    return _register


def unregister_solver(name: str) -> None:
    """Remove a solver (and its aliases) from the registry; unknown names are ignored."""
    canonical = _ALIAS_INDEX.get(_normalise(name), _normalise(name))
    info = _REGISTRY.pop(canonical, None)
    if info is not None:
        for alias in info.aliases:
            # Only remove aliases this solver actually owns.
            if _ALIAS_INDEX.get(alias) == canonical:
                del _ALIAS_INDEX[alias]


def resolve_solver_name(name: str) -> str:
    """Resolve a name or alias to the canonical solver name."""
    key = _normalise(name)
    key = _ALIAS_INDEX.get(key, key)
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}")
    return key


def solver_info(name: str) -> SolverInfo:
    """Return the registry metadata for a solver name or alias."""
    return _REGISTRY[resolve_solver_name(name)]


def get_solver_class(name: str):
    """Resolve a solver name or alias to its implementing class."""
    return solver_info(name).cls


def solver_supports_algebra(solver_name: str, algebra: str) -> bool:
    """True when the (resolved) solver declares support for the (resolved) algebra."""
    return solver_info(solver_name).supports_algebra(algebra)


def solver_supports_layout(solver_name: str, layout: str) -> bool:
    """True when the (resolved) solver declares support for the block layout."""
    return solver_info(solver_name).supports_layout(layout)


def available_solvers() -> list[str]:
    """Return the canonical names of the registered solvers, sorted."""
    return sorted(_REGISTRY)


def solvers_for(algebra: str | None = None,
                layout: str | None = None) -> list[str]:
    """Canonical names of solvers supporting an algebra and/or layout, sorted.

    This is the auto-tuner's candidate pool: ``solvers_for("reachability",
    "full")`` returns every registered solver that declares both.  ``None``
    leaves that axis unconstrained; unknown algebra names raise, exactly as
    they would on a :class:`~repro.core.request.SolveRequest`.
    """
    names = []
    for name in available_solvers():
        info = _REGISTRY[name]
        if algebra is not None and not info.supports_algebra(algebra):
            continue
        if layout is not None and not info.supports_layout(layout):
            continue
        names.append(name)
    return names


def solver_catalog() -> list[SolverInfo]:
    """Return :class:`SolverInfo` entries for every registered solver, sorted by name."""
    return [_REGISTRY[name] for name in available_solvers()]

"""High-level front-end: ``solve_apsp`` and the solver registry."""

from __future__ import annotations

from typing import Any, Type

import numpy as np

from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.base import APSPResult, SolverOptions, SparkAPSPSolver
from repro.core.blocked_collect_broadcast import BlockedCollectBroadcastSolver
from repro.core.blocked_inmemory import BlockedInMemorySolver
from repro.core.floyd_warshall_2d import FloydWarshall2DSolver
from repro.core.repeated_squaring import RepeatedSquaringSolver

#: Registry of the paper's four Spark solvers, keyed by their short names.
_SOLVER_REGISTRY: dict[str, Type[SparkAPSPSolver]] = {
    RepeatedSquaringSolver.name: RepeatedSquaringSolver,
    FloydWarshall2DSolver.name: FloydWarshall2DSolver,
    BlockedInMemorySolver.name: BlockedInMemorySolver,
    BlockedCollectBroadcastSolver.name: BlockedCollectBroadcastSolver,
}

#: Accepted aliases for solver names (paper terminology and common shorthands).
_ALIASES: dict[str, str] = {
    "squaring": "repeated-squaring",
    "repeated_squaring": "repeated-squaring",
    "rs": "repeated-squaring",
    "fw2d": "fw-2d",
    "fw_2d": "fw-2d",
    "2d-floyd-warshall": "fw-2d",
    "blocked-in-memory": "blocked-im",
    "blocked_im": "blocked-im",
    "im": "blocked-im",
    "blocked-collect-broadcast": "blocked-cb",
    "blocked_cb": "blocked-cb",
    "cb": "blocked-cb",
}


def available_solvers() -> list[str]:
    """Return the canonical names of the registered Spark APSP solvers."""
    return sorted(_SOLVER_REGISTRY)


def get_solver_class(name: str) -> Type[SparkAPSPSolver]:
    """Resolve a solver name or alias to its implementing class."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _SOLVER_REGISTRY:
        raise ConfigurationError(
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}")
    return _SOLVER_REGISTRY[key]


def solve_apsp(adjacency: np.ndarray, *, solver: str = "blocked-cb",
               block_size: int | None = None, partitioner: str = "MD",
               partitions_per_core: int = 2, num_partitions: int | None = None,
               validate: bool = False, config: EngineConfig | None = None,
               **extra: Any) -> APSPResult:
    """Solve All-Pairs Shortest-Paths with one of the paper's Spark solvers.

    Parameters
    ----------
    adjacency:
        Dense symmetric adjacency matrix with ``inf`` for missing edges.
        Use :mod:`repro.graph` to build one from a graph or a point cloud.
    solver:
        ``"repeated-squaring"``, ``"fw-2d"``, ``"blocked-im"`` or
        ``"blocked-cb"`` (default; the paper's best performer), or any alias.
    block_size:
        Decomposition parameter ``b``; chosen automatically when omitted.
    partitioner:
        ``"MD"`` (multi-diagonal, default), ``"PH"`` (portable hash) or ``"GRID"``.
    partitions_per_core / num_partitions:
        Over-decomposition factor ``B``, or an explicit partition count.
    validate:
        Run structural sanity checks on the result.
    config:
        Engine configuration (executors, cores, backend, spill capacity).

    Returns
    -------
    APSPResult
        The distance matrix plus iteration counts, timings and engine metrics.

    Example
    -------
    >>> from repro.graph import erdos_renyi_adjacency
    >>> adj = erdos_renyi_adjacency(64, seed=7)
    >>> result = solve_apsp(adj, solver="blocked-cb", block_size=16)
    >>> result.distances.shape
    (64, 64)
    """
    solver_cls = get_solver_class(solver)
    options = SolverOptions(block_size=block_size, partitioner=partitioner,
                            partitions_per_core=partitions_per_core,
                            num_partitions=num_partitions, validate=validate,
                            extra=dict(extra))
    instance = solver_cls(config=config, options=options)
    return instance.solve(adjacency)

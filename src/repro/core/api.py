"""High-level front-end: ``solve_apsp`` on top of :class:`~repro.core.engine.APSPEngine`.

The modern entry point is the engine session API::

    with APSPEngine(config) as engine:
        result = engine.solve(adjacency, SolveRequest(solver="blocked-cb"))

:func:`solve_apsp` remains as the one-shot convenience wrapper (one
ephemeral engine per call) so existing call sites keep working unchanged.
Solver lookup lives in :mod:`repro.core.registry`; the names re-exported
here (:func:`available_solvers`, :func:`get_solver_class`) are kept for
backward compatibility.
"""

from __future__ import annotations

from typing import Any

import numpy as np

# Importing the solver modules populates the registry as an import side effect.
import repro.core.blocked_collect_broadcast  # noqa: F401
import repro.core.blocked_inmemory  # noqa: F401
import repro.core.floyd_warshall_2d  # noqa: F401
import repro.core.repeated_squaring  # noqa: F401
from repro.common.config import EngineConfig
from repro.core.base import APSPResult
from repro.core.engine import APSPEngine
from repro.core.registry import (available_solvers, get_solver_class,  # noqa: F401
                                 register_solver, solver_catalog, solver_info)
from repro.core.request import SolveRequest


def solve_apsp(adjacency: np.ndarray, *, solver: str = "blocked-cb",
               block_size: int | None = None, partitioner: str = "MD",
               partitions_per_core: int = 2, num_partitions: int | None = None,
               algebra: str = "shortest-path", dtype: str | None = None,
               validate: bool = False, config: EngineConfig | None = None,
               **extra: Any) -> APSPResult:
    """Solve All-Pairs Shortest-Paths with one of the registered Spark solvers.

    One-shot convenience wrapper: builds a :class:`SolveRequest`, runs it on
    an ephemeral :class:`APSPEngine` (context created and torn down inside
    this call), and returns the result.  For repeated solves prefer a
    long-lived engine, which reuses one Spark context across the batch.

    Parameters
    ----------
    adjacency:
        Dense symmetric adjacency matrix with ``inf`` for missing edges.
        Use :mod:`repro.graph` to build one from a graph or a point cloud.
    solver:
        ``"repeated-squaring"``, ``"fw-2d"``, ``"blocked-im"`` or
        ``"blocked-cb"`` (default; the paper's best performer), any alias,
        or any solver added through :func:`repro.core.registry.register_solver`.
    block_size:
        Decomposition parameter ``b``; chosen automatically when omitted.
    partitioner:
        ``"MD"`` (multi-diagonal, default), ``"PH"`` (portable hash) or ``"GRID"``.
    partitions_per_core / num_partitions:
        Over-decomposition factor ``B``, or an explicit partition count.
    algebra:
        Path algebra to close the matrix under (``"shortest-path"`` default;
        ``"widest-path"``, ``"most-reliable"``, ``"reachability"``, or any
        alias registered in :mod:`repro.linalg.algebra`).
    dtype:
        Element dtype for the solve (e.g. ``"float32"``); ``None`` selects
        the algebra's default.
    validate:
        Run structural sanity checks on the result.
    config:
        Engine configuration (executors, cores, backend, spill capacity).

    Returns
    -------
    APSPResult
        The distance matrix plus iteration counts, timings and engine metrics.

    Example
    -------
    >>> from repro.graph import erdos_renyi_adjacency
    >>> adj = erdos_renyi_adjacency(64, seed=7)
    >>> result = solve_apsp(adj, solver="blocked-cb", block_size=16)
    >>> result.distances.shape
    (64, 64)
    """
    request = SolveRequest.coerce(
        None, solver=solver, block_size=block_size, partitioner=partitioner,
        partitions_per_core=partitions_per_core, num_partitions=num_partitions,
        algebra=algebra, dtype=dtype, validate=validate, **extra)
    with APSPEngine(config) as engine:
        return engine.solve(adjacency, request)

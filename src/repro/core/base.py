"""Common machinery shared by the four Spark APSP solvers."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.config import EngineConfig, default_config
from repro.common.errors import ConfigurationError, SolverError
from repro.common.timing import Stopwatch
from repro.cluster.costmodel import predicted_task_seconds
from repro.graph import sparse as sparse_mod
from repro.graph.adjacency import is_symmetric_adjacency, validate_adjacency
from repro.linalg import witness as witness_mod
from repro.linalg.algebra import ABSORPTIVE_ALGEBRAS, Semiring, get_algebra
from repro.linalg.blocks import matrix_to_blocks, blocks_to_matrix, num_blocks
from repro.spark.context import SparkContext
from repro.spark.metrics import metrics_delta
from repro.spark.partitioner import Partitioner, partitioner_by_name
from repro.spark.rdd import RDD


@dataclass
class SolverOptions:
    """User-facing solver knobs (Section 5.2/5.3 tuning parameters).

    Parameters
    ----------
    block_size:
        The decomposition parameter ``b``; ``None`` selects it automatically
        with :func:`auto_block_size`.
    partitioner:
        ``"MD"`` (the paper's multi-diagonal partitioner), ``"PH"``
        (pySpark's default portable hash) or ``"GRID"``.
    partitions_per_core:
        The over-decomposition factor ``B``; the paper recommends 2-4 and uses
        2 in most experiments.
    num_partitions:
        Explicit partition count override (takes precedence over ``B``).
    algebra:
        Path algebra (semiring) the solve closes the matrix under; name or
        alias resolved against :mod:`repro.linalg.algebra`.
    dtype:
        Element dtype for the solve (``None`` = the algebra's default).
    storage:
        Block storage layout: ``"dense"`` (plain ndarray blocks),
        ``"packed"`` (uint64 packed-bitset blocks, boolean algebras only), or
        ``None``/``"auto"`` for the algebra's default (packed for
        ``reachability``).
    layout:
        Block *grid* layout: ``"triangular"`` (upper block triangle with
        mirror-transpose lookups — symmetric inputs only), ``"full"`` (all
        q² blocks, required for directed inputs), or ``None``/``"auto"``
        to pick from the input's symmetry at ``prepare`` time.
    directed:
        Treat the input as a directed graph: skips the symmetry check
        during adjacency validation and forces the full grid layout.
    paths:
        When true every block carries witness (parent-pointer) planes
        through the whole solve and the result exposes a predecessor matrix
        plus :meth:`APSPResult.reconstruct_path` — at roughly double the
        data traffic.  Requires an algebra with a witness policy and dense
        block storage.
    validate:
        When true the result is sanity-checked (identity diagonal, symmetry,
        closure stability on a sample).
    """

    block_size: int | None = None
    partitioner: str = "MD"
    partitions_per_core: int = 2
    num_partitions: int | None = None
    algebra: str = "shortest-path"
    dtype: str | None = None
    storage: str | None = None
    layout: str | None = None
    directed: bool = False
    paths: bool = False
    validate: bool = False
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass
class APSPResult:
    """Result of an APSP solve: the distance matrix plus execution metadata.

    Under ``paths=True`` the result additionally carries :attr:`parents`,
    the full ``n x n`` predecessor matrix (``parents[i, j]`` is the global
    predecessor of ``j`` on an optimal ``i -> j`` path, ``-1`` for
    unreachable pairs and the diagonal), walkable via
    :meth:`reconstruct_path`.
    """

    distances: np.ndarray
    solver: str
    n: int
    block_size: int
    q: int
    iterations: int
    num_partitions: int
    partitioner: str
    pure: bool
    elapsed_seconds: float
    algebra: str = "shortest-path"
    dtype: str = "float64"
    storage: str = "dense"
    layout: str = "triangular"
    directed: bool = False
    parents: np.ndarray | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Preserve the solve dtype (float32 results stay float32, boolean
        # closures stay bool); only non-native dtypes are normalized.
        arr = np.asarray(self.distances)
        if arr.dtype.kind not in ("f", "b"):
            arr = np.asarray(arr, dtype=np.float64)
        self.distances = arr
        if self.parents is not None:
            self.parents = np.asarray(self.parents, dtype=np.int32)

    @property
    def has_paths(self) -> bool:
        """True when this result carries a predecessor matrix."""
        return self.parents is not None

    def reconstruct_path(self, src: int, dst: int) -> list[int]:
        """Walk the predecessor matrix into the vertex list ``[src, ..., dst]``.

        Only available for ``paths=True`` solves; raises
        :class:`~repro.common.errors.SolverError` when the result has no
        parent matrix or no path exists between the endpoints.
        """
        if self.parents is None:
            raise SolverError(
                "this result has no predecessor matrix; solve with "
                "SolveRequest(paths=True) to enable path reconstruction")
        return witness_mod.reconstruct_path(self.parents, src, dst)

    @property
    def gops(self) -> float:
        """Throughput proxy used in the paper's weak-scaling study: ``n^3 / T`` in Gop/s."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return (float(self.n) ** 3) / self.elapsed_seconds / 1e9

    def summary(self) -> str:
        """One-line human-readable summary."""
        algebra_bit = ""
        if self.algebra != "shortest-path" or self.dtype != "float64":
            algebra_bit = f" {self.algebra}[{self.dtype}]"
        if self.storage != "dense":
            algebra_bit += f" {self.storage}"
        if self.layout != "triangular":
            algebra_bit += f" {self.layout}-grid"
        if self.directed:
            algebra_bit += " directed"
        if self.has_paths:
            algebra_bit += " +paths"
        return (f"{self.solver}: n={self.n} b={self.block_size} q={self.q} "
                f"iters={self.iterations} partitions={self.num_partitions} "
                f"({self.partitioner}){algebra_bit} time={self.elapsed_seconds:.3f}s "
                f"{'pure' if self.pure else 'impure'}")


@dataclass(frozen=True)
class SolvePlan:
    """Resolved geometry of one solve, inspectable before anything runs.

    Produced by :meth:`SparkAPSPSolver.prepare`: the adjacency matrix has been
    validated, the block size / block-grid side / partition count resolved, and
    the partitioner instantiated.  Feeding the plan to
    :meth:`SparkAPSPSolver.execute` (optionally with a shared
    :class:`~repro.spark.context.SparkContext`) performs the actual solve.
    """

    solver: str
    pure: bool
    #: Validated input: a prepared dense ndarray, or a canonical CSR matrix
    #: when the caller handed in a SciPy sparse adjacency (kept sparse so the
    #: block cutter never materializes an ``n x n`` array).
    adjacency: Any
    n: int
    block_size: int
    q: int
    num_partitions: int
    partitioner_name: str
    partitioner: Partitioner
    algebra: str = "shortest-path"
    dtype: str = "float64"
    storage: str = "dense"
    layout: str = "triangular"
    directed: bool = False
    paths: bool = False

    @property
    def sparse_input(self) -> bool:
        """True when the plan carries a CSR adjacency (sparse ingestion path)."""
        return sparse_mod.is_sparse(self.adjacency)

    @property
    def num_blocks_stored(self) -> int:
        """Block records the plan's grid stores: q(q+1)/2 triangular, q² full."""
        if self.layout == "triangular":
            return self.q * (self.q + 1) // 2
        return self.q * self.q

    def block_records(self):
        """Cut the plan's adjacency into ``((I, J), block)`` records.

        Dense inputs go through
        :func:`~repro.linalg.blocks.matrix_to_blocks`; CSR inputs are sliced
        straight from the sparse buffers
        (:func:`~repro.graph.sparse.sparse_to_blocks`), so block construction
        allocates O(nnz + b²), never a dense ``n x n`` array.  Either path
        emits packed-bitset blocks under the ``"packed"`` storage policy and
        witnessed blocks (value + parent planes, global ids stamped) under
        ``paths=True``.  The triangular layout cuts only the upper block
        triangle (mirror blocks are served by transposing); the full layout
        cuts all q² blocks, with single-plane witnesses (no successor plane —
        an asymmetric closure has no transpose identity to exploit).
        """
        upper_only = self.layout == "triangular"
        single_plane = self.paths and not upper_only
        if self.sparse_input:
            return sparse_mod.sparse_to_blocks(
                self.adjacency, self.block_size, algebra=self.algebra,
                dtype=self.dtype, storage=self.storage, upper_only=upper_only,
                witness=self.paths, single_plane=single_plane)
        return matrix_to_blocks(self.adjacency, self.block_size,
                                upper_only=upper_only, storage=self.storage,
                                witness=self.paths, algebra=self.algebra,
                                single_plane=single_plane)

    def describe(self) -> dict:
        """Geometry summary as a plain dict (for logs, the CLI, and tests)."""
        return {
            "solver": self.solver,
            "pure": self.pure,
            "n": self.n,
            "block_size": self.block_size,
            "q": self.q,
            "num_blocks_upper": self.q * (self.q + 1) // 2,
            "num_blocks_stored": self.num_blocks_stored,
            "num_partitions": self.num_partitions,
            "partitioner": self.partitioner_name,
            "algebra": self.algebra,
            "dtype": self.dtype,
            "storage": self.storage,
            "layout": self.layout,
            "directed": self.directed,
            "paths": self.paths,
            "sparse_input": self.sparse_input,
        }


def auto_block_size(n: int, total_cores: int, partitions_per_core: int = 2,
                    *, layout: str = "triangular") -> int:
    """Pick a block size so that the stored block count ≈ 2x the partition count.

    The paper tunes ``b`` by hand (Table 2/3); this heuristic reproduces its
    guidance that there should be at least a couple of blocks per partition
    while keeping blocks as large as possible.  The full grid stores ~2x the
    blocks of the upper triangle at the same ``b``, so it reaches the same
    blocks-per-partition target with a coarser grid.
    """
    if n <= 0:
        raise ConfigurationError("n must be positive")
    target_partitions = max(1, total_cores * max(1, partitions_per_core))
    if layout == "full":
        # Full grid: q² ≈ 2 * target_partitions  =>  q ≈ sqrt(2 * target)
        q = max(1, int(math.ceil(math.sqrt(2.0 * target_partitions))))
    else:
        # Upper-triangular blocks: q(q+1)/2 ≈ 2 * target_partitions  =>  q ≈ sqrt(4 * target)
        q = max(1, int(math.ceil(math.sqrt(4.0 * target_partitions))))
    q = min(q, n)
    return max(1, int(math.ceil(n / q)))


class SparkAPSPSolver:
    """Base class: block decomposition, RDD construction, result assembly.

    Subclasses implement :meth:`_run`, which receives the context, the block
    RDD, and the problem geometry, and must return the final block records
    (or an RDD of them) together with the number of outer iterations executed.
    """

    #: Short machine-readable solver name (overridden by subclasses).
    name = "abstract"
    #: Whether the implementation relies only on fault-tolerant Spark API.
    pure = True
    #: Path algebras this solver supports.  The absorptive algebras are safe
    #: on arbitrary graphs in either layout; the non-absorptive DAG-only
    #: ``longest-path`` algebra is defined only on (inherently asymmetric)
    #: DAGs and therefore only runs on solvers that implement the full grid
    #: layout — its algebra-level ``layouts=("full",)`` policy enforces that.
    #: Subclasses may narrow or widen the set.
    algebras: tuple[str, ...] = ABSORPTIVE_ALGEBRAS
    #: Block grid layouts this solver's ``_run`` understands.  ``"triangular"``
    #: is the paper's mirrored upper-triangle storage; solvers that also
    #: handle all q² blocks of an asymmetric matrix declare ``"full"``.
    layouts: tuple[str, ...] = ("triangular",)

    def __init__(self, config: EngineConfig | None = None,
                 options: SolverOptions | None = None) -> None:
        self.config = config or default_config()
        self.options = options or SolverOptions()

    @property
    def algebra(self) -> Semiring:
        """The resolved :class:`~repro.linalg.algebra.Semiring` for this solve."""
        return get_algebra(self.options.algebra)

    # ------------------------------------------------------------------
    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch, *,
             layout: str = "triangular"):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _resolve_geometry(self, n: int,
                          layout: str = "triangular") -> tuple[int, int, int]:
        block_size = self.options.block_size or auto_block_size(
            n, self.config.total_cores, self.options.partitions_per_core,
            layout=layout)
        if block_size > n:
            block_size = n
        q = num_blocks(n, block_size)
        num_partitions = self.options.num_partitions or max(
            1, self.config.total_cores * max(1, self.options.partitions_per_core))
        return block_size, q, num_partitions

    def _build_partitioner(self, q: int, num_partitions: int) -> Partitioner:
        return partitioner_by_name(self.options.partitioner, num_partitions, q)

    # ------------------------------------------------------------------
    def prepare(self, adjacency: np.ndarray) -> SolvePlan:
        """Validate the input and resolve the solve geometry without running.

        Returns a :class:`SolvePlan` describing block size, block-grid side,
        partition count and partitioner — everything
        :meth:`execute` needs, and everything a caller might want to inspect
        or log before committing cluster time.
        """
        algebra = self.algebra
        if algebra.name not in type(self).algebras:
            raise ConfigurationError(
                f"solver {self.name!r} does not support algebra {algebra.name!r} "
                f"(supported: {', '.join(type(self).algebras)})")
        dtype = algebra.resolve_dtype(self.options.dtype)
        paths = bool(self.options.paths)
        storage = algebra.resolve_storage(self.options.storage, paths=paths)
        directed = bool(self.options.directed)
        layout = algebra.resolve_layout(self.options.layout, directed=directed)
        if layout == "auto":
            # Inspect the input exactly once: symmetric inputs keep the
            # mirrored triangular storage (bit-identical to the historical
            # behaviour), asymmetric inputs get the full grid.
            layout = ("triangular" if is_symmetric_adjacency(adjacency)
                      else "full")
        if layout not in type(self).layouts:
            raise ConfigurationError(
                f"solver {self.name!r} does not support block layout "
                f"{layout!r} (supported: {', '.join(type(self).layouts)})")
        # The full grid carries asymmetric matrices natively, so only the
        # triangular layout demands (and checks) symmetry.
        adj = validate_adjacency(adjacency,
                                 require_symmetric=(layout == "triangular"),
                                 algebra=algebra, dtype=dtype, allow_sparse=True)
        n = adj.shape[0]
        block_size, q, num_partitions = self._resolve_geometry(n, layout)
        partitioner = self._build_partitioner(q, num_partitions)
        return SolvePlan(
            solver=self.name,
            pure=self.pure,
            adjacency=adj,
            n=n,
            block_size=block_size,
            q=q,
            num_partitions=num_partitions,
            partitioner_name=self.options.partitioner.upper(),
            partitioner=partitioner,
            algebra=algebra.name,
            dtype=dtype.name,
            storage=storage,
            layout=layout,
            directed=directed,
            paths=paths,
        )

    def execute(self, plan: SolvePlan, context: SparkContext | None = None) -> APSPResult:
        """Run a prepared :class:`SolvePlan`.

        When ``context`` is given it is reused and left running (the
        :class:`~repro.core.engine.APSPEngine` path: one context, many
        solves); otherwise an ephemeral context is created and stopped.
        The result's ``metrics`` are the engine counters attributable to
        *this* solve (a delta against the context's counters at entry), so
        they are meaningful under context reuse too.
        """
        stopwatch = Stopwatch()
        owns_context = context is None
        sc = context or SparkContext(self.config)
        start = time.perf_counter()
        try:
            metrics_before = sc.metrics.as_dict()
            with stopwatch.section("setup"):
                records = list(plan.block_records())
                rdd = sc.parallelize(records, partitioner=plan.partitioner).cache()
            # Publish the cost model's predicted per-task wall for the solve:
            # the scheduler derives its soft (speculation) timeout from it.
            wall_hint = predicted_task_seconds(
                plan.n, plan.block_size,
                num_partitions=plan.partitioner.num_partitions,
                algebra=plan.algebra, dtype=plan.dtype, storage=plan.storage)
            with sc.scheduler.task_wall_hint(wall_hint):
                result_blocks, iterations = self._run(
                    sc, rdd, plan.n, plan.block_size, plan.q, plan.partitioner,
                    stopwatch, layout=plan.layout)
            with stopwatch.section("gather"):
                if isinstance(result_blocks, RDD):
                    result_blocks = result_blocks.collect()
                algebra = get_algebra(plan.algebra)
                parents = None
                paths_repaired = 0
                symmetric = plan.layout == "triangular"
                if plan.paths:
                    distances, parents = witness_mod.witness_blocks_to_matrices(
                        result_blocks, plan.n, plan.block_size,
                        symmetric=symmetric,
                        fill=algebra.zero_like(plan.dtype), dtype=plan.dtype)
                    # Per-cell witnesses are locally valid but can disagree
                    # across cells on equal-value plateaus; rebuild exactly
                    # the source rows whose pointer chains do not walk back
                    # to the source (see repro.linalg.witness).
                    parents, paths_repaired = witness_mod.repair_parents(
                        distances, parents, plan.adjacency, algebra)
                else:
                    distances = blocks_to_matrix(result_blocks, plan.n,
                                                 plan.block_size,
                                                 symmetric=symmetric,
                                                 fill=algebra.zero_like(plan.dtype),
                                                 dtype=plan.dtype)
            elapsed = time.perf_counter() - start
            metrics = metrics_delta(metrics_before, sc.metrics.as_dict())
            if plan.paths:
                metrics["path_rows_repaired"] = paths_repaired
        finally:
            if owns_context:
                sc.stop()

        result = APSPResult(
            distances=distances,
            solver=self.name,
            n=plan.n,
            block_size=plan.block_size,
            q=plan.q,
            iterations=iterations,
            num_partitions=plan.num_partitions,
            partitioner=plan.partitioner_name,
            pure=self.pure,
            elapsed_seconds=elapsed,
            algebra=plan.algebra,
            dtype=plan.dtype,
            storage=plan.storage,
            layout=plan.layout,
            directed=plan.directed,
            parents=parents,
            phase_seconds=stopwatch.as_dict(),
            metrics=metrics,
        )
        if self.options.validate:
            self.validate_result(result)
        return result

    def solve(self, adjacency: np.ndarray, *, context: SparkContext | None = None) -> APSPResult:
        """Solve APSP for the given adjacency matrix.

        Equivalent to ``execute(prepare(adjacency), context)``.  Directed
        (asymmetric) inputs need the full grid layout — pass
        ``SolverOptions(directed=True)`` or ``layout="full"``/``"auto"``.
        """
        return self.execute(self.prepare(adjacency), context)

    # ------------------------------------------------------------------
    @staticmethod
    def validate_result(result: APSPResult, *, sample: int = 64, seed: int = 0) -> None:
        """Cheap structural checks on a closure matrix, generic over the algebra.

        Checks the diagonal equals the algebra's ``one``, the matrix is
        symmetric (triangular-layout solves only — directed/full-grid
        closures are legitimately asymmetric), and the closure is *stable*:
        relaxing through any pivot ``k`` changes nothing, i.e.
        ``d ⊕ (d[:, k] ⊗ d[k, :]) == d`` (under (min, +) this is exactly the
        triangle inequality).  The stability triples sample ordered ``(i, j,
        k)``, so they are direction-correct on asymmetric closures too.
        Exhaustive for small matrices, sampled for large ones.  Raises
        :class:`~repro.common.errors.SolverError` on violation.
        """
        algebra = get_algebra(result.algebra)
        d = result.distances
        n = d.shape[0]
        is_bool = d.dtype == np.bool_
        one = algebra.one_like(d.dtype if not is_bool else None)
        diag = np.diag(d)
        diag_ok = bool(np.array_equal(diag, np.full(n, True))) if is_bool \
            else bool(np.all(diag == one))
        if not diag_ok:
            raise SolverError(
                f"closure diagonal is not the algebra identity ({algebra.name})")
        if result.layout == "triangular":
            if is_bool:
                if not np.array_equal(d, d.T):
                    raise SolverError("closure matrix is not symmetric")
            else:
                finite_mask = np.isfinite(d) & np.isfinite(d.T)
                if not np.allclose(d[finite_mask], d.T[finite_mask]):
                    raise SolverError("closure matrix is not symmetric")

        # Float32 closures accumulate rounding in a solver-dependent order, so
        # the stability check needs a dtype-matched tolerance.
        rtol, atol = (1e-7, 1e-9) if d.dtype.itemsize >= 8 else (1e-4, 1e-6)

        def _check_pivot(k: int) -> None:
            candidate = algebra.mul(d[:, k, None], d[None, k, :])
            relaxed = algebra.add(d, candidate)
            if is_bool:
                bad = relaxed != d
            else:
                bad = ~np.isclose(relaxed, d, rtol=rtol, atol=atol) \
                    & ~(np.isinf(relaxed) & np.isinf(d) & (np.sign(relaxed) == np.sign(d)))
            if bad.any():
                i, j = map(int, np.argwhere(bad)[0])
                raise SolverError(
                    f"closure not stable under pivot {k} at ({i}, {j}): "
                    f"{d[i, j]} vs relaxed {relaxed[i, j]} ({algebra.name})")

        if n <= 128:
            # Small matrices: check closure stability exhaustively.
            for k in range(n):
                _check_pivot(k)
            return
        rng = np.random.default_rng(seed)
        # At most ``sample`` triples regardless of n, so validation stays
        # O(sample) on large matrices instead of growing with the problem size.
        idx = rng.integers(0, n, size=(max(1, int(sample)), 3))
        for i, j, k in idx:
            dij = d[i, j]
            relaxed = algebra.add(dij, algebra.mul(d[i, k], d[k, j]))
            if is_bool:
                stable = bool(relaxed == dij)
            else:
                stable = bool(np.isclose(relaxed, dij, rtol=rtol, atol=atol)) \
                    or bool(np.isinf(relaxed) and np.isinf(dij)
                            and np.sign(relaxed) == np.sign(dij))
            if not stable:
                raise SolverError(
                    f"closure not stable at ({i}, {j}, {k}): "
                    f"{dij} vs relaxed {relaxed} ({algebra.name})")

"""The paper's primary contribution: Spark-based APSP solvers.

Four solvers are provided (Section 4 of the paper), all operating on a 2D
block decomposition of the adjacency matrix stored as ``((I, J), A_IJ)``
records in an RDD, keeping only the upper triangle of the symmetric matrix:

* :class:`~repro.core.repeated_squaring.RepeatedSquaringSolver` — min-plus
  repeated squaring rewritten as a series of matrix-vector (column-block)
  products with the column staged through shared storage (Algorithm 1, impure).
* :class:`~repro.core.floyd_warshall_2d.FloydWarshall2DSolver` — the textbook
  2D-decomposed Floyd-Warshall with a collect+broadcast of the pivot column
  per iteration (Algorithm 2, pure).
* :class:`~repro.core.blocked_inmemory.BlockedInMemorySolver` — the blocked
  (Venkataraman) algorithm expressed entirely with Spark shuffles
  (Algorithm 3, pure).
* :class:`~repro.core.blocked_collect_broadcast.BlockedCollectBroadcastSolver`
  — the blocked algorithm with the pivot data staged through the driver and
  shared storage instead of shuffles (Algorithm 4, impure, best performing).
"""

from repro.core.api import solve_apsp, available_solvers, APSPResult, get_solver_class
from repro.core.base import SparkAPSPSolver, SolverOptions, SolvePlan
from repro.core.engine import APSPEngine, APSPJob
from repro.core.registry import (SolverInfo, register_solver, solver_catalog,
                                 solver_info, unregister_solver)
from repro.core.request import SolveRequest
from repro.core.repeated_squaring import RepeatedSquaringSolver
from repro.core.floyd_warshall_2d import FloydWarshall2DSolver
from repro.core.blocked_inmemory import BlockedInMemorySolver
from repro.core.blocked_collect_broadcast import BlockedCollectBroadcastSolver
from repro.core import building_blocks

__all__ = [
    "solve_apsp",
    "available_solvers",
    "get_solver_class",
    "APSPResult",
    "APSPEngine",
    "APSPJob",
    "SolveRequest",
    "SolvePlan",
    "SolverInfo",
    "register_solver",
    "unregister_solver",
    "solver_catalog",
    "solver_info",
    "SparkAPSPSolver",
    "SolverOptions",
    "RepeatedSquaringSolver",
    "FloydWarshall2DSolver",
    "BlockedInMemorySolver",
    "BlockedCollectBroadcastSolver",
    "building_blocks",
]

"""Repeated Squaring APSP solver (Algorithm 1 of the paper, Section 4.2).

Computes the min-plus closure ``A^n`` by repeated squaring, where each
squaring is rewritten as a sweep of matrix-vector (column-block) products:
for every block column ``J`` the driver collects the column, stages it in the
shared file system, and a ``map`` + ``reduceByKey(MatMin)`` computes the new
column.  The use of the shared file system makes the solver *impure*.

The solver performs ``ceil(log2(n - 1))`` squarings, each costing ``q``
column sweeps — asymptotically a ``log n`` factor more work than the blocked
solvers, which is exactly the trade-off Table 2 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.common.timing import Stopwatch
from repro.core import building_blocks as bb
from repro.linalg import bitset, witness
from repro.core.base import SparkAPSPSolver
from repro.core.registry import register_solver
from repro.linalg.semiring import closure_iterations
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD


@register_solver(aliases=("squaring", "rs"),
                 description="Min-plus repeated squaring via column-block products "
                             "staged through shared storage (Algorithm 1, impure)")
class RepeatedSquaringSolver(SparkAPSPSolver):
    """Min-plus repeated squaring with column-block staging through shared storage."""

    name = "repeated-squaring"
    pure = False
    layouts = ("triangular", "full")
    algebras = SparkAPSPSolver.algebras + ("longest-path",)

    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch, *,
             layout: str = "triangular"):
        shared_fs = sc.shared_fs
        algebra = self.algebra
        squarings = max(1, closure_iterations(n))
        current = rdd

        # Triangular storage covers column J with every block touching
        # row-or-column J (mirrors transpose in); the full grid stores the
        # column outright, so only blocks with column index J are collected.
        column_filter = bb.in_column if layout == "full" \
            else bb.in_block_row_or_column

        for iteration in range(squarings):
            column_rdds: list[RDD] = []
            for target_column in range(q):
                with stopwatch.section("collect-column"):
                    # Identify the blocks of column-block J and group them on the driver.
                    column_records = current.filter(
                        column_filter(target_column)).collect()
                    column_blocks = _orient_column(column_records, target_column,
                                                   layout=layout)
                with stopwatch.section("stage-column"):
                    # Stage the column in the shared file system (not a broadcast).
                    paths = shared_fs.write_blocks(
                        f"sq-it{iteration}-col{target_column}", column_blocks)

                def fetch(inner: int, _paths=dict(paths)) -> np.ndarray:
                    """Read one staged column block from the shared file system."""
                    return shared_fs.read(_paths[inner])

                with stopwatch.section("matvec"):
                    contributions = current.flatMap(
                        bb.matprod_column_contributions(target_column, fetch,
                                                        algebra, layout=layout))
                    column_result = contributions.reduceByKey(
                        bb.ElementwiseCombine(algebra), partitioner)
                    column_rdds.append(column_result)
            with stopwatch.section("union"):
                current = sc.union(column_rdds).cache()
                # Force materialization so per-iteration work is not replayed and
                # the lineage stays shallow, as the in-memory persistence of the
                # paper's implementation achieves.
                current.count()

        return current, squarings


def _orient_column(column_records, target_column: int, *,
                   layout: str = "triangular") -> dict[int, np.ndarray]:
    """Build ``{block-row K: A_{K, J}}`` for column ``J`` from stored blocks.

    Blocks pass through in their stored representation — packed-bitset blocks
    stay packed (their ``.T`` is a packed transpose), so the staged column of
    a reachability solve ships at 1/8th the bytes of ``bool`` blocks, and
    witnessed blocks keep their planes (their ``.T`` swaps parents/succs).
    Under the full grid the records *are* the column — no transposes, which
    is what lets single-plane (transpose-free) witnessed blocks stage.
    """
    column_blocks: dict[int, np.ndarray] = {}
    for (i, j), block in column_records:
        if not (bitset.is_packed(block) or witness.is_witnessed(block)):
            block = np.asarray(block)
        if j == target_column:
            column_blocks[i] = block
        if layout != "full" and i == target_column and j != target_column:
            column_blocks[j] = block.T
    return column_blocks

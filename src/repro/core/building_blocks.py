"""The functional building blocks of Table 1.

Each function here corresponds to an entry of Table 1 in the paper.  They are
written as *factories* returning closures suitable for passing to RDD
transformations, so a solver body reads almost exactly like the paper's
pseudo-code (e.g. ``A.filter(in_column(j))`` or
``A.map(floyd_warshall_block)``).

All kernels are parameterized by a :class:`~repro.linalg.algebra.Semiring`
(``algebra=None`` keeps the paper's (min, +)); the callables that must cross
process boundaries under the ``processes`` scheduler backend are picklable
classes, and semirings themselves pickle by name.

Two presentational differences from Table 1, both noted per function:

* With symmetric (upper-triangular) block storage, "column-block x" means
  every stored block with *either* index equal to ``x``; the symmetric
  predicates are provided alongside the literal ones.
* Block copies produced by ``CopyDiag``/``CopyCol`` carry an orientation tag
  (``'D'``, ``'L'``, ``'R'``, ``'A'``) so that ``ListUnpack`` can pick the
  correct operand order for the non-commutative semiring product.  The paper
  leaves this bookkeeping implicit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.linalg import bitset, witness
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.blocks import BlockId
from repro.linalg.kernels import fw_rank1_update, floyd_warshall_inplace
from repro.linalg.semiring import elementwise_combine, semiring_product


def copy_block(block):
    """Copy a block record's payload — dense ndarray, packed bitset or witnessed."""
    if bitset.is_packed(block) or witness.is_witnessed(block):
        return block.copy()
    return np.array(block, copy=True)

#: Record type used by all solvers: ``((I, J), block)``.
BlockRecord = tuple[BlockId, np.ndarray]

# Orientation tags used by the blocked solvers' pairing step.
TAG_BASE = "A"      # the block being updated
TAG_DIAG = "D"      # processed diagonal (pivot) block
TAG_LEFT = "L"      # left operand  A_It  of the phase-3 product
TAG_RIGHT = "R"     # right operand A_tJ  of the phase-3 product


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
def in_column(x: int) -> Callable[[BlockRecord], bool]:
    """``InColumn``: true when the record's block-column index ``J`` equals ``x``."""
    def predicate(record: BlockRecord) -> bool:
        """Test one block record against the column filter."""
        (_, j), _ = record
        return j == x
    return predicate


def in_row(x: int) -> Callable[[BlockRecord], bool]:
    """``InRow``: true when the record's block-row index ``I`` equals ``x``."""
    def predicate(record: BlockRecord) -> bool:
        """Test one block record against the row filter."""
        (i, _), _ = record
        return i == x
    return predicate


def in_block_row_or_column(x: int) -> Callable[[BlockRecord], bool]:
    """Symmetric-storage variant of ``InColumn``.

    With only upper-triangular blocks stored, block-column ``x`` of the full
    matrix is covered by stored blocks whose row *or* column index equals
    ``x`` (the latter provide the transposed part).
    """
    def predicate(record: BlockRecord) -> bool:
        """Test a record against the symmetric row/column filter."""
        (i, j), _ = record
        return i == x or j == x
    return predicate


def not_in_block_row_or_column(x: int) -> Callable[[BlockRecord], bool]:
    """Negation of :func:`in_block_row_or_column` (the Phase-3 block set)."""
    inner = in_block_row_or_column(x)
    return lambda record: not inner(record)


def on_diagonal(x: int) -> Callable[[BlockRecord], bool]:
    """``OnDiagonal``: true for the block ``(x, x)``."""
    def predicate(record: BlockRecord) -> bool:
        """Test whether a record is the pivot diagonal block."""
        (i, j), _ = record
        return i == x and j == x
    return predicate


def off_diagonal_in_row_or_column(x: int) -> Callable[[BlockRecord], bool]:
    """Stored blocks of block-row/column ``x`` excluding the diagonal block itself."""
    def predicate(record: BlockRecord) -> bool:
        """Test for off-diagonal blocks of the pivot row/column."""
        (i, j), _ = record
        return (i == x) ^ (j == x)
    return predicate


# ---------------------------------------------------------------------------
# Column extraction (2D Floyd-Warshall)
# ---------------------------------------------------------------------------
def extract_col(pivot_block: int, k_local: int) -> Callable[[BlockRecord], list]:
    """``ExtractCol``: emit ``(I, column-slice)`` pieces of global column ``k``.

    ``k = pivot_block * b + k_local``.  For a stored block ``(I, K)`` the piece
    is column ``k_local`` of the block; for a stored block ``(K, J)`` (which
    represents ``A_JK`` by transposition) the piece is row ``k_local``.
    Slices preserve the block dtype (float32 stays float32); packed-bitset
    blocks emit dense boolean slices — the pieces are per-block and tiny, so
    packing happens once at assembly instead, where
    :func:`assemble_column` turns a boolean column into a
    :class:`~repro.linalg.bitset.PackedVector` so the per-pivot broadcast
    ships 1/8th the bytes.  Witnessed blocks
    emit :class:`~repro.linalg.witness.WitnessVector` pieces whose single
    ``toward`` plane is each vertex's neighbour on its optimal path to the
    pivot vertex: the *successor* column for a column slice, the *parent* row
    for a row slice — the same quantity by symmetry, which is what lets one
    broadcast vector serve both operand roles of the rank-1 update.
    """
    def run(record: BlockRecord) -> list:
        """Emit this record's pieces of the pivot column."""
        (i, j), block = record
        pieces = []
        if witness.is_witnessed(block):
            if j == pivot_block:
                pieces.append((i, witness.WitnessVector(
                    np.array(block.values[:, k_local], copy=True),
                    np.array(block.succs[:, k_local], copy=True))))
            if i == pivot_block and j != pivot_block:
                pieces.append((j, witness.WitnessVector(
                    np.array(block.values[k_local, :], copy=True),
                    np.array(block.parents[k_local, :], copy=True))))
            return pieces
        if bitset.is_packed(block):
            if j == pivot_block:
                pieces.append((i, block.bit_column(k_local)))
            if i == pivot_block and j != pivot_block:
                pieces.append((j, block.bit_row(k_local)))
            return pieces
        if j == pivot_block:
            pieces.append((i, np.array(block[:, k_local], copy=True)))
        if i == pivot_block and j != pivot_block:
            pieces.append((j, np.array(block[k_local, :], copy=True)))
        return pieces
    return run


def extract_rowcol(pivot_block: int, k_local: int) -> Callable[[BlockRecord], list]:
    """Full-grid ``ExtractCol``: emit tagged pieces of pivot column *and* row ``k``.

    The directed counterpart of :func:`extract_col`: with all q² blocks
    stored nothing transposes, so the pivot **column** comes only from
    blocks in block-column ``pivot_block`` (tag ``("col", I)``) and the
    pivot **row** only from blocks in block-row ``pivot_block`` (tag
    ``("row", J)``) — they are different vectors for an asymmetric matrix.
    The column carries bare values (single-plane witnesses compose parents
    only, so the column operand needs no pointer plane); the row of a
    witnessed block carries the pivot's parent row as its ``toward`` plane.
    """
    def run(record: BlockRecord) -> list:
        """Emit this record's tagged pieces of the pivot row/column."""
        (i, j), block = record
        pieces = []
        if witness.is_witnessed(block):
            if j == pivot_block:
                pieces.append((("col", i),
                               np.array(block.values[:, k_local], copy=True)))
            if i == pivot_block:
                pieces.append((("row", j), witness.WitnessVector(
                    np.array(block.values[k_local, :], copy=True),
                    np.array(block.parents[k_local, :], copy=True))))
            return pieces
        if bitset.is_packed(block):
            if j == pivot_block:
                pieces.append((("col", i), block.bit_column(k_local)))
            if i == pivot_block:
                pieces.append((("row", j), block.bit_row(k_local)))
            return pieces
        if j == pivot_block:
            pieces.append((("col", i), np.array(block[:, k_local], copy=True)))
        if i == pivot_block:
            pieces.append((("row", j), np.array(block[k_local, :], copy=True)))
        return pieces
    return run


def assemble_column(pieces: list[tuple[int, np.ndarray]], n: int, block_size: int,
                    algebra: Semiring | str | None = None) -> np.ndarray:
    """Assemble ``(block-row index, slice)`` pieces into the full length-``n`` column.

    Cells not covered by any piece hold the algebra's ``zero`` ("no path").
    Witnessed pieces assemble into a full
    :class:`~repro.linalg.witness.WitnessVector` (uncovered ``toward`` cells
    hold :data:`~repro.linalg.witness.NO_VERTEX`).  Boolean (reachability)
    columns assemble into a :class:`~repro.linalg.bitset.PackedVector` — the
    fw-2d solver broadcasts the assembled vector every pivot, and packing
    shrinks that wire payload 8×; the rank-1 update callables are oblivious
    because packed-vector slices unpack to dense boolean windows.
    """
    algebra = get_algebra(algebra)
    if pieces and witness.is_witness_vector(pieces[0][1]):
        dtype = pieces[0][1].dtype
        values = np.full(n, algebra.zero_like(dtype), dtype=dtype)
        toward = np.full(n, witness.NO_VERTEX, dtype=np.int32)
        for block_row, piece in pieces:
            start = block_row * block_size
            values[start:start + piece.shape[0]] = piece.values
            toward[start:start + piece.shape[0]] = piece.toward
        return witness.WitnessVector(values, toward)
    dtype = (np.asarray(pieces[0][1]).dtype if pieces
             else np.dtype(algebra.default_dtype))
    if dtype.kind not in ("f", "b"):
        dtype = np.dtype(algebra.default_dtype)
    column = np.full(n, algebra.zero_like(dtype), dtype=dtype)
    for block_row, piece in pieces:
        start = block_row * block_size
        column[start:start + piece.shape[0]] = piece
    if dtype.kind == "b":
        return bitset.PackedVector.from_dense(column)
    return column


class FloydWarshallUpdateWithColumn:
    """``FloydWarshallUpdate``: rank-1 update of a block with the broadcast pivot column.

    Exploits symmetry: the pivot row equals the pivot column, so both operand
    slices come from the same vector.  A picklable callable so the
    ``processes`` backend can ship the update to worker processes.
    """

    __slots__ = ("column", "block_size", "algebra")

    def __init__(self, column: np.ndarray, block_size: int,
                 algebra: Semiring | str | None = None) -> None:
        self.column = column
        self.block_size = block_size
        self.algebra = get_algebra(algebra)

    def __call__(self, record: BlockRecord) -> BlockRecord:
        (i, j), block = record
        rows = self.column[i * self.block_size: i * self.block_size + block.shape[0]]
        cols = self.column[j * self.block_size: j * self.block_size + block.shape[1]]
        return (i, j), fw_rank1_update(block, rows, cols, self.algebra)


def fw_update_with_column(column: np.ndarray, block_size: int,
                          algebra: Semiring | str | None = None,
                          ) -> Callable[[BlockRecord], BlockRecord]:
    """Factory form of :class:`FloydWarshallUpdateWithColumn` (kept for symmetry)."""
    return FloydWarshallUpdateWithColumn(column, block_size, algebra)


class FloydWarshallUpdateWithRowCol:
    """Directed ``FloydWarshallUpdate``: distinct pivot column and pivot row.

    The full-grid counterpart of :class:`FloydWarshallUpdateWithColumn`: an
    asymmetric matrix's pivot row is *not* its pivot column, so the rank-1
    update broadcasts both vectors and slices the row operand from the
    column vector and the column operand from the row vector.  Picklable for
    the ``processes`` backend.
    """

    __slots__ = ("column", "row", "block_size", "algebra")

    def __init__(self, column: np.ndarray, row: np.ndarray, block_size: int,
                 algebra: Semiring | str | None = None) -> None:
        self.column = column
        self.row = row
        self.block_size = block_size
        self.algebra = get_algebra(algebra)

    def __call__(self, record: BlockRecord) -> BlockRecord:
        (i, j), block = record
        rows = self.column[i * self.block_size: i * self.block_size + block.shape[0]]
        cols = self.row[j * self.block_size: j * self.block_size + block.shape[1]]
        return (i, j), fw_rank1_update(block, rows, cols, self.algebra)


# ---------------------------------------------------------------------------
# Block kernels
# ---------------------------------------------------------------------------
class FloydWarshallBlock:
    """``FloydWarshall``: solve the path closure within a diagonal block.

    A picklable callable class (rather than a closure over the algebra) so
    the phase-1 kernel can run in worker processes under the ``processes``
    scheduler backend.
    """

    __slots__ = ("algebra",)

    def __init__(self, algebra: Semiring | str | None = None) -> None:
        self.algebra = get_algebra(algebra)

    def __call__(self, record: BlockRecord) -> BlockRecord:
        key, block = record
        return key, floyd_warshall_inplace(copy_block(block), self.algebra)


def floyd_warshall_block(record: BlockRecord) -> BlockRecord:
    """``FloydWarshall`` under (min, +) — the historical module-level kernel."""
    key, block = record
    return key, floyd_warshall_inplace(np.array(block, dtype=np.float64, copy=True))


def mat_min(record: BlockRecord, other: np.ndarray,
            algebra: Semiring | str | None = None) -> BlockRecord:
    """``MatMin``: elementwise ⊕ of the record's block with ``other``."""
    key, block = record
    return key, elementwise_combine(block, other, algebra)


def mat_prod(record: BlockRecord, other: np.ndarray,
             algebra: Semiring | str | None = None) -> BlockRecord:
    """``MatProd``: semiring product of the record's block with ``other``."""
    key, block = record
    return key, semiring_product(block, other, algebra)


def min_plus(record: BlockRecord, other: np.ndarray, *, other_on_left: bool = False,
             algebra: Semiring | str | None = None) -> BlockRecord:
    """``MinPlus``: ``MatProd`` followed by ``MatMin`` against the original block.

    ``other_on_left`` selects ``other ⊗ A_IJ`` instead of ``A_IJ ⊗ other``;
    the orientation matters because semiring products do not commute in
    general (even with a commutative ⊗, the matrix product does not).
    """
    key, block = record
    if other_on_left:
        prod = semiring_product(other, block, algebra)
    else:
        prod = semiring_product(block, other, algebra)
    return key, elementwise_combine(block, prod, algebra)


# ---------------------------------------------------------------------------
# Copy / pairing helpers for the blocked solvers
# ---------------------------------------------------------------------------
def tag_base(record: BlockRecord) -> tuple[BlockId, tuple[str, np.ndarray]]:
    """Wrap a stored block as the ``'A'`` (base) member of a pairing list."""
    key, block = record
    return key, (TAG_BASE, block)


def copy_diag(q: int, pivot: int, *, layout: str = "triangular",
              ) -> Callable[[BlockRecord], list]:
    """``CopyDiag``: create keyed copies of the processed diagonal block.

    Each copy is keyed by a stored block of block-row/column ``pivot`` so
    the subsequent ``combineByKey`` pairs it with the block it must update.
    Under the triangular layout that is one key per partner (``(X, pivot)``
    for ``X < pivot``, ``(pivot, X)`` for ``X > pivot``); under the full
    grid both ``(X, pivot)`` and ``(pivot, X)`` are distinct stored blocks
    and each gets its own copy (``2 (q - 1)`` in total).
    """
    def run(record: BlockRecord) -> list:
        """Emit the keyed copies of the pivot diagonal block."""
        (_, _), block = record
        out = []
        for x in range(q):
            if x == pivot:
                continue
            if layout == "full":
                out.append(((x, pivot), (TAG_DIAG, block)))
                out.append(((pivot, x), (TAG_DIAG, block)))
            else:
                key = (x, pivot) if x < pivot else (pivot, x)
                out.append((key, (TAG_DIAG, block)))
        return out
    return run


def copy_col(q: int, pivot: int) -> Callable[[BlockRecord], list]:
    """``CopyCol``: replicate updated row/column blocks to the Phase-3 targets.

    A stored block ``(I, pivot)`` (``I < pivot``) holds ``A_{I,pivot}``; it is
    the **left** operand for every target in block-row ``I`` and, transposed,
    the **right** operand for every target in block-column ``I``.  A stored
    block ``(pivot, J)`` (``J > pivot``) holds ``A_{pivot,J}``; it is the
    **right** operand for block-column ``J`` and, transposed, the **left**
    operand for block-row ``J``.  Targets are restricted to stored
    (upper-triangular) keys outside block-row/column ``pivot``.
    """
    def run(record: BlockRecord) -> list:
        """Emit the oriented operand copies for the phase-3 targets."""
        (i, j), block = record
        out = []
        if j == pivot and i != pivot:
            owner = i            # block A_{owner, pivot}
            left, right = block, block.T
        elif i == pivot and j != pivot:
            owner = j            # block A_{pivot, owner} -> transpose is A_{owner, pivot}
            left, right = block.T, block
        else:  # diagonal pivot block never reaches CopyCol
            return out
        for x in range(q):
            if x == pivot:
                continue
            key = (min(owner, x), max(owner, x))
            if x >= owner:
                # target (owner, x): left operand A_{owner, pivot}
                out.append((key, (TAG_LEFT, left)))
            if x <= owner:
                # target (x, owner): right operand A_{pivot, owner}
                out.append((key, (TAG_RIGHT, right)))
        return out
    return run


def copy_col_full(q: int, pivot: int) -> Callable[[BlockRecord], list]:
    """Full-grid ``CopyCol``: replicate pivot row/column blocks without transposes.

    With every block stored, orientation is trivial: stored ``(I, pivot)``
    is the **left** operand ``A_{I,pivot}`` for every phase-3 target
    ``(I, X)``, and stored ``(pivot, J)`` is the **right** operand
    ``A_{pivot,J}`` for every target ``(X, J)`` — ``X`` ranging over all
    block indices except ``pivot`` (including ``X == I``/``X == J``: the
    off-pivot diagonal blocks are ordinary phase-3 targets).  No ``.T``
    anywhere, which is what lets single-plane witnessed blocks flow through.
    """
    def run(record: BlockRecord) -> list:
        """Emit the oriented operand copies for the full-grid phase-3 targets."""
        (i, j), block = record
        out = []
        if j == pivot and i != pivot:
            for x in range(q):
                if x == pivot:
                    continue
                out.append(((i, x), (TAG_LEFT, block)))
        elif i == pivot and j != pivot:
            for x in range(q):
                if x == pivot:
                    continue
                out.append(((x, j), (TAG_RIGHT, block)))
        return out
    return run


def list_append(acc: list, item) -> list:
    """``ListAppend``: combiner that accumulates paired entries into a list."""
    acc.append(item)
    return acc


def create_list(item) -> list:
    """``ListAppend`` companion: create the initial single-element list."""
    return [item]


def merge_lists(a: list, b: list) -> list:
    """``ListAppend`` companion: merge two partial lists (combiner merge)."""
    return a + b


class ElementwiseCombine:
    """Picklable binary ⊕ for ``reduceByKey`` (``MatMin`` as a reducer)."""

    __slots__ = ("algebra",)

    def __init__(self, algebra: Semiring | str | None = None) -> None:
        self.algebra = get_algebra(algebra)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return elementwise_combine(a, b, self.algebra)


def unpack_phase2(pivot: int, algebra: Semiring | str | None = None,
                  ) -> Callable[[tuple[BlockId, list]], BlockRecord]:
    """``ListUnpack`` for Phase 2: pair a row/column block with the pivot diagonal.

    For a block in block-column ``pivot`` (key ``(I, pivot)``) the update is
    ``A ⊕ (A ⊗ D)``; for a block in block-row ``pivot`` (key ``(pivot, J)``)
    it is ``A ⊕ (D ⊗ A)``.
    """
    algebra = get_algebra(algebra)

    def run(item: tuple[BlockId, list]) -> BlockRecord:
        """Apply the phase-2 update to one paired record."""
        key, entries = item
        base = _find(entries, TAG_BASE)
        diag = _find(entries, TAG_DIAG)
        if base is None:
            raise ValueError(f"phase-2 pairing for block {key} is missing the base block")
        if diag is None:
            # A diagonal copy can be missing only if the block set is
            # inconsistent; keep the block unchanged to stay safe.
            return key, base
        i, j = key
        if j == pivot:
            updated = elementwise_combine(
                base, semiring_product(base, diag, algebra), algebra)
        else:
            updated = elementwise_combine(
                base, semiring_product(diag, base, algebra), algebra)
        return key, updated
    return run


def unpack_phase3(pivot: int, algebra: Semiring | str | None = None,
                  ) -> Callable[[tuple[BlockId, list]], BlockRecord]:
    """``ListUnpack`` + ``MatMin`` for Phase 3: ``A_IJ ⊕ (A_It ⊗ A_tJ)``."""
    algebra = get_algebra(algebra)

    def run(item: tuple[BlockId, list]) -> BlockRecord:
        """Apply the phase-3 update to one paired record."""
        key, entries = item
        base = _find(entries, TAG_BASE)
        left = _find(entries, TAG_LEFT)
        right = _find(entries, TAG_RIGHT)
        if base is None:
            raise ValueError(f"phase-3 pairing for block {key} is missing the base block")
        if left is None or right is None:
            return key, base
        return key, elementwise_combine(
            base, semiring_product(left, right, algebra), algebra)
    return run


def _find(entries: list, tag: str):
    for entry_tag, value in entries:
        if entry_tag == tag:
            return value
    return None


# ---------------------------------------------------------------------------
# Repeated-squaring emission
# ---------------------------------------------------------------------------
def matprod_column_contributions(target_column: int,
                                 column_blocks: dict[int, np.ndarray] | Callable[[int], np.ndarray],
                                 algebra: Semiring | str | None = None, *,
                                 layout: str = "triangular",
                                 ) -> Callable[[BlockRecord], list]:
    """Emit the semiring-product contributions of a stored block to output column ``J``.

    Under the triangular layout a stored block ``(R, C)`` plays two roles,
    ``A_RC`` and ``A_CR`` (by transposition), and output keys above the
    diagonal are skipped (covered by the symmetric mirror).  For output key
    ``(row, J)`` the contribution of role ``A_{row, inner}`` is
    ``A_{row, inner} ⊗ A_{inner, J}`` where ``A_{inner, J}`` is block
    ``inner`` of the staged column ``J``.  Under the full grid each stored
    block plays exactly its one role ``A_RC`` and every output key is real —
    no transposes, no skips.  ``column_blocks`` is either the dict of staged
    blocks or a callable fetching them lazily (e.g. from the shared file
    system).
    """
    algebra = get_algebra(algebra)

    def fetch(inner: int) -> np.ndarray:
        """Resolve a staged column block by block-row index."""
        if callable(column_blocks):
            return column_blocks(inner)
        return column_blocks[inner]

    def run(record: BlockRecord) -> list:
        """Emit this record's products into the target column."""
        (r, c), block = record
        if layout == "full":
            return [((r, target_column),
                     semiring_product(block, fetch(c), algebra))]
        roles = [(r, c, block)]
        if r != c:
            roles.append((c, r, block.T))
        out = []
        for row, inner, oriented in roles:
            if row > target_column:
                continue  # covered by the symmetric output block
            other = fetch(inner)
            out.append(((row, target_column),
                        semiring_product(oriented, other, algebra)))
        return out
    return run

"""2D Floyd-Warshall APSP solver (Algorithm 2 of the paper, Section 4.3).

The textbook parallel Floyd-Warshall over a 2D block decomposition: in
iteration ``k`` the pivot column ``k`` is extracted from the block column
``K = k // b``, collected on the driver, broadcast to all executors, and every
block applies the rank-1 ``FloydWarshallUpdate``.  The solver is *pure* — it
uses only fault-tolerant Spark operations and no wide transformations — but it
needs ``n`` synchronization rounds, which is what makes it unscalable in
practice (Table 2).
"""

from __future__ import annotations

from repro.common.timing import Stopwatch
from repro.core import building_blocks as bb
from repro.core.base import SparkAPSPSolver
from repro.core.registry import register_solver
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD


@register_solver(aliases=("fw2d", "2d-floyd-warshall"),
                 description="2D-decomposed Floyd-Warshall with a per-iteration "
                             "pivot collect+broadcast (Algorithm 2, pure)")
class FloydWarshall2DSolver(SparkAPSPSolver):
    """Pure-Spark 2D-decomposed Floyd-Warshall with per-pivot collect + broadcast."""

    name = "fw-2d"
    pure = True
    layouts = ("triangular", "full")
    algebras = SparkAPSPSolver.algebras + ("longest-path",)

    #: Materialize (cache + count) the block RDD every this many pivots to keep
    #: the narrow-lineage chain short.  Spark users achieve the same with
    #: periodic persistence; the interval does not change results.
    checkpoint_interval = 16

    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch, *,
             layout: str = "triangular"):
        algebra = self.algebra
        current = rdd
        for k in range(n):
            pivot_block = k // block_size
            k_local = k % block_size

            if layout == "full":
                # An asymmetric matrix's pivot row is not its pivot column:
                # extract both in one pass over the pivot cross (tagged
                # pieces), assemble and broadcast each, and feed the rank-1
                # update its two distinct operand vectors.
                with stopwatch.section("extract-column"):
                    pieces = current.filter(bb.in_block_row_or_column(pivot_block)) \
                        .flatMap(bb.extract_rowcol(pivot_block, k_local)).collect()
                    col_pieces = [(idx, piece) for (tag, idx), piece in pieces
                                  if tag == "col"]
                    row_pieces = [(idx, piece) for (tag, idx), piece in pieces
                                  if tag == "row"]
                    column = bb.assemble_column(col_pieces, n, block_size, algebra)
                    row = bb.assemble_column(row_pieces, n, block_size, algebra)
                with stopwatch.section("broadcast"):
                    col_broadcast = sc.broadcast(column)
                    row_broadcast = sc.broadcast(row)
                with stopwatch.section("update"):
                    current = current.map_preserving(
                        bb.FloydWarshallUpdateWithRowCol(
                            col_broadcast.value, row_broadcast.value,
                            block_size, algebra))
                    if (k + 1) % self.checkpoint_interval == 0 or k == n - 1:
                        current = current.cache()
                        current.count()
                continue

            with stopwatch.section("extract-column"):
                pieces = current.filter(bb.in_block_row_or_column(pivot_block)) \
                    .flatMap(bb.extract_col(pivot_block, k_local)).collect()
                column = bb.assemble_column(pieces, n, block_size, algebra)
            with stopwatch.section("broadcast"):
                broadcast = sc.broadcast(column)
            with stopwatch.section("update"):
                current = current.map_preserving(
                    bb.fw_update_with_column(broadcast.value, block_size, algebra))
                if (k + 1) % self.checkpoint_interval == 0 or k == n - 1:
                    current = current.cache()
                    current.count()
        return current, n

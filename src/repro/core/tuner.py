"""Calibrated auto-tuning: resolve ``solver="auto"`` from fitted constants.

The paper's pitch is raw speed *without the user knowing the configuration
space exists*: a cost model, anchored to measured machine constants, picks
the solver, the decomposition parameter ``b``, and the execution shape.
This module is that loop's last mile.  ``apspark bench calibrate``
(:mod:`repro.cluster.fitting`) regresses per-unit machine constants out of
archived bench results; :func:`resolve_auto` prices every registry-supported
candidate configuration for the request at hand with those constants — via
the very same :func:`~repro.cluster.fitting.predict_seconds` the accuracy
report grades — and rewrites the request to the cheapest one.

Tuning is deliberately conservative about what it overrides:

* **solver** and (when unset) **block size** are always chosen;
* **storage** is enumerated only when the request carries the algebra's
  default — an explicit non-default choice is a user constraint;
* **layout** follows the input's symmetry (a correctness matter, not a
  preference) and **dtype** is never changed (it alters numerics);
* **backend** is fixed by the engine's :class:`~repro.common.config.EngineConfig`
  — a session-level resource decision — but the decision records the
  cheapest backend as ``recommended_backend`` so callers can see when a
  different pool would pay off.

Decisions are deterministic for a fixed calibration document: candidates are
enumerated in sorted order and ties break on the (predicted, solver, block,
storage) tuple.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.fitting import (load_calibration, paper_constants,
                                   predict_seconds)
from repro.common.config import EngineConfig, default_config
from repro.common.errors import ConfigurationError
from repro.core.base import auto_block_size
from repro.core.registry import solver_info, solvers_for
from repro.core.request import SolveRequest
from repro.linalg.algebra import get_algebra

#: Environment variable naming a calibration file to use instead of the
#: repository default.
CALIBRATION_ENV = "APSPARK_CALIBRATION"

#: Default on-disk location (relative to the working directory) that
#: ``apspark bench calibrate`` writes and the tuner reads.
DEFAULT_CALIBRATION_PATH = os.path.join("benchmarks", "calibration.json")

#: The documented default configuration the tuner must never beat itself
#: with: the paper's Blocked-CB solver at the heuristic block size.
DEFAULT_SOLVER = "blocked-cb"


@dataclass(frozen=True)
class TunerDecision:
    """One resolved ``solver="auto"`` choice, fully observable.

    ``predicted_seconds`` and ``default_predicted_seconds`` come from the
    same calibrated predictor, so ``predicted_seconds <=
    default_predicted_seconds`` always holds — the default configuration is
    itself one of the scored candidates.
    """

    solver: str
    block_size: int
    storage: str
    layout: str
    backend: str
    predicted_seconds: float
    default_predicted_seconds: float
    recommended_backend: str
    calibration_source: str
    candidates: int
    n: int
    density: float | None = None

    def as_dict(self) -> dict:
        """Plain-dict view for ``engine.stats()`` / result metrics."""
        return {
            "solver": self.solver,
            "block_size": self.block_size,
            "storage": self.storage,
            "layout": self.layout,
            "backend": self.backend,
            "predicted_seconds": self.predicted_seconds,
            "default_predicted_seconds": self.default_predicted_seconds,
            "recommended_backend": self.recommended_backend,
            "calibration_source": self.calibration_source,
            "candidates": self.candidates,
            "n": self.n,
            "density": self.density,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"auto -> {self.solver} b={self.block_size} "
                f"storage={self.storage} layout={self.layout} "
                f"predicted={self.predicted_seconds:.4f}s "
                f"(default {self.default_predicted_seconds:.4f}s, "
                f"{self.candidates} candidates, {self.calibration_source})")


def active_calibration(path: str | None = None) -> tuple[dict, str]:
    """Locate the calibration constants the tuner should price with.

    Priority: an explicit ``path`` argument, then the ``APSPARK_CALIBRATION``
    environment variable, then ``benchmarks/calibration.json`` in the working
    directory, then the built-in paper-flavoured fallback constants.  Returns
    ``(constants, source)`` where ``source`` is the file path or
    ``"paper-default"``.
    """
    candidates = []
    if path is not None:
        candidates.append(path)
    env_path = os.environ.get(CALIBRATION_ENV)
    if env_path:
        candidates.append(env_path)
    candidates.append(DEFAULT_CALIBRATION_PATH)
    for candidate in candidates:
        if os.path.isfile(candidate):
            calibration = load_calibration(candidate)
            return calibration["constants"], candidate
    return paper_constants(), "paper-default"


def candidate_block_sizes(n: int, total_cores: int,
                          partitions_per_core: int, *,
                          layout: str) -> list[int]:
    """Deterministic block-size candidate set for an ``n x n`` problem.

    The heuristic :func:`auto_block_size` pick is always included (it is the
    documented default), surrounded by the power-of-two ladder the bench
    suites sweep.  Everything is clamped to ``[1, n]`` and deduplicated.
    """
    heuristic = auto_block_size(n, total_cores, partitions_per_core,
                                layout=layout)
    ladder = {16, 32, 64, 128, 256}
    ladder.update({heuristic, max(1, heuristic // 2), heuristic * 2})
    if n <= 64:
        ladder.add(n)  # single-block degenerate case is real for tiny graphs
    return sorted({max(1, min(int(b), n)) for b in ladder})


def _candidate_storages(request: SolveRequest) -> list[str]:
    """Storage policies the tuner may choose between for this request.

    Only the algebra-default storage is treated as tunable; an explicit
    non-default request is honoured as a constraint.  ``paths=True`` pins
    dense storage (there are no packed witness kernels).
    """
    algebra = get_algebra(request.algebra)
    default = algebra.resolve_storage(None, paths=request.paths)
    if request.storage != default or request.paths:
        return [request.storage]
    return sorted(algebra.storages)


def _measured_density(adjacency, algebra_name: str) -> float | None:
    """Fraction of connected off-diagonal entries, for observability.

    The fitted model is density-independent (dense block kernels do the same
    work either way), but the decision records what it saw so future
    calibrations can add density terms without changing the interface.
    """
    try:
        matrix = np.asarray(
            adjacency.toarray() if hasattr(adjacency, "toarray") else adjacency)
    except Exception:  # noqa: BLE001 — density is advisory only
        return None
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1] or matrix.size == 0:
        return None
    n = matrix.shape[0]
    if n < 2:
        return 0.0
    off_diag = ~np.eye(n, dtype=bool)
    if matrix.dtype == np.bool_:
        connected = matrix & off_diag
    else:
        zero = get_algebra(algebra_name).zero
        with np.errstate(invalid="ignore"):
            connected = np.isfinite(matrix) & (matrix != zero) & off_diag
    return float(np.count_nonzero(connected)) / float(n * (n - 1))


def _request_params(request: SolveRequest, config: EngineConfig, *, n: int,
                    solver: str, block_size: int, storage: str,
                    layout: str, backend: str) -> dict:
    """A scenario-params dict for one candidate, as the fitter expects."""
    return {
        "n": n,
        "solver": solver,
        "backend": backend,
        "block_size": block_size,
        "algebra": request.algebra,
        "dtype": request.dtype,
        "storage": storage,
        "layout": layout,
        "directed": request.directed,
        "paths": request.paths,
        "num_executors": config.num_executors,
        "cores_per_executor": config.cores_per_executor,
        "partitions_per_core": request.partitions_per_core,
        "num_partitions": request.num_partitions,
    }


def choose_config(request: SolveRequest, *, n: int,
                  config: EngineConfig | None = None,
                  symmetric: bool = True,
                  constants: dict | None = None,
                  calibration_source: str = "explicit",
                  density: float | None = None) -> TunerDecision:
    """Pick the cheapest registry-supported configuration for a request.

    ``n`` is the problem size and ``symmetric`` whether the adjacency is
    symmetric (resolves a ``layout="auto"`` request — a correctness
    constraint the tuner never trades away).  ``constants`` is the
    calibration ``constants`` subtree; omitted, the active calibration is
    located via :func:`active_calibration`.
    """
    if n < 1:
        raise ConfigurationError(f"cannot tune a solve of size n={n}")
    config = config or default_config()
    if constants is None:
        constants, calibration_source = active_calibration()

    layout = request.layout
    if layout == "auto":
        layout = "triangular" if (symmetric and not request.directed) else "full"
    solvers = solvers_for(request.algebra, layout)
    if not solvers:
        raise ConfigurationError(
            f"no registered solver supports algebra {request.algebra!r} "
            f"with layout {layout!r}")
    storages = _candidate_storages(request)
    total_cores = config.num_executors * config.cores_per_executor
    backend = config.backend

    def blocks_for(candidate_solver: str) -> list[int]:
        if request.block_size is not None:
            return [int(request.block_size)]
        return candidate_block_sizes(n, total_cores,
                                     request.partitions_per_core,
                                     layout=layout)

    # The documented default: Blocked-CB (or the first supported solver) at
    # the heuristic block size with the request's own storage.  It is scored
    # with the same predictor and always part of the candidate pool, which
    # is what makes "never predicted-slower than the default" a theorem
    # rather than a hope.
    default_solver = (DEFAULT_SOLVER if DEFAULT_SOLVER in solvers
                      else solvers[0])
    default_block = (int(request.block_size) if request.block_size is not None
                     else auto_block_size(n, total_cores,
                                          request.partitions_per_core,
                                          layout=layout))
    default_block = max(1, min(default_block, n))
    default_params = _request_params(
        request, config, n=n, solver=default_solver,
        block_size=default_block, storage=request.storage, layout=layout,
        backend=backend)
    default_predicted = predict_seconds(default_params, constants)

    best: tuple[float, str, int, str] | None = None
    candidates = 0
    for solver in solvers:
        if not solver_info(solver).supports_layout(layout):
            continue
        for storage in storages:
            for block in blocks_for(solver):
                params = _request_params(
                    request, config, n=n, solver=solver, block_size=block,
                    storage=storage, layout=layout, backend=backend)
                predicted = predict_seconds(params, constants)
                candidates += 1
                key = (predicted, solver, block, storage)
                if best is None or key < best:
                    best = key
    assert best is not None  # solvers is non-empty and blocks_for never is
    predicted, solver, block, storage = best
    if predicted > default_predicted:
        # Numerically impossible when the default is in the pool (it is,
        # unless an explicit non-default storage constrains the sweep away
        # from it) — clamp to the default either way.
        predicted = default_predicted
        solver, block, storage = default_solver, default_block, request.storage

    chosen_params = _request_params(
        request, config, n=n, solver=solver, block_size=block,
        storage=storage, layout=layout, backend=backend)
    recommended_backend = min(
        ("processes", "serial", "threads"),
        key=lambda b: (predict_seconds({**chosen_params, "backend": b},
                                       constants), b))
    return TunerDecision(
        solver=solver, block_size=block, storage=storage, layout=layout,
        backend=backend, predicted_seconds=predicted,
        default_predicted_seconds=default_predicted,
        recommended_backend=recommended_backend,
        calibration_source=calibration_source, candidates=candidates,
        n=n, density=density)


def resolve_auto(request: SolveRequest, adjacency, *,
                 config: EngineConfig | None = None,
                 constants: dict | None = None,
                 calibration_source: str = "explicit"
                 ) -> tuple[SolveRequest, TunerDecision]:
    """Rewrite a ``solver="auto"`` request to the tuner's concrete choice.

    Returns the rewritten request (re-validated through the normal
    :class:`SolveRequest` checks) and the :class:`TunerDecision` describing
    what was picked and why.  Non-auto requests pass through unchanged with
    a decision priced at their own configuration.
    """
    matrix = np.asarray(
        adjacency.toarray() if hasattr(adjacency, "toarray") else adjacency)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"adjacency must be a square matrix, got shape {matrix.shape}")
    n = int(matrix.shape[0])
    symmetric = bool(request.directed is False
                     and np.array_equal(matrix, matrix.T))
    if constants is None:
        constants, calibration_source = active_calibration()
    decision = choose_config(
        request, n=n, config=config, symmetric=symmetric,
        constants=constants, calibration_source=calibration_source,
        density=_measured_density(matrix, request.algebra))
    if request.solver != "auto":
        return request, decision
    resolved = replace(request, solver=decision.solver,
                       block_size=decision.block_size,
                       storage=decision.storage, layout=decision.layout)
    return resolved, decision

"""Blocked In-Memory APSP solver (Algorithm 3 of the paper, Section 4.4).

The blocked Floyd-Warshall of Venkataraman et al. expressed purely with
fault-tolerant Spark operations.  Each of the ``q`` iterations runs three
phases:

1. the pivot diagonal block ``A_tt`` is solved with a sequential APSP kernel;
2. the blocks of block-row/column ``t`` are updated against the pivot block,
   which is replicated to them via ``flatMap(CopyDiag)`` + ``partitionBy`` +
   ``combineByKey`` (data shuffling simulating a broadcast, because Spark
   exposes no executor-initiated broadcast);
3. all remaining blocks are updated with the pair ``A_It ⊗ A_tJ``, again by
   replicating the updated row/column blocks via ``CopyCol`` and pairing with
   ``combineByKey``.

Every phase ends in a ``partitionBy`` so partition counts stay bounded; the
price is one shuffle per phase whose spills accumulate in local storage — the
failure mode the paper observes at small block sizes (Section 5.2).
"""

from __future__ import annotations

from repro.common.timing import Stopwatch
from repro.core import building_blocks as bb
from repro.core.base import SparkAPSPSolver
from repro.core.registry import register_solver
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD


@register_solver(aliases=("blocked-in-memory", "im"),
                 description="Blocked (Venkataraman) APSP expressed entirely with "
                             "Spark shuffles (Algorithm 3, pure)")
class BlockedInMemorySolver(SparkAPSPSolver):
    """Pure-Spark blocked APSP relying on shuffles to pair pivot data with blocks."""

    name = "blocked-im"
    pure = True
    layouts = ("triangular", "full")
    algebras = SparkAPSPSolver.algebras + ("longest-path",)

    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch, *,
             layout: str = "triangular"):
        algebra = self.algebra
        # Under the full grid the pivot row and column are distinct stored
        # blocks, so CopyDiag/CopyCol replicate without transposing; the
        # phase predicates and unpackers are orientation-keyed and work on
        # either layout unchanged.
        current = rdd
        for pivot in range(q):
            # ---- Phase 1: solve the pivot diagonal block ---------------------
            with stopwatch.section("phase1-diagonal"):
                diag = current.filter(bb.on_diagonal(pivot)) \
                    .map_preserving(bb.FloydWarshallBlock(algebra)).cache()
                diag_copies = diag.flatMap(bb.copy_diag(q, pivot, layout=layout)) \
                    .partitionBy(partitioner)

            # ---- Phase 2: update block-row/column of the pivot ----------------
            with stopwatch.section("phase2-rowcol"):
                rowcol = current.filter(bb.off_diagonal_in_row_or_column(pivot)) \
                    .map_preserving(bb.tag_base)
                paired = sc.union([diag_copies, rowcol]).combineByKey(
                    bb.create_list, bb.list_append, bb.merge_lists, partitioner)
                updated_rowcol = paired.map_preserving(
                    bb.unpack_phase2(pivot, algebra)).cache()
                copier = (bb.copy_col_full(q, pivot) if layout == "full"
                          else bb.copy_col(q, pivot))
                rowcol_copies = updated_rowcol.flatMap(copier) \
                    .partitionBy(partitioner)

            # ---- Phase 3: update the remaining blocks --------------------------
            with stopwatch.section("phase3-remaining"):
                others = current.filter(bb.not_in_block_row_or_column(pivot)) \
                    .map_preserving(bb.tag_base)
                paired3 = sc.union([rowcol_copies, others]).combineByKey(
                    bb.create_list, bb.list_append, bb.merge_lists, partitioner)
                updated_others = paired3.map_preserving(bb.unpack_phase3(pivot, algebra))

            # ---- Reassemble A for the next iteration ---------------------------
            with stopwatch.section("repartition"):
                current = sc.union([diag, updated_rowcol, updated_others]) \
                    .partitionBy(partitioner).cache()
                current.count()
        return current, q

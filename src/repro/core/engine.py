"""`APSPEngine`: a persistent session that runs many solves on one context.

The paper's experiments (Tables 2/3, Figures 2/3/5) all run dozens of solves
against a single long-lived Spark cluster.  :class:`APSPEngine` models that
shape: it owns one :class:`~repro.spark.context.SparkContext` for its whole
lifetime, accepts typed :class:`~repro.core.request.SolveRequest` objects,
and offers both a synchronous :meth:`solve` and a batch interface
(:meth:`submit` / :meth:`solve_many`) that hands back :class:`APSPJob`
records with stable job ids, per-job timings, and per-job engine metrics.

Example
-------
>>> from repro.graph import erdos_renyi_adjacency
>>> from repro.core.engine import APSPEngine
>>> from repro.core.request import SolveRequest
>>> adj = erdos_renyi_adjacency(48, seed=7)
>>> with APSPEngine() as engine:
...     a = engine.solve(adj, SolveRequest(solver="blocked-cb", block_size=16))
...     b = engine.solve(adj, solver="blocked-im", block_size=12)
...     engine.stats()["jobs_completed"]
2
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.common.config import EngineConfig, default_config
from repro.common.errors import ConfigurationError, SolverError
from repro.core import dynamic
from repro.core.base import APSPResult, SolvePlan, SparkAPSPSolver
from repro.core.dynamic import ClosureState
from repro.core.registry import get_solver_class
from repro.core.request import SolveRequest, UpdateReport
from repro.core.tuner import TunerDecision, resolve_auto
from repro.serve.service import RouteAnswer, RouteService
from repro.spark.context import SparkContext

#: Job lifecycle states.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


@dataclass
class APSPJob:
    """One unit of engine work: a request plus its lifecycle and outcome.

    Jobs are created by :meth:`APSPEngine.submit` in the ``pending`` state;
    :meth:`result` (or the engine's :meth:`APSPEngine.run_pending` /
    :meth:`APSPEngine.solve_many`) drives them to ``done`` or ``failed``.
    ``job_id`` values are stable and ordered (``job-0001``, ``job-0002``, …)
    within one engine session.
    """

    job_id: str
    request: SolveRequest
    adjacency: np.ndarray | None  # released once the job has executed
    status: str = JOB_PENDING
    elapsed_seconds: float | None = None
    error: Exception | None = None
    _result: APSPResult | None = field(default=None, repr=False)
    _engine: "APSPEngine | None" = field(default=None, repr=False)
    capture_plan: bool = field(default=False, repr=False)
    _plan: SolvePlan | None = field(default=None, repr=False)
    #: Set when the request arrived as ``solver="auto"``: the calibrated
    #: tuner's choice, echoed into the result's metrics after execution.
    tuner_decision: TunerDecision | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """True once the job has a result (or failed)."""
        return self.status in (JOB_DONE, JOB_FAILED)

    def result(self) -> APSPResult:
        """Return the solve result, executing the job now if still pending.

        Raises the job's original error if execution failed.
        """
        if self.status == JOB_PENDING:
            if self._engine is None:
                raise SolverError(f"{self.job_id} is detached from its engine")
            self._engine._execute_job(self)
        if self.error is not None:
            raise self.error
        assert self._result is not None
        return self._result

    def summary(self) -> str:
        """One-line status summary."""
        timing = f" {self.elapsed_seconds:.3f}s" if self.elapsed_seconds is not None else ""
        return f"{self.job_id} [{self.status}]{timing} {self.request.describe()}"


class APSPEngine:
    """A reusable APSP solving session backed by a single Spark context.

    Parameters
    ----------
    config:
        Engine configuration shared by every solve of the session.  The
        config object is never mutated: temporary shared-filesystem
        directories are owned (and cleaned up) by the underlying context,
        not written back into the config.
    fault_plan:
        Optional :class:`~repro.spark.faults.FaultPlan` injected into the
        session's context — the chaos driver and the fault-tolerance tests
        use this to schedule crashes/timeouts/corruptions deterministically.

    Use as a context manager (``with APSPEngine(cfg) as engine: ...``) or
    call :meth:`start` / :meth:`stop` explicitly.  All solves of a session
    share one :class:`SparkContext`, so per-session engine metrics
    (:attr:`metrics`) accumulate across solves while each
    :class:`~repro.core.base.APSPResult` still reports its own delta.
    """

    def __init__(self, config: EngineConfig | None = None,
                 fault_plan=None) -> None:
        self.config = config or default_config()
        self._fault_plan = fault_plan
        self._context: SparkContext | None = None
        self._closed = False
        self._job_counter = itertools.count(1)
        self.jobs: list[APSPJob] = []
        self._jobs_submitted = 0
        self._solves_completed = 0
        self._solves_failed = 0
        self._total_solve_seconds = 0.0
        self._started_at: float | None = None
        self._service: RouteService | None = None
        self._closure: ClosureState | None = None
        self._update_batches = 0
        self._update_edges = 0
        self._updates_incremental = 0
        self._updates_resolved = 0
        self._updates_failed = 0
        self._update_seconds = 0.0
        self._tuner_decisions: list[TunerDecision] = []

    # ------------------------------------------------------------------ lifecycle
    def __enter__(self) -> "APSPEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """True while the session owns a live Spark context."""
        return self._context is not None

    @property
    def context(self) -> SparkContext:
        """The session's Spark context (started lazily on first access).

        Once :meth:`stop` has been called the session is closed and this
        raises instead of silently spinning up a context nothing would ever
        stop; call :meth:`start` (or enter a new ``with`` block) to reopen.
        """
        if self._context is None:
            if self._closed:
                raise SolverError(
                    "engine session is stopped; call start() (or use a new "
                    "'with' block) before solving again")
            self.start()
        assert self._context is not None
        return self._context

    def start(self) -> "APSPEngine":
        """Create the session's Spark context (idempotent; reopens after stop())."""
        self._closed = False
        if self._context is None:
            self._context = SparkContext(self.config, self._fault_plan)
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> None:
        """Stop the context, releasing scheduler threads and any owned temp storage."""
        self._closed = True
        if self._context is not None:
            self._context.stop()
            self._context = None

    # ------------------------------------------------------------------ submission
    def _coerce_request(self, request: SolveRequest | None,
                        kwargs: dict[str, Any]) -> SolveRequest:
        if request is not None and kwargs:
            return SolveRequest.coerce(request, **kwargs)
        if request is not None:
            return request
        return SolveRequest.coerce(None, **kwargs)

    def submit(self, adjacency: np.ndarray, request: SolveRequest | None = None,
               **kwargs: Any) -> APSPJob:
        """Enqueue one solve and return its :class:`APSPJob` (not yet executed).

        Accepts a prebuilt :class:`SolveRequest`, loose keyword options
        (``solver=..., block_size=...``), or both (keywords override).
        """
        req = self._coerce_request(request, kwargs)
        decision = None
        if req.solver == "auto":
            # Resolve the auto-tuned configuration now, while the adjacency
            # is in hand (its size and symmetry shape the candidate space).
            req, decision = resolve_auto(req, adjacency, config=self.config)
            self._tuner_decisions.append(decision)
        job = APSPJob(job_id=f"job-{next(self._job_counter):04d}", request=req,
                      adjacency=adjacency, _engine=self,
                      tuner_decision=decision)
        self.jobs.append(job)
        self._jobs_submitted += 1
        return job

    def solve(self, adjacency: np.ndarray, request: SolveRequest | None = None,
              *, keep_closure: bool = False, **kwargs: Any) -> APSPResult:
        """Solve one instance synchronously on the session context.

        The transient job is dropped from :attr:`jobs` once the result is
        returned (the caller holds the result; keeping a second reference
        per solve would grow session memory without bound), while the
        session counters in :meth:`stats` still record it.

        ``keep_closure=True`` additionally caches the solved closure — the
        distance matrix, the prepared adjacency, and the predecessor matrix
        for ``paths=True`` requests — as the session's
        :class:`~repro.core.dynamic.ClosureState`, enabling subsequent
        :meth:`update` calls to maintain it incrementally instead of
        re-solving from scratch.
        """
        job = self.submit(adjacency, request, **kwargs)
        job.capture_plan = keep_closure
        try:
            result = job.result()
        finally:
            self.jobs.remove(job)
        if keep_closure:
            assert job._plan is not None
            self._closure = ClosureState(
                distances=result.distances, adjacency=job._plan.adjacency,
                request=job.request, layout=result.layout,
                parents=result.parents)
        return result

    def solve_many(self, items: Iterable[np.ndarray | tuple[np.ndarray, SolveRequest]],
                   request: SolveRequest | None = None, **kwargs: Any) -> list[APSPJob]:
        """Submit and run a batch, returning the finished jobs in order.

        ``items`` is a sequence of adjacency matrices — or of
        ``(adjacency, request)`` pairs for per-item requests.  A shared
        ``request`` (or loose keywords) applies to the bare matrices.
        Failed jobs are returned with ``status == "failed"`` and the error
        attached rather than aborting the rest of the batch.
        """
        jobs: list[APSPJob] = []
        for item in items:
            if isinstance(item, tuple):
                adjacency, item_request = item
                jobs.append(self.submit(adjacency, item_request))
            else:
                jobs.append(self.submit(item, request, **kwargs))
        for job in jobs:
            try:
                job.result()
            except Exception:  # noqa: BLE001 — recorded on the job
                pass
        return jobs

    def clear_jobs(self) -> list[APSPJob]:
        """Drop finished jobs from the session history and return them.

        Pending jobs are kept.  Session counters (``jobs_completed`` etc.)
        are unaffected, so :meth:`stats` still reflects the whole session;
        this only releases the per-job objects (and the results they hold)
        for long-running sessions.
        """
        finished = [job for job in self.jobs if job.done]
        self.jobs = [job for job in self.jobs if not job.done]
        return finished

    def run_pending(self) -> list[APSPJob]:
        """Execute every still-pending job; returns the jobs that were run."""
        pending = [job for job in self.jobs if job.status == JOB_PENDING]
        for job in pending:
            try:
                job.result()
            except Exception:  # noqa: BLE001 — recorded on the job
                pass
        return pending

    # ------------------------------------------------------------------ serving
    @property
    def service(self) -> RouteService | None:
        """The session's open :class:`RouteService`, or None before serve()."""
        return self._service

    def serve(self, adjacency: np.ndarray, request: SolveRequest | None = None,
              *, budget_bytes: int | None = None, max_rows: int | None = None,
              keep_result: bool = False, **kwargs: Any) -> RouteService:
        """Solve the closure once, then open a route-serving session over it.

        Runs one ``paths=False`` solve (distances only — parent rows are
        solved *lazily* per queried source, which is the whole point: the
        full ``n x n`` predecessor matrix is never materialized) and returns
        a :class:`~repro.serve.service.RouteService` bound to the cached
        closure.  The service is also reachable through :attr:`service` /
        :meth:`route` / :meth:`routes`, and its analytics ride along in
        :meth:`stats` under the ``"serve"`` key.

        ``budget_bytes`` / ``max_rows`` bound the parent-row cache;
        ``keep_result`` retains the full :class:`APSPResult` on the service
        (``service.closure_result``) for callers that also want the solve's
        metrics.  A ``paths=True`` request is rejected: eagerly solving the
        predecessor matrix would defeat the lazy row cache.
        """
        req = self._coerce_request(request, kwargs)
        if req.paths:
            raise ConfigurationError(
                "serve() computes parent rows lazily per queried source; "
                "request paths=False (the default) instead of paths=True")
        result = self.solve(adjacency, req, keep_closure=True)
        # Row solves read edges from the same domain the solver saw: prepared
        # dense (missing = algebra zero) or canonical CSR — never densified.
        # Binding the service to the cached ClosureState's arrays (same
        # ndarray identity) is what keeps it coherent across update():
        # in-place closure/adjacency mutations are visible without copies.
        assert self._closure is not None
        service = RouteService(result.distances, self._closure.raw_adjacency,
                               req.algebra, budget_bytes=budget_bytes,
                               max_rows=max_rows,
                               result=result if keep_result else None)
        self._service = service
        return service

    def route(self, src: int, dst: int) -> RouteAnswer:
        """Answer one route query on the session's open serving session."""
        return self._require_service().route(src, dst)

    def routes(self, pairs) -> list[RouteAnswer]:
        """Answer a batch of ``(src, dst)`` queries on the open serving session."""
        return self._require_service().routes(pairs)

    def _require_service(self) -> RouteService:
        if self._service is None:
            raise SolverError(
                "no serving session is open; call engine.serve(adjacency, ...) "
                "to solve a closure and start answering route queries")
        return self._service

    # ------------------------------------------------------------------ updates
    @property
    def closure(self) -> ClosureState | None:
        """The cached closure from the last ``keep_closure`` solve / serve()."""
        return self._closure

    def update(self, edges, *, force: str | None = None,
               calibration=None) -> UpdateReport:
        """Apply a batch of edge updates to the session's cached closure.

        ``edges`` is an iterable of :class:`~repro.core.request.EdgeUpdate`
        objects or ``(u, v, weight)`` tuples (``weight=None`` or a bare
        ``(u, v)`` pair deletes the edge).  Requires a cached closure from
        ``solve(..., keep_closure=True)`` or :meth:`serve`.

        Mode selection is cost-model driven: a batch of k improvements costs
        ``O(k n²)`` rank-1 sweeps against the cached closure versus ``O(n³)``
        for a re-solve, so batches below the estimated break-even size
        (:func:`~repro.cluster.costmodel.update_break_even`, roughly
        ``0.46 n`` edges for an undirected dense float64 closure) run
        incrementally and larger ones fall back to a full re-closure.
        Worsenings (weight increases / deletions) use the restricted path —
        only rows whose optimal routes crossed the old edge are recomputed —
        and escalate to a re-solve when that set grows past a quarter of all
        rows.  ``force="incremental"`` / ``force="resolve"`` overrides the
        model (a non-absorptive algebra such as longest-path still refuses
        ``"incremental"``: rank-1 sweeps are unsound there).

        An open serving session bound to this closure is kept coherent:
        exactly the changed rows are invalidated from its parent-row cache.
        Returns an :class:`~repro.core.request.UpdateReport` with the
        decision, per-kind edge counts, and the cost-model estimates.
        """
        state = self._closure
        if state is None:
            raise SolverError(
                "no cached closure to update; run solve(..., keep_closure="
                "True) or serve(...) first")
        if force not in (None, "incremental", "resolve"):
            raise ConfigurationError(
                f"force must be None, 'incremental' or 'resolve', got {force!r}")
        batch = dynamic.coerce_edges(edges)
        estimates = dynamic.update_estimates(state, len(batch),
                                             calibration=calibration)
        if not batch:
            return UpdateReport(
                mode="noop", reason="empty batch", edges=0,
                improvements=0, worsenings=0, noops=0, changed_rows=0,
                estimated_incremental_seconds=0.0,
                estimated_resolve_seconds=estimates["resolve_seconds"],
                break_even_edges=estimates["break_even_edges"])
        if force == "incremental" and not state.algebra.absorptive:
            raise ConfigurationError(
                f"algebra {state.algebra.name!r} is not absorptive: a rank-1 "
                f"sweep may route a path through a vertex twice, which only "
                f"absorptive semirings ignore; use force='resolve' or "
                f"automatic mode")
        if force is not None:
            mode, reason = force, f"forced {force}"
        elif not state.algebra.absorptive:
            mode = "resolve"
            reason = (f"algebra {state.algebra.name} is not absorptive; "
                      f"rank-1 sweeps are unsound")
        elif len(batch) >= estimates["break_even_edges"]:
            mode = "resolve"
            reason = (f"batch of {len(batch)} edges >= break-even "
                      f"{estimates['break_even_edges']}")
        else:
            mode = "incremental"
            reason = (f"batch of {len(batch)} edges < break-even "
                      f"{estimates['break_even_edges']}")
        start = time.perf_counter()
        changed_rows: np.ndarray | None = None  # None = every row changed
        bound_service = (self._service if self._service is not None
                         and self._service.distances is state.distances
                         else None)
        # The whole batch is transactional: any failure — mid-sweep or in the
        # re-solve fallback — rolls the closure back to this snapshot, so a
        # bound RouteService keeps answering from the last good closure
        # (degraded, but never torn).
        snapshot = state.snapshot()
        try:
            if mode == "incremental":
                outcome = dynamic.apply_incremental(
                    state, batch, allow_fallback=force != "incremental")
                if outcome.fallback_reason is not None:
                    mode, reason = "resolve", outcome.fallback_reason
                    self._resolve_closure(state)
                else:
                    changed_rows = np.flatnonzero(outcome.changed)
            else:
                outcome = dynamic.fold_edges(
                    state, batch,
                    dynamic.UpdateOutcome(changed=np.ones(state.n, dtype=bool)))
                self._resolve_closure(state)
        except Exception as exc:  # noqa: BLE001 — rolled back, then re-raised
            state.restore(snapshot)
            self._updates_failed += 1
            if bound_service is not None:
                bound_service.mark_degraded(exc)
            raise
        elapsed = time.perf_counter() - start
        state.updates_applied += 1
        state.edges_applied += len(batch)
        self._update_batches += 1
        self._update_edges += len(batch)
        self._update_seconds += elapsed
        if mode == "incremental":
            self._updates_incremental += 1
        else:
            self._updates_resolved += 1
        if bound_service is not None:
            bound_service.notify_update(changed_rows,
                                        adjacency=state.adjacency)
            bound_service.mark_healthy()
        return UpdateReport(
            mode=mode, reason=reason, edges=len(batch),
            improvements=outcome.improvements,
            worsenings=outcome.worsenings, noops=outcome.noops,
            changed_rows=(state.n if changed_rows is None
                          else int(changed_rows.size)),
            affected_rows=outcome.affected_rows,
            repaired_parent_rows=outcome.repaired_parent_rows,
            seconds=elapsed,
            estimated_incremental_seconds=estimates["incremental_seconds"],
            estimated_resolve_seconds=estimates["resolve_seconds"],
            break_even_edges=estimates["break_even_edges"])

    def _resolve_closure(self, state: ClosureState) -> APSPResult:
        """Full re-closure of the state's (already mutated) adjacency.

        The prepared domain adjacency round-trips through the normal solve
        path — zero-valued cells are absorbed by ⊕ and the diagonal is
        re-pinned to ``one`` — and the fresh closure is copied *into* the
        cached arrays so serving-layer bindings survive.
        """
        result = self.solve(state.adjacency, state.request)
        state.replace_closure(result)
        return result

    # ------------------------------------------------------------------ planning
    def plan(self, adjacency: np.ndarray, request: SolveRequest | None = None,
             **kwargs: Any) -> SolvePlan:
        """Resolve geometry for a would-be solve without running it."""
        req = self._coerce_request(request, kwargs)
        if req.solver == "auto":
            req, decision = resolve_auto(req, adjacency, config=self.config)
            self._tuner_decisions.append(decision)
        return self._solver_for(req).prepare(adjacency)

    def _solver_for(self, request: SolveRequest) -> SparkAPSPSolver:
        solver_cls = get_solver_class(request.solver)
        return solver_cls(config=self.config, options=request.to_options())

    # ------------------------------------------------------------------ execution
    def _execute_job(self, job: APSPJob) -> None:
        solver = self._solver_for(job.request)
        job.status = JOB_RUNNING
        start = time.perf_counter()
        try:
            plan = solver.prepare(job.adjacency)
            result = solver.execute(plan, self.context)
            if job.capture_plan:
                # The plan carries the *prepared* adjacency (algebra domain /
                # canonical CSR) — exactly what dynamic updates classify
                # against, so keep_closure solves retain it.
                job._plan = plan
        except Exception as exc:  # noqa: BLE001 — surfaced via job.result()
            job.elapsed_seconds = time.perf_counter() - start
            job.status = JOB_FAILED
            job.error = exc
            self._solves_failed += 1
            return
        finally:
            # Release the input and any staged shared-fs blocks so a
            # long-lived session's memory/disk footprint stays bounded by
            # one solve, not the whole job history.
            job.adjacency = None
            if self._context is not None:
                self._context.clear_shared_fs()
        job.elapsed_seconds = time.perf_counter() - start
        job.status = JOB_DONE
        if job.tuner_decision is not None:
            # Make the auto-tuner's choice (and its predicted wall)
            # observable next to the measured one on the result itself.
            result.metrics["tuner"] = job.tuner_decision.as_dict()
        job._result = result
        self._solves_completed += 1
        self._total_solve_seconds += job.elapsed_seconds

    # ------------------------------------------------------------------ metrics
    @property
    def metrics(self) -> dict:
        """Engine data-movement counters accumulated across the whole session."""
        if self._context is None:
            return {}
        return self._context.metrics.as_dict()

    def stats(self) -> dict:
        """Aggregated session statistics (jobs, timings, data movement)."""
        stats = {
            "jobs_submitted": self._jobs_submitted,
            "jobs_completed": self._solves_completed,
            "jobs_failed": self._solves_failed,
            "jobs_pending": sum(1 for j in self.jobs if j.status == JOB_PENDING),
            "total_solve_seconds": self._total_solve_seconds,
            "session_seconds": (time.perf_counter() - self._started_at
                                if self._started_at is not None else 0.0),
        }
        stats.update(self.metrics)
        if self._service is not None:
            stats["serve"] = self._service.stats()
        if self._tuner_decisions:
            stats["tuner"] = {
                "decisions": len(self._tuner_decisions),
                "last": self._tuner_decisions[-1].as_dict(),
            }
        if self._update_batches or self._updates_failed:
            stats["updates"] = {
                "batches": self._update_batches,
                "edges": self._update_edges,
                "incremental": self._updates_incremental,
                "resolves": self._updates_resolved,
                "failed": self._updates_failed,
                "update_seconds": self._update_seconds,
            }
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (f"APSPEngine({state}, jobs={len(self.jobs)}, "
                f"completed={self._solves_completed}, failed={self._solves_failed})")

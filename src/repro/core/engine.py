"""`APSPEngine`: a persistent session that runs many solves on one context.

The paper's experiments (Tables 2/3, Figures 2/3/5) all run dozens of solves
against a single long-lived Spark cluster.  :class:`APSPEngine` models that
shape: it owns one :class:`~repro.spark.context.SparkContext` for its whole
lifetime, accepts typed :class:`~repro.core.request.SolveRequest` objects,
and offers both a synchronous :meth:`solve` and a batch interface
(:meth:`submit` / :meth:`solve_many`) that hands back :class:`APSPJob`
records with stable job ids, per-job timings, and per-job engine metrics.

Example
-------
>>> from repro.graph import erdos_renyi_adjacency
>>> from repro.core.engine import APSPEngine
>>> from repro.core.request import SolveRequest
>>> adj = erdos_renyi_adjacency(48, seed=7)
>>> with APSPEngine() as engine:
...     a = engine.solve(adj, SolveRequest(solver="blocked-cb", block_size=16))
...     b = engine.solve(adj, solver="blocked-im", block_size=12)
...     engine.stats()["jobs_completed"]
2
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.common.config import EngineConfig, default_config
from repro.common.errors import ConfigurationError, SolverError
from repro.core.base import APSPResult, SolvePlan, SparkAPSPSolver
from repro.core.registry import get_solver_class
from repro.core.request import SolveRequest
from repro.graph.adjacency import validate_adjacency
from repro.serve.service import RouteAnswer, RouteService
from repro.spark.context import SparkContext

#: Job lifecycle states.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


@dataclass
class APSPJob:
    """One unit of engine work: a request plus its lifecycle and outcome.

    Jobs are created by :meth:`APSPEngine.submit` in the ``pending`` state;
    :meth:`result` (or the engine's :meth:`APSPEngine.run_pending` /
    :meth:`APSPEngine.solve_many`) drives them to ``done`` or ``failed``.
    ``job_id`` values are stable and ordered (``job-0001``, ``job-0002``, …)
    within one engine session.
    """

    job_id: str
    request: SolveRequest
    adjacency: np.ndarray | None  # released once the job has executed
    status: str = JOB_PENDING
    elapsed_seconds: float | None = None
    error: Exception | None = None
    _result: APSPResult | None = field(default=None, repr=False)
    _engine: "APSPEngine | None" = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        """True once the job has a result (or failed)."""
        return self.status in (JOB_DONE, JOB_FAILED)

    def result(self) -> APSPResult:
        """Return the solve result, executing the job now if still pending.

        Raises the job's original error if execution failed.
        """
        if self.status == JOB_PENDING:
            if self._engine is None:
                raise SolverError(f"{self.job_id} is detached from its engine")
            self._engine._execute_job(self)
        if self.error is not None:
            raise self.error
        assert self._result is not None
        return self._result

    def summary(self) -> str:
        """One-line status summary."""
        timing = f" {self.elapsed_seconds:.3f}s" if self.elapsed_seconds is not None else ""
        return f"{self.job_id} [{self.status}]{timing} {self.request.describe()}"


class APSPEngine:
    """A reusable APSP solving session backed by a single Spark context.

    Parameters
    ----------
    config:
        Engine configuration shared by every solve of the session.  The
        config object is never mutated: temporary shared-filesystem
        directories are owned (and cleaned up) by the underlying context,
        not written back into the config.

    Use as a context manager (``with APSPEngine(cfg) as engine: ...``) or
    call :meth:`start` / :meth:`stop` explicitly.  All solves of a session
    share one :class:`SparkContext`, so per-session engine metrics
    (:attr:`metrics`) accumulate across solves while each
    :class:`~repro.core.base.APSPResult` still reports its own delta.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or default_config()
        self._context: SparkContext | None = None
        self._closed = False
        self._job_counter = itertools.count(1)
        self.jobs: list[APSPJob] = []
        self._jobs_submitted = 0
        self._solves_completed = 0
        self._solves_failed = 0
        self._total_solve_seconds = 0.0
        self._started_at: float | None = None
        self._service: RouteService | None = None

    # ------------------------------------------------------------------ lifecycle
    def __enter__(self) -> "APSPEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """True while the session owns a live Spark context."""
        return self._context is not None

    @property
    def context(self) -> SparkContext:
        """The session's Spark context (started lazily on first access).

        Once :meth:`stop` has been called the session is closed and this
        raises instead of silently spinning up a context nothing would ever
        stop; call :meth:`start` (or enter a new ``with`` block) to reopen.
        """
        if self._context is None:
            if self._closed:
                raise SolverError(
                    "engine session is stopped; call start() (or use a new "
                    "'with' block) before solving again")
            self.start()
        assert self._context is not None
        return self._context

    def start(self) -> "APSPEngine":
        """Create the session's Spark context (idempotent; reopens after stop())."""
        self._closed = False
        if self._context is None:
            self._context = SparkContext(self.config)
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> None:
        """Stop the context, releasing scheduler threads and any owned temp storage."""
        self._closed = True
        if self._context is not None:
            self._context.stop()
            self._context = None

    # ------------------------------------------------------------------ submission
    def _coerce_request(self, request: SolveRequest | None,
                        kwargs: dict[str, Any]) -> SolveRequest:
        if request is not None and kwargs:
            return SolveRequest.coerce(request, **kwargs)
        if request is not None:
            return request
        return SolveRequest.coerce(None, **kwargs)

    def submit(self, adjacency: np.ndarray, request: SolveRequest | None = None,
               **kwargs: Any) -> APSPJob:
        """Enqueue one solve and return its :class:`APSPJob` (not yet executed).

        Accepts a prebuilt :class:`SolveRequest`, loose keyword options
        (``solver=..., block_size=...``), or both (keywords override).
        """
        req = self._coerce_request(request, kwargs)
        job = APSPJob(job_id=f"job-{next(self._job_counter):04d}", request=req,
                      adjacency=adjacency, _engine=self)
        self.jobs.append(job)
        self._jobs_submitted += 1
        return job

    def solve(self, adjacency: np.ndarray, request: SolveRequest | None = None,
              **kwargs: Any) -> APSPResult:
        """Solve one instance synchronously on the session context.

        The transient job is dropped from :attr:`jobs` once the result is
        returned (the caller holds the result; keeping a second reference
        per solve would grow session memory without bound), while the
        session counters in :meth:`stats` still record it.
        """
        job = self.submit(adjacency, request, **kwargs)
        try:
            return job.result()
        finally:
            self.jobs.remove(job)

    def solve_many(self, items: Iterable[np.ndarray | tuple[np.ndarray, SolveRequest]],
                   request: SolveRequest | None = None, **kwargs: Any) -> list[APSPJob]:
        """Submit and run a batch, returning the finished jobs in order.

        ``items`` is a sequence of adjacency matrices — or of
        ``(adjacency, request)`` pairs for per-item requests.  A shared
        ``request`` (or loose keywords) applies to the bare matrices.
        Failed jobs are returned with ``status == "failed"`` and the error
        attached rather than aborting the rest of the batch.
        """
        jobs: list[APSPJob] = []
        for item in items:
            if isinstance(item, tuple):
                adjacency, item_request = item
                jobs.append(self.submit(adjacency, item_request))
            else:
                jobs.append(self.submit(item, request, **kwargs))
        for job in jobs:
            try:
                job.result()
            except Exception:  # noqa: BLE001 — recorded on the job
                pass
        return jobs

    def clear_jobs(self) -> list[APSPJob]:
        """Drop finished jobs from the session history and return them.

        Pending jobs are kept.  Session counters (``jobs_completed`` etc.)
        are unaffected, so :meth:`stats` still reflects the whole session;
        this only releases the per-job objects (and the results they hold)
        for long-running sessions.
        """
        finished = [job for job in self.jobs if job.done]
        self.jobs = [job for job in self.jobs if not job.done]
        return finished

    def run_pending(self) -> list[APSPJob]:
        """Execute every still-pending job; returns the jobs that were run."""
        pending = [job for job in self.jobs if job.status == JOB_PENDING]
        for job in pending:
            try:
                job.result()
            except Exception:  # noqa: BLE001 — recorded on the job
                pass
        return pending

    # ------------------------------------------------------------------ serving
    @property
    def service(self) -> RouteService | None:
        """The session's open :class:`RouteService`, or None before serve()."""
        return self._service

    def serve(self, adjacency: np.ndarray, request: SolveRequest | None = None,
              *, budget_bytes: int | None = None, max_rows: int | None = None,
              keep_result: bool = False, **kwargs: Any) -> RouteService:
        """Solve the closure once, then open a route-serving session over it.

        Runs one ``paths=False`` solve (distances only — parent rows are
        solved *lazily* per queried source, which is the whole point: the
        full ``n x n`` predecessor matrix is never materialized) and returns
        a :class:`~repro.serve.service.RouteService` bound to the cached
        closure.  The service is also reachable through :attr:`service` /
        :meth:`route` / :meth:`routes`, and its analytics ride along in
        :meth:`stats` under the ``"serve"`` key.

        ``budget_bytes`` / ``max_rows`` bound the parent-row cache;
        ``keep_result`` retains the full :class:`APSPResult` on the service
        (``service.closure_result``) for callers that also want the solve's
        metrics.  A ``paths=True`` request is rejected: eagerly solving the
        predecessor matrix would defeat the lazy row cache.
        """
        req = self._coerce_request(request, kwargs)
        if req.paths:
            raise ConfigurationError(
                "serve() computes parent rows lazily per queried source; "
                "request paths=False (the default) instead of paths=True")
        result = self.solve(adjacency, req)
        # Row solves read edges from the same domain the solver saw: prepared
        # dense (missing = algebra zero) or canonical CSR — never densified.
        edges = validate_adjacency(adjacency, algebra=req.algebra,
                                   dtype=req.dtype, allow_sparse=True)
        service = RouteService(result.distances, edges, req.algebra,
                               budget_bytes=budget_bytes, max_rows=max_rows,
                               result=result if keep_result else None)
        self._service = service
        return service

    def route(self, src: int, dst: int) -> RouteAnswer:
        """Answer one route query on the session's open serving session."""
        return self._require_service().route(src, dst)

    def routes(self, pairs) -> list[RouteAnswer]:
        """Answer a batch of ``(src, dst)`` queries on the open serving session."""
        return self._require_service().routes(pairs)

    def _require_service(self) -> RouteService:
        if self._service is None:
            raise SolverError(
                "no serving session is open; call engine.serve(adjacency, ...) "
                "to solve a closure and start answering route queries")
        return self._service

    # ------------------------------------------------------------------ planning
    def plan(self, adjacency: np.ndarray, request: SolveRequest | None = None,
             **kwargs: Any) -> SolvePlan:
        """Resolve geometry for a would-be solve without running it."""
        req = self._coerce_request(request, kwargs)
        return self._solver_for(req).prepare(adjacency)

    def _solver_for(self, request: SolveRequest) -> SparkAPSPSolver:
        solver_cls = get_solver_class(request.solver)
        return solver_cls(config=self.config, options=request.to_options())

    # ------------------------------------------------------------------ execution
    def _execute_job(self, job: APSPJob) -> None:
        solver = self._solver_for(job.request)
        job.status = JOB_RUNNING
        start = time.perf_counter()
        try:
            result = solver.execute(solver.prepare(job.adjacency), self.context)
        except Exception as exc:  # noqa: BLE001 — surfaced via job.result()
            job.elapsed_seconds = time.perf_counter() - start
            job.status = JOB_FAILED
            job.error = exc
            self._solves_failed += 1
            return
        finally:
            # Release the input and any staged shared-fs blocks so a
            # long-lived session's memory/disk footprint stays bounded by
            # one solve, not the whole job history.
            job.adjacency = None
            if self._context is not None:
                self._context.clear_shared_fs()
        job.elapsed_seconds = time.perf_counter() - start
        job.status = JOB_DONE
        job._result = result
        self._solves_completed += 1
        self._total_solve_seconds += job.elapsed_seconds

    # ------------------------------------------------------------------ metrics
    @property
    def metrics(self) -> dict:
        """Engine data-movement counters accumulated across the whole session."""
        if self._context is None:
            return {}
        return self._context.metrics.as_dict()

    def stats(self) -> dict:
        """Aggregated session statistics (jobs, timings, data movement)."""
        stats = {
            "jobs_submitted": self._jobs_submitted,
            "jobs_completed": self._solves_completed,
            "jobs_failed": self._solves_failed,
            "jobs_pending": sum(1 for j in self.jobs if j.status == JOB_PENDING),
            "total_solve_seconds": self._total_solve_seconds,
            "session_seconds": (time.perf_counter() - self._started_at
                                if self._started_at is not None else 0.0),
        }
        stats.update(self.metrics)
        if self._service is not None:
            stats["serve"] = self._service.stats()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (f"APSPEngine({state}, jobs={len(self.jobs)}, "
                f"completed={self._solves_completed}, failed={self._solves_failed})")

"""Blocked Collect/Broadcast APSP solver (Algorithm 4 of the paper, Section 4.5).

A redesign of the Blocked In-Memory solver that bypasses explicit data
shuffling: the processed pivot diagonal block and the updated row/column
blocks travel through the driver (``collect``) and the shared persistent
storage instead of a shuffle.  This makes the solver *impure* (not
fault-tolerant) but, per the paper's experiments, the best performing — it is
the only solver able to handle the largest problems (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SolverError
from repro.common.timing import Stopwatch
from repro.core import building_blocks as bb
from repro.core.base import SparkAPSPSolver
from repro.core.registry import register_solver
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.semiring import elementwise_combine, semiring_product
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD


@register_solver(aliases=("blocked-collect-broadcast", "cb"),
                 description="Blocked APSP with pivot data staged through the driver "
                             "and shared storage (Algorithm 4, impure, fastest)")
class BlockedCollectBroadcastSolver(SparkAPSPSolver):
    """Blocked APSP with pivot data redistributed through the driver and shared storage."""

    name = "blocked-cb"
    pure = False
    layouts = ("triangular", "full")
    algebras = SparkAPSPSolver.algebras + ("longest-path",)

    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch, *,
             layout: str = "triangular"):
        shared_fs = sc.shared_fs
        algebra = self.algebra
        current = rdd
        for pivot in range(q):
            # ---- Phase 1: solve the pivot block and stage it ------------------
            with stopwatch.section("phase1-diagonal"):
                diag = current.filter(bb.on_diagonal(pivot)) \
                    .map_preserving(bb.FloydWarshallBlock(algebra)).cache()
                diag_records = diag.collect()
                if len(diag_records) != 1:
                    raise SolverError(
                        f"expected exactly one diagonal block for pivot {pivot}, "
                        f"got {len(diag_records)}")
                diag_path = shared_fs.write(f"cb-it{pivot}-diag", diag_records[0][1])

            # ---- Phase 2: update block-row/column of the pivot -----------------
            with stopwatch.section("phase2-rowcol"):
                rowcol = current.filter(bb.off_diagonal_in_row_or_column(pivot)) \
                    .map_preserving(
                        _Phase2Update(pivot, shared_fs, diag_path, algebra)).cache()
                rowcol_records = rowcol.collect()
                rowcol_paths = {
                    key: shared_fs.write(f"cb-it{pivot}-rowcol-{key}", block)
                    for key, block in rowcol_records
                }

            # ---- Phase 3: update the remaining blocks ---------------------------
            with stopwatch.section("phase3-remaining"):
                others = current.filter(bb.not_in_block_row_or_column(pivot)) \
                    .map_preserving(
                        _Phase3Update(pivot, shared_fs, rowcol_paths, algebra,
                                      layout=layout))

            # ---- Reassemble A ---------------------------------------------------
            with stopwatch.section("repartition"):
                current = sc.union([diag, rowcol, others]) \
                    .partitionBy(partitioner).cache()
                current.count()
        return current, q


class _Phase2Update:
    """Update a row/column block against the staged pivot block (``MinPlus``).

    A callable class rather than a closure so the ``processes`` backend can
    pickle the update (together with the shared-filesystem handle and the
    semiring, which pickles by name) into a worker process.
    """

    __slots__ = ("pivot", "shared_fs", "diag_path", "algebra")

    def __init__(self, pivot: int, shared_fs, diag_path: str,
                 algebra: Semiring | str | None = None) -> None:
        self.pivot = pivot
        self.shared_fs = shared_fs
        self.diag_path = diag_path
        self.algebra = get_algebra(algebra)

    def __call__(self, record):
        (_, j), _ = record
        diag_block = self.shared_fs.read(self.diag_path)
        if j == self.pivot:
            # Column block A_{i, pivot}: right-multiply by the pivot closure.
            return bb.min_plus(record, diag_block, other_on_left=False,
                               algebra=self.algebra)
        # Row block A_{pivot, j}: left-multiply.
        return bb.min_plus(record, diag_block, other_on_left=True,
                           algebra=self.algebra)


class _Phase3Update:
    """Update an off-pivot block with ``A_IJ ⊕ (A_It ⊗ A_tJ)`` read from shared storage.

    Picklable for the same reason as :class:`_Phase2Update` — phase 3 is the
    O(q²) bulk of every iteration and the main beneficiary of true
    multi-core execution.
    """

    __slots__ = ("pivot", "shared_fs", "rowcol_paths", "algebra", "layout")

    def __init__(self, pivot: int, shared_fs, rowcol_paths: dict,
                 algebra: Semiring | str | None = None, *,
                 layout: str = "triangular") -> None:
        self.pivot = pivot
        self.shared_fs = shared_fs
        self.rowcol_paths = rowcol_paths
        self.algebra = get_algebra(algebra)
        self.layout = layout

    def _fetch_oriented(self, row: int, col: int) -> np.ndarray:
        """Return ``A_{row, col}`` where exactly one of row/col equals the pivot."""
        if self.layout == "full":
            # Every pivot row/column block is staged under its own key; no
            # mirror-transpose exists for an asymmetric matrix.
            return self.shared_fs.read(self.rowcol_paths[(row, col)])
        key = (min(row, col), max(row, col))
        block = self.shared_fs.read(self.rowcol_paths[key])
        if (row, col) == key:
            return block
        return block.T

    def __call__(self, record):
        (i, j), block = record
        left = self._fetch_oriented(i, self.pivot)     # A_{i, pivot}
        right = self._fetch_oriented(self.pivot, j)    # A_{pivot, j}
        return (i, j), elementwise_combine(
            block, semiring_product(left, right, self.algebra), self.algebra)

"""Blocked Collect/Broadcast APSP solver (Algorithm 4 of the paper, Section 4.5).

A redesign of the Blocked In-Memory solver that bypasses explicit data
shuffling: the processed pivot diagonal block and the updated row/column
blocks travel through the driver (``collect``) and the shared persistent
storage instead of a shuffle.  This makes the solver *impure* (not
fault-tolerant) but, per the paper's experiments, the best performing — it is
the only solver able to handle the largest problems (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SolverError
from repro.common.timing import Stopwatch
from repro.core import building_blocks as bb
from repro.core.base import SparkAPSPSolver
from repro.core.registry import register_solver
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD


@register_solver(aliases=("blocked-collect-broadcast", "cb"),
                 description="Blocked APSP with pivot data staged through the driver "
                             "and shared storage (Algorithm 4, impure, fastest)")
class BlockedCollectBroadcastSolver(SparkAPSPSolver):
    """Blocked APSP with pivot data redistributed through the driver and shared storage."""

    name = "blocked-cb"
    pure = False

    def _run(self, sc: SparkContext, rdd: RDD, n: int, block_size: int, q: int,
             partitioner: Partitioner, stopwatch: Stopwatch):
        shared_fs = sc.shared_fs
        current = rdd
        for pivot in range(q):
            # ---- Phase 1: solve the pivot block and stage it ------------------
            with stopwatch.section("phase1-diagonal"):
                diag = current.filter(bb.on_diagonal(pivot)) \
                    .map_preserving(bb.floyd_warshall_block).cache()
                diag_records = diag.collect()
                if len(diag_records) != 1:
                    raise SolverError(
                        f"expected exactly one diagonal block for pivot {pivot}, "
                        f"got {len(diag_records)}")
                diag_path = shared_fs.write(f"cb-it{pivot}-diag", diag_records[0][1])

            # ---- Phase 2: update block-row/column of the pivot -----------------
            with stopwatch.section("phase2-rowcol"):
                rowcol = current.filter(bb.off_diagonal_in_row_or_column(pivot)) \
                    .map_preserving(_phase2_update(pivot, shared_fs, diag_path)).cache()
                rowcol_records = rowcol.collect()
                rowcol_paths = {
                    key: shared_fs.write(f"cb-it{pivot}-rowcol-{key}", block)
                    for key, block in rowcol_records
                }

            # ---- Phase 3: update the remaining blocks ---------------------------
            with stopwatch.section("phase3-remaining"):
                others = current.filter(bb.not_in_block_row_or_column(pivot)) \
                    .map_preserving(_phase3_update(pivot, shared_fs, rowcol_paths))

            # ---- Reassemble A ---------------------------------------------------
            with stopwatch.section("repartition"):
                current = sc.union([diag, rowcol, others]) \
                    .partitionBy(partitioner).cache()
                current.count()
        return current, q


def _phase2_update(pivot: int, shared_fs, diag_path: str):
    """Update a row/column block against the staged pivot block (``MinPlus``)."""
    def run(record):
        (i, j), block = record
        diag_block = shared_fs.read(diag_path)
        if j == pivot:
            # Column block A_{i, pivot}: right-multiply by the pivot closure.
            return bb.min_plus(record, diag_block, other_on_left=False)
        # Row block A_{pivot, j}: left-multiply.
        return bb.min_plus(record, diag_block, other_on_left=True)
    return run


def _phase3_update(pivot: int, shared_fs, rowcol_paths: dict):
    """Update an off-pivot block with ``min(A_IJ, A_It ⊗ A_tJ)`` read from shared storage."""
    def fetch_oriented(row: int, col: int) -> np.ndarray:
        """Return ``A_{row, col}`` where exactly one of row/col equals the pivot."""
        key = (min(row, col), max(row, col))
        block = shared_fs.read(rowcol_paths[key])
        if (row, col) == key:
            return block
        return block.T

    def run(record):
        (i, j), block = record
        left = fetch_oriented(i, pivot)     # A_{i, pivot}
        right = fetch_oriented(pivot, j)    # A_{pivot, j}
        from repro.linalg.semiring import elementwise_min, minplus_product
        return (i, j), elementwise_min(block, minplus_product(left, right))
    return run

"""Typed solve requests: every knob of one APSP solve, validated up front.

:class:`SolveRequest` replaces the loose keyword soup that used to flow
through ``solve_apsp(**kwargs)``: it names the solver, the decomposition
parameter ``b``, the partitioner, and the over-decomposition factor, and it
rejects inconsistent values at construction time — long before a Spark
context is spun up — so batch submissions fail fast instead of mid-sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.common.errors import ConfigurationError
from repro.core.base import SolverOptions
from repro.core.registry import resolve_solver_name, solver_info, solvers_for
from repro.linalg.algebra import get_algebra, resolve_algebra_name
from repro.spark.partitioner import canonical_partitioner_name


@dataclass(frozen=True)
class SolveRequest:
    """One APSP solve: solver choice plus tuning parameters (Sections 5.2/5.3).

    Parameters
    ----------
    solver:
        Canonical solver name or any registered alias; resolved (and
        validated) against the solver registry at construction.  The special
        value ``"auto"`` defers the choice to the calibrated auto-tuner
        (:mod:`repro.core.tuner`): the engine resolves solver and block size
        at submit time from the cost model's fitted machine constants and
        records its decision in :meth:`~repro.core.engine.APSPEngine.stats`.
    block_size:
        The decomposition parameter ``b``; ``None`` selects it automatically.
    partitioner:
        ``"MD"`` (multi-diagonal), ``"PH"`` (portable hash) or ``"GRID"``.
    partitions_per_core:
        The over-decomposition factor ``B`` (the paper recommends 2-4).
    num_partitions:
        Explicit partition count override (takes precedence over ``B``).
    algebra:
        Path algebra (semiring) to close the adjacency matrix under —
        ``"shortest-path"`` (default), ``"widest-path"``, ``"most-reliable"``,
        ``"reachability"``, ... or any registered alias.  Validated against
        the solver's declared algebra support at construction time.
    dtype:
        Element dtype for the solve (e.g. ``"float32"`` to halve memory
        traffic in the hot product kernel); ``None`` selects the algebra's
        default.  Resolved to a canonical dtype name at construction.
    storage:
        Block-storage layout: ``"dense"``, ``"packed"`` (uint64
        packed-bitset blocks — boolean algebras only, 64x denser), or
        ``"auto"``/``None`` for the algebra's default (packed for
        ``reachability``).  Resolved to a concrete policy at construction.
    layout:
        Block grid layout: ``"triangular"`` (upper block triangle with
        mirror-transpose lookups — symmetric inputs only), ``"full"`` (all
        q² blocks, supports directed inputs), or ``"auto"``/``None`` to
        pick from the input (symmetric → triangular, asymmetric → full).
        Checked against both the algebra's and the solver's declared layout
        support at construction; ``"auto"`` resolves when the solver
        inspects the matrix in ``prepare``.
    directed:
        Treat the input as a directed graph: skips the symmetry check in
        adjacency validation and forces the full grid layout (an explicit
        ``layout="triangular"`` request is rejected).
    paths:
        Track path witnesses through the solve: the result carries a
        predecessor matrix and supports
        :meth:`~repro.core.base.APSPResult.reconstruct_path`, at ~2x the
        data traffic.  Needs an algebra with a witness policy and dense
        block storage (``"auto"`` storage resolves to dense; an explicit
        ``"packed"`` request is rejected at construction).
    validate:
        Run structural sanity checks on the result.
    tag:
        Free-form label echoed on the :class:`~repro.core.engine.APSPJob`,
        handy for batch bookkeeping.
    extra:
        Solver-specific escape hatch, forwarded verbatim.
    """

    solver: str = "blocked-cb"
    block_size: int | None = None
    partitioner: str = "MD"
    partitions_per_core: int = 2
    num_partitions: int | None = None
    algebra: str = "shortest-path"
    dtype: str | None = None
    storage: str | None = None
    layout: str | None = None
    directed: bool = False
    paths: bool = False
    validate: bool = False
    tag: str | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonicalise through the registries: unknown solvers/algebras raise
        # here.  "auto" is the one name that stays symbolic — the engine
        # resolves it through the calibrated tuner at submit time, once the
        # adjacency matrix (and hence symmetry/density) is known.
        is_auto = str(self.solver).strip().lower().replace("_", "-") == "auto"
        if is_auto:
            object.__setattr__(self, "solver", "auto")
        else:
            object.__setattr__(self, "solver", resolve_solver_name(self.solver))
        object.__setattr__(self, "algebra", resolve_algebra_name(self.algebra))
        info = None if is_auto else solver_info(self.solver)
        if info is not None and not info.supports_algebra(self.algebra):
            raise ConfigurationError(
                f"solver {self.solver!r} does not support algebra "
                f"{self.algebra!r} (supported: {', '.join(info.algebras)})")
        # Resolve the dtype and block storage against the algebra's policy,
        # storing canonical names so requests are fully explicit.
        resolved_algebra = get_algebra(self.algebra)
        object.__setattr__(
            self, "dtype", resolved_algebra.resolve_dtype(self.dtype).name)
        object.__setattr__(self, "paths", bool(self.paths))
        object.__setattr__(
            self, "storage",
            resolved_algebra.resolve_storage(self.storage, paths=self.paths))
        # Resolve the grid layout against the algebra, then check the solver
        # declares it (the same fail-fast shape as the algebra check above).
        # "auto" may survive here: it resolves in prepare() once the matrix
        # is inspected, and the solver check re-runs on the concrete layout.
        object.__setattr__(self, "directed", bool(self.directed))
        object.__setattr__(
            self, "layout",
            resolved_algebra.resolve_layout(self.layout, directed=self.directed))
        if info is not None and not info.supports_layout(self.layout):
            raise ConfigurationError(
                f"solver {self.solver!r} does not support block layout "
                f"{self.layout!r} (supported: {', '.join(info.layouts)})")
        if is_auto and not solvers_for(self.algebra, self.layout
                                       if self.layout != "auto" else None):
            raise ConfigurationError(
                f"no registered solver supports algebra {self.algebra!r} with "
                f"layout {self.layout!r}; solver='auto' has nothing to pick")
        object.__setattr__(self, "partitioner",
                           canonical_partitioner_name(str(self.partitioner)))
        if self.block_size is not None and int(self.block_size) < 1:
            raise ConfigurationError("block_size must be >= 1 or None")
        if int(self.partitions_per_core) < 1:
            raise ConfigurationError("partitions_per_core must be >= 1")
        if self.num_partitions is not None and int(self.num_partitions) < 1:
            raise ConfigurationError("num_partitions must be >= 1 or None")
        object.__setattr__(self, "extra", dict(self.extra))

    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, request: "SolveRequest | None" = None, /,
               **overrides: Any) -> "SolveRequest":
        """Build a request from an existing one and/or loose keyword overrides.

        This is the bridge the backward-compatible :func:`repro.solve_apsp`
        wrapper uses: ``coerce(None, solver="cb", block_size=16)`` builds a
        fresh request, ``coerce(req, validate=True)`` derives a variant.
        Unknown keywords are routed into :attr:`extra` rather than rejected,
        matching the old front-end's lenient ``**extra`` behaviour.
        """
        explicit_extra = overrides.pop("extra", None)
        known = set(cls.__dataclass_fields__)
        fields = {k: v for k, v in overrides.items() if k in known}
        extra = {k: v for k, v in overrides.items() if k not in known}
        if explicit_extra:
            extra.update(explicit_extra)
        if request is None:
            return cls(extra=extra, **fields)
        merged_extra = {**request.extra, **extra}
        return replace(request, extra=merged_extra, **fields)

    def to_options(self) -> SolverOptions:
        """Convert to the :class:`SolverOptions` consumed by solver classes."""
        return SolverOptions(
            block_size=self.block_size,
            partitioner=self.partitioner,
            partitions_per_core=self.partitions_per_core,
            num_partitions=self.num_partitions,
            algebra=self.algebra,
            dtype=self.dtype,
            storage=self.storage,
            layout=self.layout,
            directed=self.directed,
            paths=self.paths,
            validate=self.validate,
            extra=dict(self.extra),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        bits = [self.solver,
                f"b={'auto' if self.block_size is None else self.block_size}",
                f"partitioner={self.partitioner}",
                f"B={self.partitions_per_core}"]
        if self.algebra != "shortest-path" or self.dtype != "float64":
            bits.append(f"algebra={self.algebra}[{self.dtype}]")
        if self.storage != "dense":
            bits.append(f"storage={self.storage}")
        if self.layout != "auto":
            bits.append(f"layout={self.layout}")
        if self.directed:
            bits.append("directed")
        if self.paths:
            bits.append("paths")
        if self.num_partitions is not None:
            bits.append(f"partitions={self.num_partitions}")
        if self.tag:
            bits.append(f"tag={self.tag}")
        return " ".join(bits)


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation for :meth:`~repro.core.engine.APSPEngine.update`.

    ``weight`` is a *canonical* edge weight — the same domain graph
    generators and edge-list files use, where the algebra decides what
    "better" means — or ``None`` to delete the edge entirely.  Whether the
    update is an improvement (rank-1 sweep), a worsening (restricted row
    recompute) or a no-op is classified against the cached adjacency at
    apply time, not here: the same ``EdgeUpdate`` value means different
    things under different algebras.
    """

    u: int
    v: int
    weight: float | bool | None = None

    def __post_init__(self) -> None:
        for name in ("u", "v"):
            value = getattr(self, name)
            try:
                coerced = int(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"edge endpoint {name} must be an integer, got {value!r}"
                ) from None
            if coerced < 0:
                raise ConfigurationError(
                    f"edge endpoint {name} must be >= 0, got {coerced}")
            object.__setattr__(self, name, coerced)
        if self.u == self.v:
            raise ConfigurationError(
                f"self-loop update ({self.u}, {self.v}) is meaningless: the "
                "closure diagonal is pinned to the algebra's one")
        if self.weight is not None:
            try:
                object.__setattr__(self, "weight", float(self.weight))
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"edge weight must be a number or None, got "
                    f"{self.weight!r}") from None

    @property
    def is_deletion(self) -> bool:
        """True when this update removes the edge (``weight is None``)."""
        return self.weight is None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.weight is None:
            return f"delete {self.u} -- {self.v}"
        return f"edge {self.u} -- {self.v} = {self.weight}"


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`~repro.core.engine.APSPEngine.update` batch did.

    ``mode`` records which path actually ran (``"incremental"`` rank-1
    sweeps or ``"resolve"`` full re-closure) and ``reason`` why — the cost
    model's break-even verdict, an explicit ``force=``, or a structural
    restriction (non-absorptive algebra, oversized affected set).  Counters
    split the batch by classification; ``changed_rows`` is how many closure
    rows actually moved, which is also exactly the number of serving-cache
    rows invalidated.
    """

    mode: str
    reason: str
    edges: int
    improvements: int
    worsenings: int
    noops: int
    changed_rows: int
    affected_rows: int = 0
    repaired_parent_rows: int = 0
    seconds: float = 0.0
    estimated_incremental_seconds: float | None = None
    estimated_resolve_seconds: float | None = None
    break_even_edges: int | None = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        bits = [f"{self.mode} ({self.reason})",
                f"edges={self.edges}",
                f"+{self.improvements}/-{self.worsenings}/={self.noops}",
                f"changed_rows={self.changed_rows}"]
        if self.worsenings:
            bits.append(f"affected_rows={self.affected_rows}")
        if self.repaired_parent_rows:
            bits.append(f"repaired={self.repaired_parent_rows}")
        bits.append(f"{self.seconds:.4f}s")
        return " ".join(bits)


@dataclass(frozen=True)
class RouteQuery:
    """One serving-layer query: "how do I get from ``src`` to ``dst``?".

    The typed counterpart of a bare ``(src, dst)`` pair for
    :meth:`~repro.serve.service.RouteService.routes` batches — endpoints are
    canonicalised to plain ints here so a whole replay file can be validated
    before the first row solve.  ``tag`` is a free-form label echoed through
    for workload bookkeeping (e.g. which replay file a pair came from).
    """

    src: int
    dst: int
    tag: str | None = None

    def __post_init__(self) -> None:
        for name in ("src", "dst"):
            value = getattr(self, name)
            try:
                coerced = int(value)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"route {name} must be an integer, got {value!r}") from None
            if coerced < 0:
                raise ConfigurationError(
                    f"route {name} must be >= 0, got {coerced}")
            object.__setattr__(self, name, coerced)

    @property
    def pair(self) -> tuple[int, int]:
        """The query as a plain ``(src, dst)`` tuple."""
        return (self.src, self.dst)

    def describe(self) -> str:
        """One-line human-readable summary."""
        tag = f" tag={self.tag}" if self.tag else ""
        return f"route {self.src} -> {self.dst}{tag}"

"""Dynamic closure maintenance: batched edge updates on a cached solve.

A solved closure answers queries until the graph changes; historically any
change forced a full O(n³) re-closure.  The paper's own building blocks
contain the fix: the rank-1 ``FloydWarshallUpdate`` relaxes the whole closure
through one changed edge in O(n²), so a batch of k insertions costs O(k·n²).
This module holds the driver-side state and kernels behind
:meth:`~repro.core.engine.APSPEngine.update`:

* :class:`ClosureState` — the cached artifacts of one solve (closure,
  prepared adjacency, optional witness planes and packed-bitset mirror)
  that updates mutate **in place**, so a serving layer holding the same
  arrays stays coherent for free;
* *improvements* (insertions / weight decreases) as per-edge rank-1 sweeps
  through the dense, packed or witnessed kernels — exact in any absorptive
  semiring because an optimal path uses a freshly improved edge at most
  once per orientation, so ``D ⊕ (D[:, u] ⊗ w) ⊗ D[v, :]`` *is* the new
  closure;
* *worsenings* (weight increases / deletions) via the restricted path: rows
  whose optimal paths ran through the old edge are detected from the cached
  closure (the tight-edge test of :mod:`repro.linalg.witness`), and only
  those rows are recomputed by a fixpoint over the Bellman equations with
  exact boundary values from the untouched rows;
* cost-model terms (:func:`repro.cluster.costmodel.update_break_even`) that
  the engine consults to fall back to a full re-closure past the break-even
  batch size.

The decomposition behind the worsening fixpoint: for affected row set ``R``,
any path from ``i ∈ R`` either steps outside ``R`` — at which point the rest
is bounded by the (unchanged) closure row of that outside vertex — or stays
inside ``R`` to its destination.  Hence ``X = (A_RR)* ⊗ B`` with
``B = A[R, ~R] ⊗ D[~R, :] ⊕ I[R, :]``, reached by at most ``|R|`` Jacobi
iterations of ``X ← B ⊕ (A_RR ⊗ X)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.costmodel import (full_resolve_seconds, rank1_update_seconds,
                                     update_break_even)
from repro.common.errors import ValidationError
from repro.core.request import EdgeUpdate
from repro.graph import sparse as sparse_mod
from repro.linalg import bitset, witness
from repro.linalg.algebra import get_algebra, validate_dag_weights
from repro.linalg.kernels import fw_rank1_update_inplace
from repro.linalg.semiring import elementwise_combine, semiring_product


def coerce_edges(edges) -> list[EdgeUpdate]:
    """Normalize a batch into :class:`~repro.core.request.EdgeUpdate` values.

    Accepts ``EdgeUpdate`` instances, ``(u, v, weight)`` triples and
    ``(u, v)`` pairs (the latter meaning *deletion*, mirroring
    ``EdgeUpdate(u, v, None)``).
    """
    out: list[EdgeUpdate] = []
    for entry in edges:
        if isinstance(entry, EdgeUpdate):
            out.append(entry)
            continue
        try:
            out.append(EdgeUpdate(*entry))
        except TypeError:
            raise ValidationError(
                f"edge update must be an EdgeUpdate or a (u, v[, weight]) "
                f"tuple, got {entry!r}") from None
    return out


class ClosureState:
    """The cached artifacts of one solve that dynamic updates maintain.

    ``distances`` (and ``parents`` for witnessed solves) are the *same*
    arrays the solve returned — and, through
    :meth:`~repro.core.engine.APSPEngine.serve`, the same arrays the
    :class:`~repro.serve.service.RouteService` reads — so in-place updates
    keep every consumer coherent without copies.  ``adjacency`` is the
    prepared algebra-domain matrix updates classify against and mutate; CSR
    inputs densify lazily on the first update (an update needs O(n²) sweeps
    anyway, so the densification is not the asymptotic cost it is at
    ingestion time).  Packed-storage solves additionally carry a
    :class:`~repro.linalg.bitset.PackedBlock` mirror of the closure so the
    rank-1 sweeps run on words, not bytes.
    """

    def __init__(self, *, distances: np.ndarray, adjacency, request,
                 layout: str, parents: np.ndarray | None = None) -> None:
        self.request = request
        self.algebra = get_algebra(request.algebra)
        self.distances = np.asarray(distances)
        self.parents = (None if parents is None
                        else np.asarray(parents, dtype=np.int32))
        self.layout = layout
        self._adjacency = adjacency
        self._dense_adjacency = (None if sparse_mod.is_sparse(adjacency)
                                 else np.asarray(adjacency))
        self.packed = (bitset.PackedBlock.from_dense(self.distances)
                       if request.storage == "packed" else None)
        self.updates_applied = 0
        self.edges_applied = 0
        self._undirected: bool | None = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Vertex count of the cached closure."""
        return int(self.distances.shape[0])

    @property
    def witnessed(self) -> bool:
        """True when the state maintains a predecessor matrix."""
        return self.parents is not None

    @property
    def undirected(self) -> bool:
        """True when edges are undirected (mutations mirror both cells).

        Triangular-layout solves are undirected by construction; full-grid
        solves are undirected exactly when the user did not declare
        ``directed=True`` and the adjacency is symmetric (sniffed once).
        """
        if self._undirected is None:
            if self.layout == "triangular":
                self._undirected = True
            elif self.request.directed:
                self._undirected = False
            else:
                from repro.graph.adjacency import is_symmetric_adjacency
                self._undirected = is_symmetric_adjacency(self._adjacency)
        return self._undirected

    @property
    def raw_adjacency(self):
        """The adjacency as cached: prepared dense, or canonical CSR until
        the first update densifies it."""
        return self._adjacency

    @property
    def adjacency(self) -> np.ndarray:
        """Dense algebra-domain adjacency, densifying a CSR input on demand."""
        if self._dense_adjacency is None:
            self._dense_adjacency = _densify(self._adjacency, self.algebra,
                                             self.distances.dtype)
            self._adjacency = self._dense_adjacency
        return self._dense_adjacency

    def replace_closure(self, result) -> None:
        """Adopt a freshly re-solved closure *in place* (resolve fallback).

        ``np.copyto`` preserves the identity of ``distances``/``parents``,
        which is what keeps a serving layer bound to the same arrays live.
        """
        np.copyto(self.distances,
                  np.asarray(result.distances, dtype=self.distances.dtype))
        if self.parents is not None:
            if result.parents is None:
                raise ValidationError(
                    "re-solve of a witnessed closure returned no parents")
            np.copyto(self.parents, result.parents)
        if self.packed is not None:
            self.packed = bitset.PackedBlock.from_dense(self.distances)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Copy every mutable artifact, so a failed update can roll back.

        The engine takes one snapshot per update batch (an O(n²) copy —
        bounded by the cost of a single rank-1 sweep) and calls
        :meth:`restore` if anything in the batch, including a re-solve
        fallback, raises.  A CSR adjacency is captured by reference: edge
        mutations always go through the dense plane (see :attr:`adjacency`),
        so the CSR object itself is never written in place.
        """
        dense = self._dense_adjacency
        return {
            "distances": self.distances.copy(),
            "parents": None if self.parents is None else self.parents.copy(),
            "csr_adjacency": self._adjacency if dense is None else None,
            "dense_adjacency": None if dense is None else dense.copy(),
            "undirected": self._undirected,
            "updates_applied": self.updates_applied,
            "edges_applied": self.edges_applied,
        }

    def restore(self, snapshot: dict) -> None:
        """Roll back to a :meth:`snapshot`, preserving array identity.

        ``distances``/``parents`` (and a dense adjacency) are restored with
        ``np.copyto`` so a serving layer bound to the same ndarrays keeps
        reading the last good closure; a CSR adjacency that a failed update
        densified mid-flight is re-bound to the untouched original object.
        """
        np.copyto(self.distances, snapshot["distances"])
        if self.parents is not None and snapshot["parents"] is not None:
            np.copyto(self.parents, snapshot["parents"])
        if snapshot["dense_adjacency"] is not None:
            np.copyto(self._dense_adjacency, snapshot["dense_adjacency"])
            self._adjacency = self._dense_adjacency
        else:
            self._adjacency = snapshot["csr_adjacency"]
            self._dense_adjacency = None
        if self.packed is not None:
            self.packed = bitset.PackedBlock.from_dense(self.distances)
        self._undirected = snapshot["undirected"]
        self.updates_applied = snapshot["updates_applied"]
        self.edges_applied = snapshot["edges_applied"]


@dataclass
class UpdateOutcome:
    """What actually happened while applying (part of) a batch."""

    improvements: int = 0
    worsenings: int = 0
    noops: int = 0
    affected_rows: int = 0
    repaired_parent_rows: int = 0
    fallback_reason: str | None = None
    changed: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))


def update_estimates(state: ClosureState, batch_size: int, *,
                     calibration=None) -> dict:
    """Cost-model verdict for a batch against this state: sweep vs re-solve."""
    orientations = 2 if state.undirected else 1
    kwargs = dict(algebra=state.algebra, dtype=state.request.dtype,
                  storage=state.request.storage, calibration=calibration)
    per_edge = rank1_update_seconds(state.n, orientations=orientations,
                                    witnessed=state.witnessed, **kwargs)
    resolve = full_resolve_seconds(state.n, algebra=state.algebra,
                                   dtype=state.request.dtype,
                                   storage=state.request.storage,
                                   calibration=calibration)
    break_even = update_break_even(state.n, orientations=orientations,
                                   witnessed=state.witnessed, **kwargs)
    return {
        "per_edge_seconds": per_edge,
        "incremental_seconds": per_edge * max(0, int(batch_size)),
        "resolve_seconds": resolve,
        "break_even_edges": break_even,
    }


# ---------------------------------------------------------------------------
# Batch application
# ---------------------------------------------------------------------------
def apply_incremental(state: ClosureState, edges: list[EdgeUpdate], *,
                      allow_fallback: bool = True) -> UpdateOutcome:
    """Apply a batch edge by edge, keeping the closure exact after each.

    Improvements run as rank-1 sweeps; worsenings detect their affected rows
    and recompute only those.  When a worsening's affected set is too large
    for the restricted path to pay off (more than a quarter of all rows) and
    ``allow_fallback`` is set, the remaining edges are folded into the
    adjacency without sweeping and ``fallback_reason`` tells the engine to
    re-solve instead — the state is left adjacency-complete either way.
    """
    algebra, dist = state.algebra, state.distances
    adj = state.adjacency
    dtype = dist.dtype
    zero = algebra.zero_like(dtype)
    n = state.n
    outcome = UpdateOutcome(changed=np.zeros(n, dtype=bool))
    rtol = witness._tight_rtol(dtype)
    for index, edge in enumerate(edges):
        _check_endpoints(edge, n)
        new = _domain_value(algebra, dtype, edge.weight)
        old = adj[edge.u, edge.v]
        kind = _classify(algebra, old, new)
        if kind == "noop":
            outcome.noops += 1
            continue
        if kind == "improve":
            outcome.improvements += 1
            _set_edge(state, edge.u, edge.v, new)
            outcome.changed |= _improve_sweep(state, edge.u, edge.v, new)
            continue
        outcome.worsenings += 1
        affected = _affected_rows(state, edge.u, edge.v, old, rtol)
        _set_edge(state, edge.u, edge.v, new)
        count = int(affected.sum())
        outcome.affected_rows += count
        if count == 0:
            continue
        if allow_fallback and count > max(8, n // 4):
            outcome.fallback_reason = (
                f"worsening ({edge.u}, {edge.v}) touches {count}/{n} rows")
            fold_edges(state, edges[index + 1:], outcome)
            outcome.changed[:] = True
            return outcome
        outcome.repaired_parent_rows += _recompute_rows(state, affected)
        outcome.changed |= affected
    if state.witnessed and outcome.changed.any():
        outcome.repaired_parent_rows += _repair_witnesses(state, outcome)
    return outcome


def fold_edges(state: ClosureState, edges: list[EdgeUpdate],
               outcome: UpdateOutcome) -> UpdateOutcome:
    """Classify and write a batch into the adjacency without touching the closure.

    The resolve path: the engine re-solves from the mutated adjacency
    afterwards, so only the classification counters and the adjacency itself
    are maintained here.
    """
    algebra = state.algebra
    adj = state.adjacency
    dtype = state.distances.dtype
    for edge in edges:
        _check_endpoints(edge, state.n)
        new = _domain_value(algebra, dtype, edge.weight)
        old = adj[edge.u, edge.v]
        kind = _classify(algebra, old, new)
        if kind == "noop":
            outcome.noops += 1
            continue
        if kind == "improve":
            outcome.improvements += 1
        else:
            outcome.worsenings += 1
        _set_edge(state, edge.u, edge.v, new)
    return outcome


# ---------------------------------------------------------------------------
# Per-edge mechanics
# ---------------------------------------------------------------------------
def _check_endpoints(edge: EdgeUpdate, n: int) -> None:
    if edge.u >= n or edge.v >= n:
        raise ValidationError(
            f"edge update ({edge.u}, {edge.v}) out of range for n={n}")


def _domain_value(algebra, dtype, weight):
    """Map a canonical edge weight (or None = delete) into the algebra domain."""
    zero = algebra.zero_like(dtype)
    if weight is None:
        return zero
    if np.dtype(dtype) == np.bool_:
        return np.bool_(bool(weight))
    value = np.dtype(dtype).type(weight)
    if np.isfinite(value) and algebra.input_validator is not validate_dag_weights:
        algebra.validate_input(np.asarray([value]), "edge weight")
    if not np.isfinite(value):
        # Canonical non-finite means "no edge", exactly as ingestion treats it.
        return zero
    return value


def _classify(algebra, old, new) -> str:
    """``noop`` / ``improve`` (⊕ picks new) / ``worsen`` (⊕ keeps old)."""
    if old == new:
        return "noop"
    combined = algebra.add(np.asarray(old), np.asarray(new))
    return "improve" if combined == new else "worsen"


def _set_edge(state: ClosureState, u: int, v: int, value) -> None:
    adj = state.adjacency
    adj[u, v] = value
    if state.undirected:
        adj[v, u] = value


def _improve_sweep(state: ClosureState, u: int, v: int, weight) -> np.ndarray:
    """Rank-1 relaxation through an improved edge; returns the changed-row mask.

    Undirected edges sweep both orientations sequentially — the second sweep
    sees the first's improvements, which is exactly the sequential-batch
    semantics the correctness argument needs.
    """
    algebra, dist = state.algebra, state.distances
    n = state.n
    changed = np.zeros(n, dtype=bool)
    orientations = [(u, v)] + ([(v, u)] if state.undirected else [])
    for a, b in orientations:
        col = algebra.mul(dist[:, a], weight)
        if state.packed is not None:
            mask = bitset.packed_rank1_update_inplace(state.packed, col,
                                                      dist[b, :])
            if mask.any():
                rows = np.flatnonzero(mask)
                dist[rows] = bitset.unpack_bits(state.packed.words[rows], n)
                changed |= mask
        elif state.witnessed:
            toward = state.parents[b, :].copy()
            toward[b] = a  # the empty v -> v tail: j == v's predecessor is u
            row = witness.WitnessVector(dist[b, :].copy(), toward)
            block = witness.WitnessBlock(dist, state.parents, None)
            changed |= witness.witness_rank1_update_inplace(block, col, row,
                                                            algebra)
        else:
            changed |= fw_rank1_update_inplace(dist, col, dist[b, :], algebra)
    return changed


def _affected_rows(state: ClosureState, u: int, v: int, old,
                   rtol: float) -> np.ndarray:
    """Rows whose *some* optimal path runs through the (still-old) edge.

    The full tight-edge test ``D[i, u] ⊗ w_old ⊗ D[v, j] == D[i, j]`` over
    all destinations ``j`` — not just ``j == v`` — because subpath
    optimality fails in bottleneck algebras (a widest ``i -> j`` path can
    cross the edge even though ``i -> v`` has a wider detour).  Boolean
    closures use the conservative superset "reaches ``u``" (any tie makes a
    cell tight).  Rows outside the returned mask keep exact values under a
    pure worsening: no better path appears, and their optimal ones avoid
    the edge.
    """
    algebra, dist = state.algebra, state.distances
    dtype = dist.dtype
    zero = algebra.zero_like(dtype)
    n = state.n
    if old == zero:
        return np.zeros(n, dtype=bool)

    def orientation(a: int, b: int) -> np.ndarray:
        if dtype == np.bool_:
            return dist[:, a].copy()
        through = algebra.mul(dist[:, a], old)
        candidate = algebra.mul(through[:, None], dist[b, None, :])
        tight = np.isclose(candidate, dist, rtol=rtol, atol=rtol) \
            & (candidate != zero)
        return tight.any(axis=1)

    affected = orientation(u, v)
    if state.undirected:
        affected |= orientation(v, u)
    return affected


def _recompute_rows(state: ClosureState, affected: np.ndarray) -> int:
    """Fixpoint-recompute the affected closure rows against the new adjacency.

    ``X = (A_RR)* ⊗ B`` with boundary ``B = A[R, ~R] ⊗ D[~R, :] ⊕ I[R, :]``
    (see the module docstring), converging in at most ``|R|`` iterations.
    Witnessed states rebuild the parent row of every affected source (values
    alone cannot tell whether a still-equal plateau pointer walked through
    the removed edge).  Returns the number of parent rows that needed the
    BFS-layering rebuild.
    """
    algebra, dist = state.algebra, state.distances
    adj = state.adjacency
    dtype = dist.dtype
    zero = algebra.zero_like(dtype)
    one = algebra.one_like(dtype)
    n = state.n
    rows = np.flatnonzero(affected)
    others = np.flatnonzero(~affected)
    if others.size:
        boundary = semiring_product(adj[np.ix_(rows, others)], dist[others, :],
                                    algebra)
    else:
        boundary = np.full((rows.size, n), zero, dtype=dtype)
    local = np.arange(rows.size)
    boundary[local, rows] = algebra.add(boundary[local, rows],
                                        np.full(rows.size, one, dtype=dtype))
    a_rr = np.ascontiguousarray(adj[np.ix_(rows, rows)])
    solution = boundary
    for _ in range(rows.size):
        relaxed = elementwise_combine(
            boundary, semiring_product(a_rr, solution, algebra), algebra)
        converged = bool(np.array_equal(relaxed, solution))
        solution = relaxed
        if converged:
            break
    dist[rows, :] = solution
    if state.packed is not None:
        state.packed.words[rows] = bitset.pack_bits(dist[rows, :])
        state.packed.invalidate_popcount()
    repaired = 0
    if state.witnessed:
        for source in rows.tolist():
            row = witness.solve_parent_row(source, dist, adj, algebra)
            reachable = dist[source] != zero
            if not witness.consistent_parent_row(row, source,
                                                 reachable=reachable):
                row = witness.rebuild_parent_row(source, dist, adj, algebra)
                repaired += 1
            state.parents[source] = row
    return repaired


def _repair_witnesses(state: ClosureState, outcome: UpdateOutcome) -> int:
    """One global plateau-repair pass after a witnessed batch.

    Per-cell rank-1 witnesses are locally valid but can disagree across
    cells on equal-value plateaus, exactly as during a distributed solve —
    the same detection/rebuild pass runs here, and any rebuilt row is also
    marked changed so the serving cache drops it.
    """
    bad = np.flatnonzero(~witness.consistent_parent_rows(state.parents))
    for source in bad.tolist():
        state.parents[source] = witness.rebuild_parent_row(
            source, state.distances, state.adjacency, state.algebra)
        outcome.changed[source] = True
    return int(bad.size)


def _densify(csr, algebra, dtype) -> np.ndarray:
    """Expand a canonical CSR adjacency into the algebra's dense domain.

    Stored entries are edges, unstored cells the algebra's ``zero``, the
    diagonal its ``one`` — the same mapping
    :func:`~repro.graph.sparse.sparse_to_blocks` applies per block.
    """
    n = csr.shape[0]
    coo = csr.tocoo()
    out = np.full((n, n), algebra.zero_like(dtype), dtype=dtype)
    if np.dtype(dtype) == np.bool_:
        out[coo.row, coo.col] = True
    else:
        out[coo.row, coo.col] = np.asarray(coo.data, dtype=dtype)
    np.fill_diagonal(out, algebra.one_like(dtype))
    return out

"""`RouteService`: online ``route(src, dst)`` queries over a cached closure.

The batch solvers answer "how far is everything from everything?" once; a
serving workload asks "how do I get from A to B?" millions of times.  The
closure matrix is the index — every distance is already there — but paths
are not: materializing the full ``n x n`` predecessor matrix per query (or
even once, for large ``n``) is exactly the memory wall the serving layer
exists to avoid.  :class:`RouteService` instead solves **per-source parent
rows lazily** from the cached closure:

1. *row_solve* — on a cache miss, a single vectorized tight-predecessor
   sweep (:func:`~repro.linalg.witness.solve_parent_row`, O(n²) dense /
   O(nnz) CSR) builds the ``4 n``-byte parent row for the query's source;
2. *repair* — when equal-value plateaus made the fast row cyclic
   (:func:`~repro.linalg.witness.consistent_parent_row` fails), the row is
   rebuilt by tight-edge BFS layering
   (:func:`~repro.linalg.witness.rebuild_parent_row`) — the per-row analogue
   of the solver-side ``repair_parents`` pass;
3. *path_walk* — the pointer chase that actually answers the query.

Rows live in an LRU :class:`~repro.serve.cache.ParentRowCache` under a
byte/row budget, and every query feeds the
:class:`~repro.serve.analytics.ServeAnalytics` stream (latency percentiles,
per-stage attribution), so ``stats()`` can say not just *how slow* but
*which stage* and *whose cache miss*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SolverError, ValidationError
from repro.linalg import witness
from repro.linalg.algebra import Semiring, get_algebra
from repro.serve.analytics import ServeAnalytics
from repro.serve.cache import ParentRowCache


@dataclass(frozen=True)
class RouteAnswer:
    """One answered route query.

    ``path`` is the vertex list ``(src, ..., dst)`` — or ``None`` for an
    unreachable pair (a valid answer, not an error).  ``distance`` is the
    closure entry under the service's algebra (``inf``/``False``/... for
    unreachable pairs, whatever the algebra's ``zero`` is).  ``cached`` says
    whether the parent row came from the cache (``None`` when no row was
    needed: trivial ``src == dst`` and unreachable queries are answered from
    the closure alone).  ``repaired`` flags that this query paid the
    plateau-repair stage.
    """

    src: int
    dst: int
    distance: object
    path: tuple[int, ...] | None
    cached: bool | None
    repaired: bool
    seconds: float

    @property
    def reachable(self) -> bool:
        """True when a path exists (including the trivial one-vertex path)."""
        return self.path is not None

    @property
    def num_edges(self) -> int:
        """Edge count of the path (0 for trivial or unreachable answers)."""
        return 0 if self.path is None else len(self.path) - 1

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        route = "unreachable" if self.path is None else " -> ".join(map(str, self.path))
        return f"{self.src} -> {self.dst}: {route} ({self.distance})"


class RouteService:
    """Answer distance + path queries from a solved closure, one row at a time.

    Parameters
    ----------
    distances:
        The solved ``n x n`` closure matrix (any witness-capable algebra).
    adjacency:
        The *prepared* adjacency the closure was solved from — dense in the
        algebra's domain (missing edges = ``zero``, diagonal = ``one``) or
        canonical CSR (stored entries = edges).  Row solves and repairs read
        edges from here; it is never densified for CSR inputs.
    algebra:
        Name or :class:`~repro.linalg.algebra.Semiring`; must support
        witnesses (otherwise there is no notion of a parent row).
    budget_bytes / max_rows:
        Parent-row cache budgets (see :class:`ParentRowCache`); both
        ``None`` = cache every row ever solved.
    result:
        Optional :class:`~repro.core.base.APSPResult` the closure came from,
        kept for provenance (``service.closure_result``).
    """

    def __init__(self, distances: np.ndarray, adjacency, algebra,
                 *, budget_bytes: int | None = None, max_rows: int | None = None,
                 result=None) -> None:
        self.algebra: Semiring = witness.require_witness(
            get_algebra(algebra), "RouteService")
        dist = np.asarray(distances)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValidationError(
                f"closure matrix must be square, got shape {dist.shape}")
        if adjacency.shape != dist.shape:
            raise ValidationError(
                f"adjacency shape {adjacency.shape} does not match the "
                f"closure shape {dist.shape}")
        self.distances = dist
        self.adjacency = adjacency
        self.n = dist.shape[0]
        self._zero = self.algebra.zero_like(dist.dtype)
        self.cache = ParentRowCache(budget_bytes=budget_bytes, max_rows=max_rows)
        self.analytics = ServeAnalytics()
        self.closure_result = result
        # One lock serializes cache/analytics/degradation mutations (queries
        # under the threads backend arrive concurrently); per-source locks
        # dedup row solves so N simultaneous misses for one source pay one
        # O(n²) solve, while misses for different sources still parallelize.
        self._lock = threading.RLock()
        self._row_locks: dict[int, threading.Lock] = {}
        self._degraded = False
        self._last_error: str | None = None
        self._failed_update_batches = 0
        self._degraded_since: float | None = None

    # ------------------------------------------------------------------ rows
    def parent_row(self, source: int, *,
                   stages: dict[str, float] | None = None) -> np.ndarray:
        """The parent row for ``source``: cached, or lazily solved + cached.

        A miss runs the vectorized row solve, validates the row's pointer
        chains, repairs it by BFS layering if a plateau made them cyclic,
        and stores the result.  ``stages`` (when given) receives the
        per-stage seconds of whatever work this call actually did.

        Concurrent misses for the same source are deduplicated: the first
        caller solves under that source's lock, everyone else waits and then
        finds the row cached (their second lookup counts as the hit it is).
        """
        source = self._check_vertex(source, "source")
        with self._lock:
            if self.cache.peek(source) is not None:
                return self.cache.lookup(source)
            row_lock = self._row_locks.setdefault(source, threading.Lock())
        with row_lock:
            with self._lock:
                if self.cache.peek(source) is not None:
                    # A concurrent solver beat us to the store while we
                    # waited on the row lock; count the hit it is.
                    return self.cache.lookup(source)
                # We are the solver for this source: count this call's one
                # miss now (every parent_row call is exactly one hit or one
                # miss, no matter how many threads pile onto a cold source).
                self.cache.lookup(source)
            start = time.perf_counter()
            row = witness.solve_parent_row(source, self.distances,
                                           self.adjacency, self.algebra)
            reachable = self.distances[source] != self._zero
            consistent = witness.consistent_parent_row(row, source,
                                                       reachable=reachable)
            solve_seconds = time.perf_counter() - start
            if stages is not None:
                stages["row_solve"] = stages.get("row_solve", 0.0) + solve_seconds
            if not consistent:
                start = time.perf_counter()
                row = witness.rebuild_parent_row(source, self.distances,
                                                 self.adjacency, self.algebra)
                if stages is not None:
                    stages["repair"] = (stages.get("repair", 0.0)
                                        + time.perf_counter() - start)
            with self._lock:
                self.cache.store(source, row)
                self._row_locks.pop(source, None)
        return row

    def notify_update(self, changed_rows=None, *, adjacency=None) -> int:
        """Drop parent rows whose sources a dynamic closure update changed.

        The engine calls this after :meth:`~repro.core.engine.APSPEngine.update`
        mutated the closure in place: the distances array the service reads
        is already current (same ndarray), but cached parent rows for the
        changed sources describe paths that may no longer be optimal — or,
        after a deletion, no longer exist.  ``changed_rows`` is an iterable
        of source indices (``None`` = drop every cached row, the re-solve
        fallback).  ``adjacency`` rebinds the edge source when the update
        replaced it — e.g. the first update against a CSR-ingested closure
        densifies the adjacency into the algebra's domain, and row solves
        must follow it.  Returns the number of rows dropped.
        """
        with self._lock:
            if adjacency is not None:
                if adjacency.shape != self.distances.shape:
                    raise ValidationError(
                        f"updated adjacency shape {adjacency.shape} does not "
                        f"match the closure shape {self.distances.shape}")
                self.adjacency = adjacency
            if changed_rows is None:
                return self.cache.invalidate()
            dropped = 0
            for source in np.asarray(changed_rows).reshape(-1).tolist():
                dropped += self.cache.invalidate(int(source))
            return dropped

    # ------------------------------------------------------------------ degradation
    def mark_degraded(self, error: BaseException) -> None:
        """Enter degraded mode: a closure update failed and was rolled back.

        The service keeps answering every query from the last good closure
        (the rollback restored it in place); this only records *that* the
        closure is stale and why, for :meth:`stats` to surface.
        """
        with self._lock:
            self._degraded = True
            self._last_error = f"{type(error).__name__}: {error}"
            self._failed_update_batches += 1
            if self._degraded_since is None:
                self._degraded_since = time.perf_counter()

    def mark_healthy(self) -> None:
        """Leave degraded mode: an update committed, the closure is fresh again."""
        with self._lock:
            self._degraded = False
            self._last_error = None
            self._failed_update_batches = 0
            self._degraded_since = None

    @property
    def degraded(self) -> bool:
        """True while the service answers from a stale (but consistent) closure."""
        with self._lock:
            return self._degraded

    def _check_vertex(self, vertex: int, name: str) -> int:
        vertex = int(vertex)
        if not 0 <= vertex < self.n:
            raise ValidationError(
                f"route {name} {vertex} out of range for n={self.n}")
        return vertex

    # ------------------------------------------------------------------ queries
    def distance(self, src: int, dst: int):
        """The closure entry for ``(src, dst)`` — no row solve, no analytics."""
        src = self._check_vertex(src, "source")
        dst = self._check_vertex(dst, "destination")
        return self.distances[src, dst]

    def route(self, src: int, dst: int) -> RouteAnswer:
        """Answer one query: distance plus the optimal path's vertex list.

        Unreachable pairs return ``path=None`` (valid answer; no parent row
        is ever solved for them).  Endpoint validation errors raise before
        anything is recorded; a genuinely inconsistent closure raises
        :class:`~repro.common.errors.SolverError` *after* being counted in
        ``analytics.errors``.
        """
        src = self._check_vertex(src, "source")
        dst = self._check_vertex(dst, "destination")
        start = time.perf_counter()
        stages: dict[str, float] = {}
        distance = self.distances[src, dst]
        if src == dst:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.analytics.record_query(elapsed, stages=stages)
            return RouteAnswer(src, dst, distance, (src,), None, False, elapsed)
        if distance == self._zero:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.analytics.record_query(elapsed, stages=stages,
                                            unreachable=True)
            return RouteAnswer(src, dst, distance, None, None, False, elapsed)
        with self._lock:
            hit = src in self.cache
        try:
            row = self.parent_row(src, stages=stages)
            walk_start = time.perf_counter()
            try:
                path = witness.walk_parent_row(row, src, dst)
            except SolverError:
                # Defensive second chance: a cached row can only be walked
                # into a dead end if it predates a repair; rebuild and retry.
                stages["path_walk"] = (stages.get("path_walk", 0.0)
                                       + time.perf_counter() - walk_start)
                repair_start = time.perf_counter()
                row = witness.rebuild_parent_row(src, self.distances,
                                                 self.adjacency, self.algebra)
                with self._lock:
                    self.cache.store(src, row)
                stages["repair"] = (stages.get("repair", 0.0)
                                    + time.perf_counter() - repair_start)
                walk_start = time.perf_counter()
                path = witness.walk_parent_row(row, src, dst)
            stages["path_walk"] = (stages.get("path_walk", 0.0)
                                   + time.perf_counter() - walk_start)
        except SolverError:
            with self._lock:
                self.analytics.record_query(time.perf_counter() - start,
                                            stages=stages, error=True)
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            self.analytics.record_query(elapsed, stages=stages)
        return RouteAnswer(src, dst, distance, tuple(path), hit,
                           "repair" in stages, elapsed)

    def routes(self, pairs) -> list[RouteAnswer]:
        """Answer a batch of queries in order.

        ``pairs`` is an iterable of ``(src, dst)`` pairs — plain tuples or
        :class:`~repro.core.request.RouteQuery` objects (anything with
        ``src``/``dst`` attributes works).
        """
        answers = []
        for pair in pairs:
            if hasattr(pair, "src") and hasattr(pair, "dst"):
                src, dst = pair.src, pair.dst
            else:
                src, dst = pair
            answers.append(self.route(src, dst))
        return answers

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """One merged report: analytics stream + cache counters + geometry.

        The acceptance surface of the serving layer: latency percentiles,
        hit rate, eviction counts, and per-stage cost attribution, plus the
        current cache occupancy against its budget and the degradation state
        (``degraded``/``last_error``/``staleness``) maintained by the
        engine's transactional update path.
        """
        with self._lock:
            stats = {"n": self.n, "algebra": self.algebra.name}
            stats.update(self.analytics.as_dict())
            stats.update(self.cache.stats())
            stats["degraded"] = self._degraded
            stats["last_error"] = self._last_error
            stats["staleness"] = {
                "missed_update_batches": self._failed_update_batches,
                "degraded_seconds": (time.perf_counter() - self._degraded_since
                                     if self._degraded_since is not None else 0.0),
            }
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RouteService(n={self.n}, algebra={self.algebra.name!r}, "
                f"queries={self.analytics.queries}, cached_rows={len(self.cache)})")

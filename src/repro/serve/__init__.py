"""The serving layer: online route queries over a solved APSP closure.

The batch side of this repo produces closures; this package *answers
questions* from them.  :class:`~repro.serve.service.RouteService` is the
entry point (usually reached through
:meth:`repro.core.engine.APSPEngine.serve`): it solves per-source parent
rows lazily from the cached closure, keeps them in an LRU
:class:`~repro.serve.cache.ParentRowCache` under a memory budget, and
streams every query through :class:`~repro.serve.analytics.ServeAnalytics`
for latency percentiles and per-stage cost attribution.
"""

from repro.serve.analytics import DEFAULT_RESERVOIR, STAGES, ServeAnalytics
from repro.serve.cache import ParentRowCache
from repro.serve.report import (
    ROUTE_ERROR,
    ROUTE_MISMATCH,
    ROUTE_OK,
    ROUTE_UNREACHABLE,
    fold_route,
    format_route,
    load_pairs_file,
    render_report,
)
from repro.serve.service import RouteAnswer, RouteService

__all__ = [
    "DEFAULT_RESERVOIR",
    "ROUTE_ERROR",
    "ROUTE_MISMATCH",
    "ROUTE_OK",
    "ROUTE_UNREACHABLE",
    "STAGES",
    "ParentRowCache",
    "RouteAnswer",
    "RouteService",
    "ServeAnalytics",
    "fold_route",
    "format_route",
    "load_pairs_file",
    "render_report",
]

"""Shared route formatting, pairs-file parsing, and the serving report.

Two front ends print routes — ``apspark solve --route`` (one query against a
fully materialized result) and the serving commands (``apspark route`` /
``apspark serve`` over the lazy row cache).  Both go through
:func:`format_route` so the output line, the independent weight re-fold, and
the match verdict are one implementation, not two drifting copies.

The fold deliberately re-derives the route's weight from the *adjacency*
(edge by edge) rather than trusting the closure entry: a route whose folded
weight disagrees with ``distances[src, dst]`` means the witness machinery
produced a wrong path, which is exactly the bug class this check exists to
catch.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SolverError
from repro.graph import sparse as sparse_graph
from repro.linalg.algebra import get_algebra

#: ``format_route`` verdicts, in decreasing order of health.
ROUTE_OK = "ok"
ROUTE_UNREACHABLE = "unreachable"
ROUTE_MISMATCH = "mismatch"
ROUTE_ERROR = "error"


def fold_route(adjacency, path, algebra):
    """Fold a route's edge weights under the algebra's ⊗, edge by edge.

    ``adjacency`` is either the *prepared* dense matrix (algebra domain:
    missing edges hold the algebra's ``zero``) or a canonical CSR (stored
    entries are edges); only the route's own edges are indexed, so sparse
    inputs are never densified.  Raises :class:`SolverError` when a step of
    the path is not an edge — the fold must fail loudly rather than fold a
    "no edge" sentinel into the product.
    """
    algebra = get_algebra(algebra)
    sparse = sparse_graph.is_sparse(adjacency)
    dtype = np.dtype(adjacency.dtype)
    fold = algebra.one_like(dtype)
    zero = algebra.zero_like(dtype)
    for u, v in zip(path[:-1], path[1:]):
        if sparse:
            # CSR membership check: an absent entry reads as numeric 0,
            # which must not be mistaken for a zero-weight edge.
            lo, hi = adjacency.indptr[u], adjacency.indptr[u + 1]
            hit = np.nonzero(adjacency.indices[lo:hi] == v)[0]
            if hit.size == 0:
                raise SolverError(f"route step {u} -> {v} is not an edge")
            raw = adjacency.data[lo:hi][hit[0]]
        else:
            raw = adjacency[u, v]
            if raw == zero:
                raise SolverError(f"route step {u} -> {v} is not an edge")
        if dtype == np.bool_:
            if not bool(raw):
                raise SolverError(f"route step {u} -> {v} is not an edge")
            continue
        fold = algebra.mul(fold, dtype.type(raw))
    return fold


def format_route(src, dst, path, closure, adjacency, algebra,
                 *, tolerances=None) -> tuple[str, str]:
    """Render one answered route as the canonical CLI line, with a verdict.

    ``path`` is the vertex sequence or ``None`` for an unreachable pair.
    Returns ``(line, verdict)`` where the verdict is one of :data:`ROUTE_OK`,
    :data:`ROUTE_UNREACHABLE` (healthy), :data:`ROUTE_MISMATCH` (the folded
    weight disagrees with the closure entry) or :data:`ROUTE_ERROR` (a step
    of the path is not an edge).  ``tolerances`` are ``np.isclose`` keywords
    for the numeric match.
    """
    algebra = get_algebra(algebra)
    if path is None:
        return f"route {src} -> {dst}: no path", ROUTE_UNREACHABLE
    try:
        fold = fold_route(adjacency, path, algebra)
    except SolverError as exc:
        return f"route {src} -> {dst}: error: {exc}", ROUTE_ERROR
    is_bool = np.dtype(np.asarray(closure).dtype) == np.bool_
    if is_bool:
        match = bool(fold) == bool(closure)
        weight_bit = "reachable"
    else:
        match = bool(np.isclose(float(fold), float(closure), **(tolerances or {})))
        weight_bit = f"weight={float(fold):g} closure={float(closure):g}"
    line = (f"route {src} -> {dst}: {' -> '.join(str(v) for v in path)} "
            f"({len(path) - 1} edge(s), {weight_bit}, "
            f"{'match' if match else 'MISMATCH'})")
    return line, ROUTE_OK if match else ROUTE_MISMATCH


def load_pairs_file(path: str, *, n: int | None = None) -> list[tuple[int, int]]:
    """Parse a query-pairs file: one ``SRC DST`` per line.

    Whitespace- or comma-separated, blank lines and ``#`` comments ignored —
    the format SNAP edge lists use, so a dataset's edge file can double as a
    replay workload.  With ``n`` given, endpoints are range-checked here so
    a bad file fails as a parse error (with a line number) rather than
    mid-replay.
    """
    pairs: list[tuple[int, int]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            fields = text.replace(",", " ").split()
            if len(fields) != 2:
                raise SolverError(
                    f"{path}:{lineno}: expected 'SRC DST', got {raw.strip()!r}")
            try:
                src, dst = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise SolverError(f"{path}:{lineno}: {exc}") from None
            if n is not None and not (0 <= src < n and 0 <= dst < n):
                raise SolverError(
                    f"{path}:{lineno}: pair ({src}, {dst}) out of range for n={n}")
            pairs.append((src, dst))
    return pairs


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_bytes(nbytes) -> str:
    if nbytes is None:
        return "unbounded"
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"  # pragma: no cover - unreachable


def render_report(stats: dict) -> str:
    """Render a :meth:`RouteService.stats` snapshot as a human-readable report.

    One block, four lines: the query stream, its latency percentiles, the
    cache's hit/eviction behaviour against its budget, and the per-stage
    cost attribution (the serving pipeline's answer to "where did the time
    go?").
    """
    lines = [
        f"serving report: {stats['queries']} quer"
        f"{'y' if stats['queries'] == 1 else 'ies'} on n={stats['n']} "
        f"[{stats['algebra']}]"
        + (f", {stats['unreachable']} unreachable" if stats["unreachable"] else "")
        + (f", {stats['errors']} ERROR(S)" if stats["errors"] else ""),
        "  latency: "
        + "  ".join(f"{name} {_fmt_latency(stats[key])}" for name, key in (
            ("mean", "latency_mean_s"), ("p50", "latency_p50_s"),
            ("p95", "latency_p95_s"), ("p99", "latency_p99_s"),
            ("max", "latency_max_s")))
        + ("  (sampled)" if stats.get("latency_sampled") else ""),
        f"  cache: {stats['cache_hits']} hit(s) / {stats['cache_misses']} miss(es) "
        f"({stats['cache_hit_rate']:.1%} hit rate), "
        f"{stats['cache_evictions']} eviction(s); "
        f"{stats['cache_rows']} row(s) / {_fmt_bytes(stats['cache_bytes'])} held "
        f"(budget {_fmt_bytes(stats['cache_budget_bytes'])}"
        + (f", max {stats['cache_max_rows']} rows" if stats["cache_max_rows"] else "")
        + ")",
        "  stages: " + " | ".join(
            f"{stage} {stats['stage_counts'][stage]}x "
            f"{_fmt_latency(stats['stage_seconds'][stage])}"
            for stage in stats["stage_counts"]),
    ]
    return "\n".join(lines)

"""Request-level serving analytics: latency percentiles + per-stage attribution.

Aggregate wall time alone cannot tell you *which* stage of a route query is
the bottleneck — a slow p99 could be cold-row solves, plateau repairs, or
long path walks.  Following the two-level analytics idiom (aggregate stats
over the whole query stream, cost attribution per pipeline stage),
:class:`ServeAnalytics` records both:

* per-query latency, summarized as p50/p95/p99 percentiles over a bounded
  reservoir (a heavy-traffic session must not grow memory with query count);
* per-stage cost — ``row_solve`` (the vectorized tight-predecessor sweep on
  a cache miss), ``path_walk`` (the pointer chase answering the query), and
  ``repair`` (the BFS rebuild when a plateau made the fast row cyclic) —
  as both cumulative seconds and invocation counts.

Cache behaviour (hits/misses/evictions) lives with the cache itself;
:meth:`RouteService.stats` merges the two views into one report.
"""

from __future__ import annotations

import random

from repro.spark.metrics import latency_summary

#: The serving pipeline's stages, in execution order.
STAGES = ("row_solve", "path_walk", "repair")

#: Default latency-reservoir capacity: enough for exact percentiles on any
#: bench/CI workload, bounded for production-length sessions.
DEFAULT_RESERVOIR = 8192


class ServeAnalytics:
    """Accumulator for one serving session's query stream.

    Latencies are kept in a fixed-size reservoir (uniform sampling once the
    capacity is exceeded, seeded for reproducibility) so percentile quality
    degrades gracefully instead of memory growing with traffic.  Stage
    seconds/counts and the query counters are exact regardless of sampling.
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self._capacity = int(reservoir)
        self._latencies: list[float] = []
        self._rng = random.Random(0)
        self.queries = 0
        self.unreachable = 0
        self.errors = 0
        self.stage_seconds: dict[str, float] = {s: 0.0 for s in STAGES}
        self.stage_counts: dict[str, int] = {s: 0 for s in STAGES}

    # ------------------------------------------------------------------
    def record_query(self, seconds: float, *, stages: dict[str, float] | None = None,
                     unreachable: bool = False, error: bool = False) -> None:
        """Record one answered query: its latency and its per-stage breakdown.

        ``stages`` maps stage name to seconds spent in that stage for *this*
        query; a stage absent from the dict did not run.  Unknown stage
        names raise — a typo would silently vanish from the attribution
        report otherwise.
        """
        self.queries += 1
        if unreachable:
            self.unreachable += 1
        if error:
            self.errors += 1
        if len(self._latencies) < self._capacity:
            self._latencies.append(float(seconds))
        else:
            # Reservoir sampling: keep each of the first `queries` samples
            # with equal probability in a fixed-size buffer.
            slot = self._rng.randrange(self.queries)
            if slot < self._capacity:
                self._latencies[slot] = float(seconds)
        for name, spent in (stages or {}).items():
            if name not in self.stage_seconds:
                raise ValueError(f"unknown serving stage {name!r}; "
                                 f"expected one of {', '.join(STAGES)}")
            self.stage_seconds[name] += float(spent)
            self.stage_counts[name] += 1

    # ------------------------------------------------------------------
    def latency(self) -> dict:
        """Latency summary (count/mean/max/p50/p95/p99) over the reservoir."""
        return latency_summary(self._latencies)

    def as_dict(self) -> dict:
        """Full analytics snapshot: counters, percentiles, stage attribution.

        ``stage_seconds``/``stage_counts`` always carry every stage (zeros
        for stages that never ran) so reports and tests can rely on the
        shape; ``latency_sampled`` flags when the reservoir overflowed and
        percentiles became estimates.
        """
        latency = self.latency()
        return {
            "queries": self.queries,
            "unreachable": self.unreachable,
            "errors": self.errors,
            "latency_mean_s": latency["mean_s"],
            "latency_max_s": latency["max_s"],
            "latency_p50_s": latency["p50_s"],
            "latency_p95_s": latency["p95_s"],
            "latency_p99_s": latency["p99_s"],
            "latency_sampled": self.queries > self._capacity,
            "stage_seconds": dict(self.stage_seconds),
            "stage_counts": dict(self.stage_counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServeAnalytics(queries={self.queries}, "
                f"unreachable={self.unreachable}, errors={self.errors})")

"""LRU cache of per-source parent rows under a configurable memory budget.

The serving layer's core memory trade: a full predecessor matrix is
``4 n²`` bytes (int32), but a query workload touches a *biased* subset of
sources.  :class:`ParentRowCache` keeps only the rows queries actually
needed — ``4 n`` bytes each — and evicts in least-recently-used order once
the configured budget (bytes and/or row count) is exceeded, so the serving
footprint is ``O(budget)`` regardless of how many distinct sources a long
session sees.  The cache is a dumb container on purpose: it never *builds*
rows (that is :class:`~repro.serve.service.RouteService`'s job), it only
accounts for them, which keeps the hit/miss/eviction counters an exact
description of cache behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.common.errors import ConfigurationError


class ParentRowCache:
    """LRU map of ``source -> parent row`` with byte and row-count budgets.

    Parameters
    ----------
    budget_bytes:
        Maximum total ``nbytes`` across cached rows; ``None`` = unbounded.
        The most recently stored row is never evicted, so a budget smaller
        than one row degenerates to a one-row cache rather than an error.
    max_rows:
        Maximum number of cached rows; ``None`` = unbounded.  Both limits
        may be combined; the tighter one wins.

    The cache is internally locked: every public method takes a reentrant
    mutex, so concurrent route() threads in
    :class:`~repro.serve.service.RouteService` can share one instance
    without torn LRU state or miscounted bytes.  Counter *consistency*
    across calls (e.g. check-then-store) is still the caller's job — the
    service holds its own lock for those sequences.
    """

    def __init__(self, budget_bytes: int | None = None,
                 max_rows: int | None = None) -> None:
        if budget_bytes is not None and int(budget_bytes) < 1:
            raise ConfigurationError("cache budget_bytes must be >= 1 or None")
        if max_rows is not None and int(max_rows) < 1:
            raise ConfigurationError("cache max_rows must be >= 1 or None")
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.max_rows = None if max_rows is None else int(max_rows)
        self._mutex = threading.RLock()
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._mutex:
            return len(self._rows)

    def __contains__(self, source: int) -> bool:
        with self._mutex:
            return int(source) in self._rows

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across cached rows."""
        with self._mutex:
            return self._nbytes

    def sources(self) -> list[int]:
        """Cached sources in eviction order (least recently used first)."""
        with self._mutex:
            return list(self._rows)

    # ------------------------------------------------------------------
    def lookup(self, source: int) -> np.ndarray | None:
        """Return the cached row for ``source`` (refreshing its recency) or None.

        Every call counts exactly one hit or one miss, so
        ``hits + misses == lookups``.
        """
        key = int(source)
        with self._mutex:
            row = self._rows.get(key)
            if row is None:
                self.misses += 1
                return None
            self._rows.move_to_end(key)
            self.hits += 1
            return row

    def peek(self, source: int) -> np.ndarray | None:
        """Return the cached row without touching recency or hit/miss counters.

        Used by dedup re-checks: a solver thread that already counted its
        miss must not count a second one when confirming nobody beat it to
        the store.
        """
        with self._mutex:
            return self._rows.get(int(source))

    def store(self, source: int, row: np.ndarray) -> int:
        """Insert (or replace) a row, evicting LRU rows past the budgets.

        Returns the number of rows evicted by this insertion.  The row just
        stored is exempt from its own eviction sweep — a budget tighter than
        one row keeps exactly the newest row.
        """
        key = int(source)
        arr = np.asarray(row)
        with self._mutex:
            old = self._rows.pop(key, None)
            if old is not None:
                self._nbytes -= int(old.nbytes)
            self._rows[key] = arr
            self._nbytes += int(arr.nbytes)
            evicted = 0
            while len(self._rows) > 1 and self._over_budget():
                victim, victim_row = self._rows.popitem(last=False)
                self._nbytes -= int(victim_row.nbytes)
                evicted += 1
            self.evictions += evicted
            return evicted

    def _over_budget(self) -> bool:
        if self.max_rows is not None and len(self._rows) > self.max_rows:
            return True
        return self.budget_bytes is not None and self._nbytes > self.budget_bytes

    def invalidate(self, source: int | None = None) -> int:
        """Drop the row for ``source`` — or every row when ``source`` is None.

        The dynamic-update hook: when an edge update changes closure rows,
        their cached parent rows describe paths that may no longer exist and
        must be dropped rather than evicted (an eviction is a budget
        decision; an invalidation is a correctness one — they are counted
        separately).  Returns the number of rows dropped; invalidating an
        uncached source is a no-op, not an error.
        """
        with self._mutex:
            if source is None:
                dropped = len(self._rows)
                self._rows.clear()
                self._nbytes = 0
                self.invalidations += dropped
                return dropped
            row = self._rows.pop(int(source), None)
            if row is None:
                return 0
            self._nbytes -= int(row.nbytes)
            self.invalidations += 1
            return 1

    def clear(self) -> None:
        """Drop every cached row (counters are kept — they describe the session)."""
        with self._mutex:
            self._rows.clear()
            self._nbytes = 0

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss/eviction counters plus the current occupancy."""
        with self._mutex:
            lookups = self.hits + self.misses
            return {
                "cache_rows": len(self._rows),
                "cache_bytes": self._nbytes,
                "cache_budget_bytes": self.budget_bytes,
                "cache_max_rows": self.max_rows,
                "cache_hits": self.hits,
                "cache_misses": self.misses,
                "cache_evictions": self.evictions,
                "cache_invalidations": self.invalidations,
                "cache_hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParentRowCache(rows={len(self._rows)}, bytes={self._nbytes}, "
                f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})")

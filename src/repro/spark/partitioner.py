"""RDD partitioners: pySpark's default Portable Hash and the paper's Multi-Diagonal.

Section 5.3 of the paper compares two partitioners for RDDs keyed by matrix
block indices ``(I, J)``:

* **PH** — pySpark's default ``portable_hash``, which mixes tuple elements
  with XOR/multiply.  On upper-triangular key sets this produces many
  collisions and therefore skewed partitions (Figure 3, bottom).
* **MD** — the authors' multi-diagonal partitioner (Figure 4), which walks the
  blocks diagonal by diagonal and deals them to partitions round-robin,
  guaranteeing near-perfectly balanced partitions while spreading each block
  row/column across distinct partitions.
"""

from __future__ import annotations

import sys
from typing import Hashable, Iterable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import check_positive_int


def portable_hash(x) -> int:
    """Re-implementation of pySpark's ``portable_hash``.

    Tuples are mixed exactly the way pySpark (and CPython's old tuple hash)
    does: XOR with the element hash followed by multiplication with 1000003.
    This is deliberately bug-compatible — the skew it produces on
    upper-triangular ``(I, J)`` keys is part of what the paper measures.
    """
    if x is None:
        return 0
    if isinstance(x, tuple):
        h = 0x345678
        for item in x:
            h ^= portable_hash(item)
            h *= 1000003
            h &= sys.maxsize
        h ^= len(x)
        if h == -1:
            h = -2
        return int(h)
    return hash(x)


class Partitioner:
    """Base class: maps record keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        self.num_partitions = check_positive_int(num_partitions, "num_partitions")

    def partition(self, key: Hashable) -> int:
        """Map a block key to a partition index."""
        raise NotImplementedError

    def __call__(self, key: Hashable) -> int:
        p = self.partition(key)
        if not (0 <= p < self.num_partitions):
            raise ConfigurationError(
                f"partitioner returned {p}, outside [0, {self.num_partitions})")
        return p

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def distribution(self, keys: Iterable[Hashable]) -> np.ndarray:
        """Histogram of how many of ``keys`` fall into each partition.

        This is the quantity plotted in the bottom panel of Figure 3
        (distribution of RDD partition sizes).
        """
        counts = np.zeros(self.num_partitions, dtype=np.int64)
        for key in keys:
            counts[self(key)] += 1
        return counts


class PortableHashPartitioner(Partitioner):
    """pySpark's default hash partitioner (``portable_hash(key) % num_partitions``)."""

    def partition(self, key: Hashable) -> int:
        """Partition by Python-hash of the key (pySpark default)."""
        return portable_hash(key) % self.num_partitions


class MultiDiagonalPartitioner(Partitioner):
    """The paper's multi-diagonal (MD) partitioner for upper-triangular block keys.

    Blocks are enumerated diagonal by diagonal (main diagonal first, then the
    super-diagonals) and dealt to partitions round-robin with a per-diagonal
    offset.  This yields (i) partition sizes that differ by at most one block
    and (ii) blocks sharing a block-row or block-column being spread across
    different partitions — the two properties Section 5.3 identifies as
    critical for the blocked solvers.

    Keys that are not 2-tuples of integers fall back to the portable hash so
    the partitioner can be used on mixed-key RDDs.
    """

    def __init__(self, num_partitions: int, q: int) -> None:
        super().__init__(num_partitions)
        self.q = check_positive_int(q, "q")
        self._assignment = self._build_assignment(self.q, self.num_partitions)

    @staticmethod
    def _build_assignment(q: int, num_partitions: int) -> dict[tuple[int, int], int]:
        assignment: dict[tuple[int, int], int] = {}
        counter = 0
        for d in range(q):            # diagonal offset J - I
            for i in range(q - d):    # walk down the diagonal
                key = (i, i + d)
                assignment[key] = counter % num_partitions
                counter += 1
        return assignment

    def partition(self, key: Hashable) -> int:
        """Partition by the paper's multi-diagonal traversal order."""
        if (isinstance(key, tuple) and len(key) == 2
                and all(isinstance(k, (int, np.integer)) for k in key)):
            i, j = int(key[0]), int(key[1])
            # Normalize to the upper triangle: (I, J) and (J, I) co-locate, the
            # paper's symmetric-storage requirement.
            if i > j:
                i, j = j, i
            if (i, j) in self._assignment:
                return self._assignment[(i, j)]
        return portable_hash(key) % self.num_partitions

    def layout(self) -> np.ndarray:
        """Return the q x q matrix of partition assignments (Figure 4).

        Lower-triangular entries mirror their upper-triangular counterpart,
        reflecting that block ``(J, I)`` is processed by the executor holding
        ``(I, J)``.
        """
        grid = np.zeros((self.q, self.q), dtype=np.int64)
        for (i, j), p in self._assignment.items():
            grid[i, j] = p
            grid[j, i] = p
        return grid

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MultiDiagonalPartitioner)
                and self.num_partitions == other.num_partitions and self.q == other.q)

    def __hash__(self) -> int:
        return hash(("MD", self.num_partitions, self.q))


class GridPartitioner(Partitioner):
    """A conventional 2-D grid partitioner (for ablation against MD/PH).

    Assigns block ``(I, J)`` to ``(I % r) * c + (J % c)`` where ``r * c`` is the
    partition count arranged as close to square as possible.  This is the kind
    of layout classic 2-D matrix algorithms use; the paper argues it is less
    suited to Spark because the runtime controls task placement anyway.
    """

    def __init__(self, num_partitions: int) -> None:
        super().__init__(num_partitions)
        r = int(np.floor(np.sqrt(num_partitions)))
        while num_partitions % r != 0:
            r -= 1
        self.rows = max(1, r)
        self.cols = num_partitions // self.rows

    def partition(self, key: Hashable) -> int:
        """Partition by coarse grid cells of the block index space."""
        if (isinstance(key, tuple) and len(key) == 2
                and all(isinstance(k, (int, np.integer)) for k in key)):
            i, j = int(key[0]), int(key[1])
            return (i % self.rows) * self.cols + (j % self.cols)
        return portable_hash(key) % self.num_partitions


#: Canonical partitioner short names and the aliases they accept.
PARTITIONER_NAMES = ("MD", "PH", "GRID")
_PARTITIONER_ALIASES = {
    "HASH": "PH", "PORTABLE_HASH": "PH",
    "MULTIDIAGONAL": "MD", "MULTI_DIAGONAL": "MD",
    "2D": "GRID",
}


def canonical_partitioner_name(name: str) -> str:
    """Resolve a partitioner name or alias to ``"PH"``, ``"MD"`` or ``"GRID"``.

    The single source of truth for partitioner naming, shared by
    :func:`partitioner_by_name` and :class:`repro.core.request.SolveRequest`.
    """
    upper = str(name).strip().upper()
    upper = _PARTITIONER_ALIASES.get(upper, upper)
    if upper not in PARTITIONER_NAMES:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; expected one of {', '.join(PARTITIONER_NAMES)}")
    return upper


def partitioner_by_name(name: str, num_partitions: int, q: int) -> Partitioner:
    """Construct a partitioner from its short name (``"PH"``, ``"MD"`` or ``"GRID"``)."""
    canonical = canonical_partitioner_name(name)
    if canonical == "PH":
        return PortableHashPartitioner(num_partitions)
    if canonical == "MD":
        return MultiDiagonalPartitioner(num_partitions, q)
    return GridPartitioner(num_partitions)

"""Resilient Distributed Dataset: lazy, lineage-tracked, partitioned collections.

The subset of the RDD API implemented here is exactly what the paper's four
APSP solvers use (Algorithms 1-4).  Narrow transformations (``map``,
``filter``, ``flatMap``, ``mapValues``, ``mapPartitions``) are evaluated
lazily per partition and recomputed from lineage when needed; wide
transformations (``partitionBy``, ``reduceByKey``, ``combineByKey``,
``groupByKey``) materialize a shuffle through the
:class:`~repro.spark.shuffle.ShuffleManager`, which charges spill volume to
executors; ``cartesian`` enumerates partition pairs like Spark's all-to-all
product; ``union`` concatenates parent partitions (and therefore loses the
partitioner), which is the partition-explosion behaviour Section 5.2 warns
about.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Iterable, Sequence

from repro.common.errors import ConfigurationError
from repro.spark.partitioner import Partitioner, PortableHashPartitioner
from repro.spark.remote import RemoteTask, compute_map_partition, is_picklable
from repro.spark.util import estimate_size, record_key


class _PerRecordAdapter:
    """Partition adapter applying ``func`` to every record.

    The adapters are classes (not lambdas) so that a partition computation is
    picklable — and therefore shippable to a worker process — whenever the
    user function itself is.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, index: int, records: list) -> list:
        return [self.func(x) for x in records]


class _FilterAdapter:
    """Partition adapter keeping records matching ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable) -> None:
        self.predicate = predicate

    def __call__(self, index: int, records: list) -> list:
        return [x for x in records if self.predicate(x)]


class _FlatMapAdapter:
    """Partition adapter applying ``func`` per record and flattening the results."""

    __slots__ = ("func",)

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, index: int, records: list) -> list:
        out: list = []
        for x in records:
            out.extend(self.func(x))
        return out


class _MapValuesAdapter:
    """Partition adapter applying ``func`` to values of (key, value) records."""

    __slots__ = ("func",)

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, index: int, records: list) -> list:
        return [(record_key(x), self.func(x[1])) for x in records]


class _WholePartitionAdapter:
    """Partition adapter applying ``func`` to the whole partition."""

    __slots__ = ("func",)

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, index: int, records: list) -> list:
        return list(self.func(records))


class _IndexedPartitionAdapter:
    """Partition adapter applying ``func(index, partition)`` to the whole partition."""

    __slots__ = ("func",)

    def __init__(self, func: Callable) -> None:
        self.func = func

    def __call__(self, index: int, records: list) -> list:
        return list(self.func(index, records))


def _record_value(record):
    """Module-level value extractor (picklable, unlike a lambda)."""
    return record[1]


class RDD:
    """Base class of all RDDs.  Use :class:`~repro.spark.context.SparkContext` to create them."""

    def __init__(self, context, num_partitions: int, partitioner: Partitioner | None = None,
                 parents: Sequence["RDD"] = ()) -> None:
        self.context = context
        self.id = context._register_rdd(self)
        self._num_partitions = int(num_partitions)
        self.partitioner = partitioner
        self._parents = list(parents)
        self._persisted = False
        self._cache: dict[int, list] = {}
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------ structure
    @property
    def num_partitions(self) -> int:
        """Partition count of this RDD."""
        return self._num_partitions

    def getNumPartitions(self) -> int:
        """pySpark-compatible alias of :attr:`num_partitions`."""
        return self._num_partitions

    def parents(self) -> list["RDD"]:
        """Parent RDDs in the lineage graph."""
        return list(self._parents)

    def compute_partition(self, index: int) -> list:
        """Compute the records of partition ``index`` from the parent lineage."""
        raise NotImplementedError

    def prepare(self, _visited: set[int] | None = None) -> None:
        """Materialize any shuffle dependencies in the lineage (post-order).

        The lineage is a DAG in which an RDD may be reachable along many paths
        (e.g. the blocked solvers reuse the previous iteration's RDD several
        times per iteration), so traversal is memoized by RDD identity.
        """
        if _visited is None:
            _visited = set()
        if id(self) in _visited:
            return
        _visited.add(id(self))
        for parent in self._parents:
            parent.prepare(_visited)

    def iterator(self, index: int) -> list:
        """Return the records of partition ``index``, honouring persistence."""
        if self._persisted:
            with self._cache_lock:
                if index in self._cache:
                    return self._cache[index]
            data = self.compute_partition(index)
            with self._cache_lock:
                if index not in self._cache:
                    self._cache[index] = data
                    self.context.metrics.partition_cached(
                        sum(estimate_size(r) for r in data))
            return data
        return self.compute_partition(index)

    def remote_payload(self, index: int):
        """Picklable ``(fn, args)`` computing this partition in a worker, or ``None``.

        ``None`` means "driver-only": the partition computation captures
        driver state (closures, the context, shuffle outputs) and must run
        in-process.  Subclasses with self-contained computations override
        this so the ``processes`` backend can ship them.
        """
        return None

    def _fill_cache(self, index: int, records: list) -> None:
        """Store remotely-computed records in the persistence cache (if enabled).

        Remote execution bypasses :meth:`iterator`, so the driver re-inserts
        results here to keep ``persist()`` semantics identical across
        backends.
        """
        if not self._persisted:
            return
        with self._cache_lock:
            if index in self._cache:
                return
            self._cache[index] = records
        self.context.metrics.partition_cached(
            sum(estimate_size(r) for r in records))

    # ------------------------------------------------------------------ persistence
    def persist(self) -> "RDD":
        """Keep computed partitions in memory (Spark's ``MEMORY_ONLY``)."""
        self._persisted = True
        return self

    cache = persist

    def unpersist(self) -> "RDD":
        """Drop any cached partitions (lineage stays intact)."""
        self._persisted = False
        with self._cache_lock:
            self._cache.clear()
        return self

    def is_cached(self) -> bool:
        """True when cache() has been requested."""
        return self._persisted

    # ------------------------------------------------------------------ narrow transformations
    def map(self, func: Callable) -> "RDD":
        """Apply ``func`` to every record.  Keys may change, so the partitioner is dropped."""
        return MapPartitionsRDD(self, _PerRecordAdapter(func),
                                preserves_partitioning=False)

    def map_preserving(self, func: Callable) -> "RDD":
        """Like :meth:`map` but asserts keys are unchanged, keeping the partitioner.

        The paper's per-block update functions (``FloydWarshallUpdate``,
        ``MinPlus``, ``MatMin``) never change the block key, so solvers use
        this variant to avoid spurious reshuffles — the same effect as using
        ``mapValues``/``preservesPartitioning=True`` in pySpark.
        """
        return MapPartitionsRDD(self, _PerRecordAdapter(func),
                                preserves_partitioning=True)

    def flatMap(self, func: Callable) -> "RDD":
        """Apply ``func`` returning an iterable per record and flatten the results."""
        return MapPartitionsRDD(self, _FlatMapAdapter(func), preserves_partitioning=False)

    def filter(self, predicate: Callable) -> "RDD":
        """Keep records for which ``predicate`` is true.  Partitioning is preserved."""
        return MapPartitionsRDD(self, _FilterAdapter(predicate),
                                preserves_partitioning=True)

    def mapValues(self, func: Callable) -> "RDD":
        """Apply ``func`` to the value of every (key, value) record, keeping keys and partitioning."""
        return MapPartitionsRDD(self, _MapValuesAdapter(func), preserves_partitioning=True)

    def mapPartitions(self, func: Callable, *, preserves_partitioning: bool = False) -> "RDD":
        """Apply ``func`` to each whole partition (an iterable) returning an iterable."""
        return MapPartitionsRDD(self, _WholePartitionAdapter(func),
                                preserves_partitioning=preserves_partitioning)

    def mapPartitionsWithIndex(self, func: Callable, *, preserves_partitioning: bool = False) -> "RDD":
        """Like :meth:`mapPartitions` but ``func`` also receives the partition index."""
        return MapPartitionsRDD(self, _IndexedPartitionAdapter(func),
                                preserves_partitioning=preserves_partitioning)

    def keys(self) -> "RDD":
        """RDD of the keys of key-value records."""
        return MapPartitionsRDD(self, _PerRecordAdapter(record_key),
                                preserves_partitioning=False)

    def values(self) -> "RDD":
        """RDD of the values of key-value records."""
        return MapPartitionsRDD(self, _PerRecordAdapter(_record_value),
                                preserves_partitioning=False)

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs; partitions are concatenated and the partitioner is lost."""
        return UnionRDD(self.context, [self, other])

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs of records — the all-to-all product the paper found impractical."""
        return CartesianRDD(self, other)

    # ------------------------------------------------------------------ wide transformations
    def partitionBy(self, partitioner: Partitioner | int,
                    num_partitions: int | None = None) -> "RDD":
        """Redistribute (key, value) records according to ``partitioner``.

        Accepts either a :class:`~repro.spark.partitioner.Partitioner` or an
        integer partition count (pySpark style, implying the portable hash).
        A no-op when the RDD is already partitioned by an equal partitioner.
        """
        partitioner = _as_partitioner(partitioner, num_partitions)
        if self.partitioner is not None and self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def groupByKey(self, partitioner: Partitioner | int | None = None) -> "RDD":
        """Group values by key into lists."""
        partitioner = _as_partitioner(partitioner, None, default=self._default_partitioner())
        return ShuffledRDD(self, partitioner,
                           create_combiner=lambda v: [v],
                           merge_value=lambda acc, v: acc + [v],
                           merge_combiners=lambda a, b: a + b,
                           map_side_combine=False)

    def reduceByKey(self, func: Callable, partitioner: Partitioner | int | None = None) -> "RDD":
        """Merge values per key with ``func`` (map-side combined, like Spark)."""
        partitioner = _as_partitioner(partitioner, None, default=self._default_partitioner())
        return ShuffledRDD(self, partitioner,
                           create_combiner=lambda v: v,
                           merge_value=func,
                           merge_combiners=func,
                           map_side_combine=True)

    def combineByKey(self, create_combiner: Callable, merge_value: Callable,
                     merge_combiners: Callable,
                     partitioner: Partitioner | int | None = None, *,
                     map_side_combine: bool = True) -> "RDD":
        """General per-key aggregation (the paper uses it to pair blocks via ``ListAppend``)."""
        partitioner = _as_partitioner(partitioner, None, default=self._default_partitioner())
        return ShuffledRDD(self, partitioner,
                           create_combiner=create_combiner,
                           merge_value=merge_value,
                           merge_combiners=merge_combiners,
                           map_side_combine=map_side_combine)

    def _default_partitioner(self) -> Partitioner:
        if self.partitioner is not None:
            return self.partitioner
        return PortableHashPartitioner(max(1, self.num_partitions))

    # ------------------------------------------------------------------ actions
    def collect(self) -> list:
        """Return all records to the driver (accounted as driver traffic)."""
        parts = self.context.run_job(self)
        result = [record for part in parts for record in part]
        self.context.metrics.collect_performed(sum(estimate_size(r) for r in result))
        return result

    def collectAsMap(self) -> dict:
        """Collect a pair RDD as a dictionary (last write wins for duplicate keys)."""
        return {record_key(r): r[1] for r in self.collect()}

    def count(self) -> int:
        """Number of records across all partitions."""
        parts = self.context.run_job(self, lambda records: len(records))
        return int(sum(parts))

    def countByKey(self) -> dict:
        """Dict of key -> occurrence count (driver-side)."""
        counts: dict = defaultdict(int)
        for record in self.collect():
            counts[record_key(record)] += 1
        return dict(counts)

    def take(self, n: int) -> list:
        """First n records (computing as few partitions as possible)."""
        if n <= 0:
            return []
        out: list = []
        self.prepare()
        for index in range(self.num_partitions):
            out.extend(self.iterator(index))
            if len(out) >= n:
                break
        return out[:n]

    def first(self):
        """First record; raises on an empty RDD."""
        result = self.take(1)
        if not result:
            raise ValueError("RDD is empty")
        return result[0]

    def reduce(self, func: Callable):
        """Fold all records with a binary function (driver-side)."""
        records = self.collect()
        if not records:
            raise ValueError("cannot reduce an empty RDD")
        acc = records[0]
        for record in records[1:]:
            acc = func(acc, record)
        return acc

    def foreach(self, func: Callable) -> None:
        """Apply a side-effecting function to every record."""
        for record in self.collect():
            func(record)

    def glom(self) -> list[list]:
        """Return the partition contents as a list of lists (testing/debugging aid)."""
        return self.context.run_job(self)

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        name = type(self).__name__
        return (f"{name}(id={self.id}, partitions={self.num_partitions}, "
                f"partitioner={self.partitioner!r})")


def _as_partitioner(partitioner, num_partitions, default: Partitioner | None = None) -> Partitioner:
    """Normalize the many ways callers can specify a partitioner."""
    if partitioner is None:
        if default is None:
            raise ConfigurationError("a partitioner or partition count is required")
        return default
    if isinstance(partitioner, Partitioner):
        return partitioner
    if isinstance(partitioner, int):
        return PortableHashPartitioner(partitioner)
    raise ConfigurationError(f"cannot interpret partitioner {partitioner!r}")


class ParallelCollectionRDD(RDD):
    """An RDD created from an in-memory collection via ``SparkContext.parallelize``."""

    def __init__(self, context, data: Iterable, num_partitions: int,
                 partitioner: Partitioner | None = None) -> None:
        records = list(data)
        num_partitions = max(1, int(num_partitions))
        super().__init__(context, num_partitions, partitioner)
        if partitioner is not None:
            slices: list[list] = [[] for _ in range(num_partitions)]
            for record in records:
                slices[partitioner(record_key(record))].append(record)
        else:
            # Range-split like Spark's default for parallelize.
            slices = [[] for _ in range(num_partitions)]
            for i, record in enumerate(records):
                slices[i * num_partitions // max(1, len(records))].append(record)
        self._slices = slices

    def compute_partition(self, index: int) -> list:
        """Return the materialized slice for one partition."""
        return list(self._slices[index])


class MapPartitionsRDD(RDD):
    """Narrow transformation: apply a function to every parent partition."""

    def __init__(self, parent: RDD, func: Callable[[int, list], list], *,
                 preserves_partitioning: bool) -> None:
        partitioner = parent.partitioner if preserves_partitioning else None
        super().__init__(parent.context, parent.num_partitions, partitioner, parents=[parent])
        self._func = func
        self._remote_ok: bool | None = None

    def compute_partition(self, index: int) -> list:
        """Apply the partition function to the parent's records."""
        parent = self._parents[0]
        return self._func(index, parent.iterator(index))

    def remote_payload(self, index: int):
        """Ship ``func(parent partition)`` to a worker when ``func`` is picklable.

        The parent's records are fetched on the driver (they are cache hits
        or cheap narrow computations for the solvers' hot paths) and shipped
        together with the adapter, so the worker needs no lineage — only the
        function and its input.
        """
        if self._persisted:
            with self._cache_lock:
                if index in self._cache:
                    return None  # cached: the closure path is a dict lookup
        if self._remote_ok is None:
            self._remote_ok = is_picklable(self._func)
        if not self._remote_ok:
            return None
        records = self._parents[0].iterator(index)
        return compute_map_partition, (self._func, index, records)


class UnionRDD(RDD):
    """Concatenation of several RDDs: partitions are concatenated, partitioner dropped.

    This mirrors Spark's behaviour ("each component RDD preserves its
    partitioning when in union"), which is why the paper's solvers must
    repartition after every union to avoid partition-count explosion.
    """

    def __init__(self, context, rdds: Sequence[RDD]) -> None:
        rdds = list(rdds)
        if not rdds:
            raise ConfigurationError("union requires at least one RDD")
        total = sum(r.num_partitions for r in rdds)
        super().__init__(context, total, None, parents=rdds)
        self._offsets: list[tuple[RDD, int]] = []
        for rdd in rdds:
            for p in range(rdd.num_partitions):
                self._offsets.append((rdd, p))

    def compute_partition(self, index: int) -> list:
        """Route the partition index to the owning parent."""
        rdd, parent_index = self._offsets[index]
        return list(rdd.iterator(parent_index))

    def remote_payload(self, index: int):
        """Delegate to the member RDD owning this partition."""
        rdd, parent_index = self._offsets[index]
        return rdd.remote_payload(parent_index)


class CartesianRDD(RDD):
    """All pairs of records of two RDDs; ``n_a * n_b`` output partitions.

    Every output partition reads one full partition from each parent, so each
    parent partition is read ``num_partitions(other)`` times — the all-to-all
    traffic is charged to the shuffle counters to reflect the data movement a
    real cluster would perform.
    """

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, left.num_partitions * right.num_partitions,
                         None, parents=[left, right])
        self._left = left
        self._right = right

    def compute_partition(self, index: int) -> list:
        """Pair records of one left x right partition product."""
        left_index = index // self._right.num_partitions
        right_index = index % self._right.num_partitions
        left_records = self._left.iterator(left_index)
        right_records = self._right.iterator(right_index)
        nbytes = sum(estimate_size(r) for r in left_records) + \
            sum(estimate_size(r) for r in right_records)
        executor = self.context.shuffle_manager.executor_for_partition(index)
        self.context.metrics.shuffle_write(executor, len(left_records) + len(right_records), nbytes)
        return [(a, b) for a in left_records for b in right_records]


class ShuffledRDD(RDD):
    """Wide transformation: repartition (and optionally aggregate) by key.

    The shuffle is materialized lazily, at most once, by :meth:`prepare`:
    a map stage partitions (and map-side combines) every parent partition,
    writes the buckets through the shuffle manager (charging local-storage
    spills), and the reduce side then serves partitions from those buckets.
    """

    def __init__(self, parent: RDD, partitioner: Partitioner,
                 create_combiner: Callable | None = None,
                 merge_value: Callable | None = None,
                 merge_combiners: Callable | None = None, *,
                 map_side_combine: bool = True) -> None:
        super().__init__(parent.context, partitioner.num_partitions, partitioner,
                         parents=[parent])
        self._create_combiner = create_combiner
        self._merge_value = merge_value
        self._merge_combiners = merge_combiners
        self._map_side_combine = map_side_combine and create_combiner is not None
        self._shuffle_id: int | None = None
        self._materialize_lock = threading.Lock()

    @property
    def aggregates(self) -> bool:
        """True when map-side combining is configured."""
        return self._create_combiner is not None

    def prepare(self, _visited: set[int] | None = None) -> None:
        """Run the shuffle map phase once (idempotent)."""
        if _visited is None:
            _visited = set()
        if id(self) in _visited:
            return
        super().prepare(_visited)
        self._materialize()

    def _bucket_records(self, records: list) -> dict[int, list]:
        """Partition (and optionally map-side combine) one map task's records."""
        partitioner = self.partitioner
        buckets: dict[int, list] = defaultdict(list)
        if self._map_side_combine:
            combined: dict[int, dict] = defaultdict(dict)
            for record in records:
                key = record_key(record)
                target = partitioner(key)
                bucket = combined[target]
                if key in bucket:
                    bucket[key] = self._merge_value(bucket[key], record[1])
                else:
                    bucket[key] = self._create_combiner(record[1])
            for target, kv in combined.items():
                buckets[target] = list(kv.items())
        else:
            for record in records:
                key = record_key(record)
                buckets[partitioner(key)].append(record)
        return dict(buckets)

    def _materialize(self) -> None:
        with self._materialize_lock:
            if self._shuffle_id is not None:
                return
            parent = self._parents[0]
            manager = self.context.shuffle_manager
            shuffle_id = manager.new_shuffle()
            use_remote = self.context.scheduler.supports_remote

            def make_map_task(map_index: int):
                """Bind one map partition into a shuffle-write task."""
                def task():
                    """Shuffle-write one map partition on an executor."""
                    return map_index, self._bucket_records(parent.iterator(map_index))
                return task

            def make_map_post(map_index: int):
                # Driver-side completion of a remote map task: the worker
                # computed the parent partition, the driver buckets it (and
                # backfills the parent's persistence cache).
                """Bind one map partition into a completion callback."""
                def post(records):
                    """Register one map partition's shuffle output."""
                    parent._fill_cache(map_index, records)
                    return map_index, self._bucket_records(records)
                return post

            tasks = []
            for map_index in range(parent.num_partitions):
                payload = parent.remote_payload(map_index) if use_remote else None
                if payload is None:
                    tasks.append(make_map_task(map_index))
                else:
                    fn, args = payload
                    tasks.append(RemoteTask(fn, args, post=make_map_post(map_index)))
            results = self.context.scheduler.run_stage("shuffle-map", tasks)
            for map_index, buckets in results:
                manager.write_map_output(shuffle_id, map_index, buckets)
            self._shuffle_id = shuffle_id

    def compute_partition(self, index: int) -> list:
        """Merge the shuffled buckets for one reduce partition."""
        if self._shuffle_id is None:
            self._materialize()
        raw = self.context.shuffle_manager.read_reduce_input(self._shuffle_id, index)
        if not self.aggregates:
            return list(raw)
        merged: dict = {}
        for key, value in raw:
            if key in merged:
                if self._map_side_combine:
                    merged[key] = self._merge_combiners(merged[key], value)
                else:
                    merged[key] = self._merge_value(merged[key], value)
            else:
                merged[key] = value if self._map_side_combine else self._create_combiner(value)
        return list(merged.items())

"""Broadcast variables.

The 2D Floyd-Warshall solver (Algorithm 2) broadcasts the pivot column to all
executors each iteration through Spark's ``broadcast``; the blocked solvers
avoid ``broadcast`` in favour of the shared file system because pySpark tasks
each hold their own deserialized copy of broadcast variables (Section 4.5).
Our in-process engine shares one object, but it still *accounts* the traffic a
real cluster would incur: ``num_executors * size`` bytes per broadcast.
"""

from __future__ import annotations

from repro.spark.util import estimate_size


class Broadcast:
    """A read-only value shared with all tasks."""

    _next_id = 0

    def __init__(self, value, metrics=None, num_executors: int = 1) -> None:
        self._value = value
        self._destroyed = False
        self.nbytes = estimate_size(value)
        self.id = Broadcast._next_id
        Broadcast._next_id += 1
        if metrics is not None:
            metrics.broadcast_performed(self.nbytes * max(1, num_executors))

    @property
    def value(self):
        """The broadcast value; raises after :meth:`destroy`."""
        if self._destroyed:
            raise RuntimeError("broadcast variable was destroyed")
        return self._value

    def unpersist(self) -> None:
        """No-op in-process; kept for API parity with pySpark."""

    def destroy(self) -> None:
        """Release the value; subsequent access raises."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else f"{self.nbytes} bytes"
        return f"Broadcast(id={self.id}, {state})"

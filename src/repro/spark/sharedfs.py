"""Shared persistent storage used as an out-of-band broadcast channel.

The Repeated Squaring and Blocked Collect/Broadcast solvers are *impure*: they
move data between the driver and the executors by writing NumPy blocks to a
shared file system (GPFS in the paper's cluster) instead of shuffling them
through Spark (Sections 4.2 and 4.5).  :class:`SharedFileSystem` backs that
channel with a local directory, tracks bytes written/read, and can simulate
the fault-tolerance hazard the paper describes (files missing when a task is
rescheduled) via :meth:`drop`.
"""

from __future__ import annotations

import os
import pickle
import shutil
import threading
import uuid

import numpy as np

from repro.common.errors import LineageError
from repro.spark.metrics import EngineMetrics


class SharedFileSystem:
    """A directory-backed key/value store for NumPy arrays and picklable objects."""

    def __init__(self, root: str, metrics: EngineMetrics | None = None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.metrics = metrics or EngineMetrics()
        self._lock = threading.Lock()
        self._index: dict[str, str] = {}

    # -- pickling (processes backend) --------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the directory and the name index across process boundaries.

        The metrics object and its lock stay behind; the unpickled copy binds
        to the per-process worker collector so reads performed inside a worker
        are accounted and returned to the driver as a delta (see
        :mod:`repro.spark.remote`).
        """
        with self._lock:
            return {"root": self.root, "index": dict(self._index)}

    def __setstate__(self, state: dict) -> None:
        from repro.spark.remote import worker_metrics
        self.root = state["root"]
        self.metrics = worker_metrics()
        self._lock = threading.Lock()
        self._index = dict(state["index"])

    def _path_for(self, name: str) -> str:
        safe = name.replace("/", "_").replace(" ", "_")
        return os.path.join(self.root, f"{safe}-{uuid.uuid4().hex[:8]}.blk")

    # -- write -----------------------------------------------------------------
    def write(self, name: str, value) -> str:
        """Serialize ``value`` under ``name`` and return the file path."""
        path = self._path_for(name)
        if isinstance(value, np.ndarray):
            payload = pickle.dumps(("ndarray", value), protocol=pickle.HIGHEST_PROTOCOL)
        else:
            payload = pickle.dumps(("object", value), protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as fh:
            fh.write(payload)
        with self._lock:
            self._index[name] = path
        self.metrics.sharedfs_written(len(payload))
        return path

    def write_blocks(self, prefix: str, blocks: dict) -> dict:
        """Write a dictionary of blocks, returning ``{key: path}``.

        This is the "store its blocks in a shared file system available to
        driver and executor nodes" step of Algorithms 1 and 4.
        """
        return {key: self.write(f"{prefix}-{key}", value) for key, value in blocks.items()}

    # -- read ------------------------------------------------------------------
    def read(self, name_or_path: str):
        """Read a value previously written under ``name`` or by exact path."""
        path = self._resolve(name_or_path)
        if not os.path.exists(path):
            raise LineageError(
                f"shared-filesystem object {name_or_path!r} is missing; impure solvers "
                "cannot recover such data from lineage")
        with open(path, "rb") as fh:
            payload = fh.read()
        self.metrics.sharedfs_read(len(payload))
        kind, value = pickle.loads(payload)
        return value

    def _resolve(self, name_or_path: str) -> str:
        with self._lock:
            if name_or_path in self._index:
                return self._index[name_or_path]
        return name_or_path

    def exists(self, name_or_path: str) -> bool:
        """True when a staged name (or path) is present."""
        return os.path.exists(self._resolve(name_or_path))

    # -- maintenance -------------------------------------------------------------
    def drop(self, name_or_path: str) -> None:
        """Delete a stored object (fault-injection hook for the impure-solver tests)."""
        path = self._resolve(name_or_path)
        if os.path.exists(path):
            os.remove(path)

    def clear(self) -> None:
        """Remove every object stored so far."""
        with self._lock:
            self._index.clear()
        for entry in os.listdir(self.root):
            full = os.path.join(self.root, entry)
            if os.path.isfile(full) and entry.endswith(".blk"):
                os.remove(full)

    def close(self, *, remove_root: bool = False) -> None:
        """Release per-instance resources (directory is owned by the context)."""
        if remove_root and os.path.isdir(self.root):
            shutil.rmtree(self.root, ignore_errors=True)

    def __repr__(self) -> str:
        return f"SharedFileSystem(root={self.root!r}, objects={len(self._index)})"

"""Shared persistent storage used as an out-of-band broadcast channel.

The Repeated Squaring and Blocked Collect/Broadcast solvers are *impure*: they
move data between the driver and the executors by writing NumPy blocks to a
shared file system (GPFS in the paper's cluster) instead of shuffling them
through Spark (Sections 4.2 and 4.5).  :class:`SharedFileSystem` backs that
channel with a local directory and tracks bytes written/read.

Staging integrity
-----------------
Every staged object is written atomically — serialized to a temp file,
fsynced, then renamed into place — and carries a footer (CRC32 + payload
length + magic) that readers verify, so a torn or corrupted block is detected
rather than deserialized into garbage.  The driver keeps a *bounded* lineage
registry of recently staged values (references, not copies): when a reader
finds a block missing or corrupt, the block is re-staged from that registry
(at most :attr:`restage_limit` times per name) and the read succeeds.  A
worker-process copy holds no registry; it raises
:class:`~repro.common.errors.StagingError`, which the scheduler repairs
driver-side before retrying the task.  Only when the value has left the
registry too — an explicit :meth:`drop`, or eviction past the bound — does
the failure surface as :class:`~repro.common.errors.LineageError`, the
paper's impure-solver caveat.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import threading
import uuid
import zlib
from collections import OrderedDict

import numpy as np

from repro.common.errors import LineageError, StagingError
from repro.spark.metrics import EngineMetrics

#: Footer magic marking a complete, checksummed staged block.
_MAGIC = b"APSPBLK1"
#: Footer layout: CRC32 (uint32 LE) + payload length (uint64 LE) + magic.
_FOOTER = struct.Struct("<IQ8s")

#: Default bound on the driver's staged-value lineage registry (entries).
DEFAULT_LINEAGE_LIMIT = 256
#: Default bound on re-stages per staged name before giving up.
DEFAULT_RESTAGE_LIMIT = 3


def _encode(value) -> bytes:
    """Serialize a staged value with its integrity footer."""
    if isinstance(value, np.ndarray):
        payload = pickle.dumps(("ndarray", value), protocol=pickle.HIGHEST_PROTOCOL)
    else:
        payload = pickle.dumps(("object", value), protocol=pickle.HIGHEST_PROTOCOL)
    return payload + _FOOTER.pack(zlib.crc32(payload), len(payload), _MAGIC)


def _decode(data: bytes):
    """Verify the footer and return ``(value, payload_bytes)``; raise ``ValueError``."""
    if len(data) < _FOOTER.size:
        raise ValueError("staged block truncated before footer")
    crc, length, magic = _FOOTER.unpack(data[-_FOOTER.size:])
    payload = data[:-_FOOTER.size]
    if magic != _MAGIC or length != len(payload):
        raise ValueError("staged block footer malformed")
    if zlib.crc32(payload) != crc:
        raise ValueError("staged block failed checksum verification")
    kind, value = pickle.loads(payload)
    return value, len(payload)


class SharedFileSystem:
    """A directory-backed key/value store for NumPy arrays and picklable objects."""

    def __init__(self, root: str, metrics: EngineMetrics | None = None,
                 fault_injector=None,
                 lineage_limit: int = DEFAULT_LINEAGE_LIMIT,
                 restage_limit: int = DEFAULT_RESTAGE_LIMIT) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.metrics = metrics or EngineMetrics()
        self.lineage_limit = max(0, int(lineage_limit))
        self.restage_limit = max(0, int(restage_limit))
        self._faults = fault_injector
        self._worker = False
        self._lock = threading.Lock()
        self._index: dict[str, str] = {}
        self._names: dict[str, str] = {}  # path -> name (restage lookup)
        self._lineage: OrderedDict[str, object] = OrderedDict()
        self._restage_counts: dict[str, int] = {}

    # -- pickling (processes backend) --------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the directory and the name index across process boundaries.

        The metrics object, its lock, the fault injector, and the lineage
        registry stay behind; the unpickled copy binds to the per-process
        worker collector so reads performed inside a worker are accounted and
        returned to the driver as a delta (see :mod:`repro.spark.remote`).
        Holding no lineage, a worker copy reports integrity failures as
        :class:`~repro.common.errors.StagingError` for the driver to repair.
        """
        with self._lock:
            return {"root": self.root, "index": dict(self._index)}

    def __setstate__(self, state: dict) -> None:
        from repro.spark.remote import worker_metrics
        self.root = state["root"]
        self.metrics = worker_metrics()
        self.lineage_limit = 0
        self.restage_limit = 0
        self._faults = None
        self._worker = True
        self._lock = threading.Lock()
        self._index = dict(state["index"])
        self._names = {}
        self._lineage = OrderedDict()
        self._restage_counts = {}

    def _path_for(self, name: str) -> str:
        safe = name.replace("/", "_").replace(" ", "_")
        return os.path.join(self.root, f"{safe}-{uuid.uuid4().hex[:8]}.blk")

    # -- write -----------------------------------------------------------------
    @staticmethod
    def _write_atomic(path: str, data: bytes) -> None:
        """Write-temp + fsync + rename: readers never observe a torn block."""
        tmp = f"{path}.tmp-{uuid.uuid4().hex[:8]}"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def write(self, name: str, value) -> str:
        """Serialize ``value`` under ``name`` atomically and return the file path."""
        data = _encode(value)
        path = self._path_for(name)
        self._write_atomic(path, data)
        with self._lock:
            self._index[name] = path
            self._names[path] = name
            if self.lineage_limit > 0:
                self._lineage[name] = value
                self._lineage.move_to_end(name)
                while len(self._lineage) > self.lineage_limit:
                    self._lineage.popitem(last=False)
        self.metrics.sharedfs_written(len(data) - _FOOTER.size)
        self._apply_write_faults(path)
        return path

    def _apply_write_faults(self, path: str) -> None:
        """Chaos hooks: corrupt or delete the block just staged at ``path``."""
        if self._faults is None:
            return
        write_id = self._faults.next_write_id()
        if self._faults.drop_write(write_id):
            if os.path.exists(path):
                os.remove(path)
        elif self._faults.corrupt_write(write_id):
            with open(path, "r+b") as fh:
                head = fh.read(16)
                fh.seek(0)
                fh.write(bytes(b ^ 0xFF for b in head))

    def write_blocks(self, prefix: str, blocks: dict) -> dict:
        """Write a dictionary of blocks, returning ``{key: path}``.

        This is the "store its blocks in a shared file system available to
        driver and executor nodes" step of Algorithms 1 and 4.
        """
        return {key: self.write(f"{prefix}-{key}", value) for key, value in blocks.items()}

    # -- read ------------------------------------------------------------------
    def _load(self, path: str):
        """Read+verify one staged block; raise :class:`StagingError` on any defect."""
        name = self._names.get(path, path)
        if not os.path.exists(path):
            raise StagingError(f"staged block {name!r} is missing", name=path)
        with open(path, "rb") as fh:
            data = fh.read()
        try:
            value, payload_bytes = _decode(data)
        except Exception as exc:
            raise StagingError(f"staged block {name!r} is corrupt: {exc}",
                               name=path, corrupt=True) from exc
        self.metrics.sharedfs_read(payload_bytes)
        return value

    def read(self, name_or_path: str):
        """Read a value previously written under ``name`` or by exact path.

        A missing or corrupt block is repaired in place from the driver's
        lineage registry when possible (bounded by :attr:`restage_limit`);
        worker copies raise :class:`StagingError` for the driver-side repair
        hook, and a genuinely unrecoverable block raises
        :class:`LineageError` — the paper's impure-solver fault caveat.
        """
        path = self._resolve(name_or_path)
        try:
            return self._load(path)
        except StagingError as exc:
            self.metrics.sharedfs_integrity_failure()
            if self.restage(path):
                return self._load(path)
            if self._worker:
                raise  # the driver may still hold the value in lineage
            raise LineageError(
                f"shared-filesystem object {name_or_path!r} is "
                f"{'corrupt' if exc.corrupt else 'missing'} and cannot be "
                "re-staged from lineage; impure solvers cannot recover such "
                "data") from exc

    @staticmethod
    def _footer_valid(path: str) -> bool:
        """Cheap on-disk integrity probe (footer + CRC, no unpickling)."""
        try:
            with open(path, "rb") as fh:
                data = fh.read()
            crc, length, magic = _FOOTER.unpack(data[-_FOOTER.size:])
            payload = data[:-_FOOTER.size]
            return (magic == _MAGIC and length == len(payload)
                    and zlib.crc32(payload) == crc)
        except Exception:
            return False

    def restage(self, name_or_path: str) -> bool:
        """Rewrite a lost/corrupt block from the lineage registry; True on success.

        Bounded: each name is re-staged at most :attr:`restage_limit` times —
        a block that keeps disappearing points at a real defect and must
        eventually surface instead of looping forever.  Repairs are
        serialized under the lock, and a caller that arrives after another
        reader already repaired the block sees a valid file and succeeds
        without consuming a restage attempt — N concurrent readers of one
        corrupt block cost one repair, not N.
        """
        path = self._resolve(name_or_path)
        with self._lock:
            if self._footer_valid(path):
                return True  # a concurrent reader repaired it already
            name = self._names.get(path)
            if name is None or name not in self._lineage:
                return False
            if self._restage_counts.get(name, 0) >= self.restage_limit:
                return False
            self._restage_counts[name] = self._restage_counts.get(name, 0) + 1
            value = self._lineage[name]
            self._write_atomic(path, _encode(value))
        self.metrics.sharedfs_restaged()
        return True

    def _resolve(self, name_or_path: str) -> str:
        with self._lock:
            if name_or_path in self._index:
                return self._index[name_or_path]
        return name_or_path

    def exists(self, name_or_path: str) -> bool:
        """True when a staged name (or path) is present."""
        return os.path.exists(self._resolve(name_or_path))

    # -- maintenance -------------------------------------------------------------
    def drop(self, name_or_path: str) -> None:
        """Delete a stored object *including* its lineage entry.

        This is the unrecoverable-loss hook of the impure-solver tests: after
        ``drop`` the value is gone from disk and from the registry, so a
        subsequent read surfaces :class:`LineageError` exactly as the paper
        describes.
        """
        path = self._resolve(name_or_path)
        with self._lock:
            name = self._names.get(path)
            if name is not None:
                self._lineage.pop(name, None)
        if os.path.exists(path):
            os.remove(path)

    def clear(self) -> None:
        """Remove every object stored so far."""
        with self._lock:
            self._index.clear()
            self._names.clear()
            self._lineage.clear()
            self._restage_counts.clear()
        for entry in os.listdir(self.root):
            full = os.path.join(self.root, entry)
            if os.path.isfile(full) and (entry.endswith(".blk") or ".blk.tmp-" in entry):
                os.remove(full)

    def close(self, *, remove_root: bool = False) -> None:
        """Release per-instance resources (directory is owned by the context)."""
        if remove_root and os.path.isdir(self.root):
            shutil.rmtree(self.root, ignore_errors=True)

    def __repr__(self) -> str:
        return f"SharedFileSystem(root={self.root!r}, objects={len(self._index)})"

"""The driver-side entry point of the mini-Spark engine."""

from __future__ import annotations

import os
import shutil
from typing import Callable, Iterable, Sequence

from repro.common.config import EngineConfig, default_config
from repro.spark.broadcast import Broadcast
from repro.spark.faults import FaultInjector, FaultPlan
from repro.spark.metrics import EngineMetrics
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD, ParallelCollectionRDD, UnionRDD
from repro.spark.remote import RemoteTask
from repro.spark.scheduler import TaskScheduler
from repro.spark.sharedfs import SharedFileSystem
from repro.spark.shuffle import ShuffleManager


class SparkContext:
    """Driver: creates RDDs, runs jobs, owns the shuffle manager and shared storage.

    Example
    -------
    >>> from repro.common.config import EngineConfig
    >>> with SparkContext(EngineConfig(backend="serial")) as sc:
    ...     rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
    ...     dict(rdd.reduceByKey(lambda x, y: x + y).collect())
    {'a': 4, 'b': 2}
    """

    def __init__(self, config: EngineConfig | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        self.config = config or default_config()
        self.metrics = EngineMetrics()
        self.fault_injector = FaultInjector(fault_plan)
        self.scheduler = TaskScheduler(self.config, self.metrics, self.fault_injector)
        self.scheduler.add_repair_hook(self._repair_staged_block)
        self.shuffle_manager = ShuffleManager(self.config, self.metrics)
        self._shared_fs: SharedFileSystem | None = None
        self._shared_fs_root: str | None = None
        self._owns_shared_fs = False
        self._rdd_counter = 0
        self._stopped = False

    # ------------------------------------------------------------------ lifecycle
    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        """Shut down the scheduler and release shared storage."""
        if self._stopped:
            return
        self.scheduler.shutdown()
        if self._shared_fs is not None:
            self._shared_fs.close(remove_root=self._owns_shared_fs)
        if self._owns_shared_fs and self._shared_fs_root is not None:
            # The context created this temp dir, so the context removes it —
            # nothing is written back into (or leaked through) the config.
            shutil.rmtree(self._shared_fs_root, ignore_errors=True)
            self._shared_fs_root = None
        self._stopped = True

    # ------------------------------------------------------------------ plumbing
    def _register_rdd(self, rdd: RDD) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    @property
    def default_parallelism(self) -> int:
        """Default partition count (cores x over-decomposition)."""
        return self.config.parallelism

    @property
    def total_cores(self) -> int:
        """Total executor cores of the simulated cluster."""
        return self.config.total_cores

    # ------------------------------------------------------------------ RDD creation
    def parallelize(self, data: Iterable, num_partitions: int | None = None,
                    partitioner: Partitioner | None = None) -> RDD:
        """Create an RDD from an in-memory collection.

        When ``partitioner`` is given, records must be (key, value) pairs and
        are placed according to the partitioner (like ``parallelize`` followed
        by ``partitionBy`` but without a shuffle).
        """
        if partitioner is not None:
            slices = partitioner.num_partitions
        else:
            slices = num_partitions or self.default_parallelism
        return ParallelCollectionRDD(self, data, slices, partitioner)

    def union(self, rdds: Sequence[RDD]) -> RDD:
        """Union of several RDDs (partition lists concatenate)."""
        return UnionRDD(self, rdds)

    def broadcast(self, value) -> Broadcast:
        """Create a broadcast variable, accounting driver-to-executor traffic."""
        return Broadcast(value, metrics=self.metrics, num_executors=self.config.num_executors)

    # ------------------------------------------------------------------ shared storage
    @property
    def shared_fs(self) -> SharedFileSystem:
        """The shared persistent storage used by the impure solvers (lazily created).

        When the config names no directory, the context creates a private
        temp dir, owns it for its lifetime, and removes it on :meth:`stop` —
        the (possibly shared) config object is never mutated.
        """
        if self._shared_fs is None:
            self._owns_shared_fs = self.config.shared_fs_dir is None
            self._shared_fs_root = self.config.resolve_shared_fs_dir()
            self._shared_fs = SharedFileSystem(
                os.path.join(self._shared_fs_root, "sharedfs"), self.metrics,
                fault_injector=self.fault_injector,
                lineage_limit=self.config.staging_lineage_limit,
                restage_limit=self.config.staging_restage_limit)
        return self._shared_fs

    def _repair_staged_block(self, exc) -> bool:
        """Scheduler repair hook: re-stage a block a worker reported lost.

        Worker processes hold no lineage registry, so a missing/corrupt
        staged block surfaces as a :class:`~repro.common.errors.StagingError`
        on the driver; this hook rewrites the block from the driver's bounded
        registry so the retried task finds it intact.
        """
        if self._shared_fs is None or getattr(exc, "name", None) is None:
            return False
        return self._shared_fs.restage(exc.name)

    def clear_shared_fs(self) -> None:
        """Drop every staged shared-filesystem object (if any were created).

        A long-lived context serving many solves would otherwise accumulate
        the impure solvers' staged ``.blk`` files until :meth:`stop`; callers
        that know a job boundary (e.g. the engine between jobs) use this to
        keep disk usage bounded to one solve.
        """
        if self._shared_fs is not None:
            self._shared_fs.clear()

    # ------------------------------------------------------------------ job execution
    def run_job(self, rdd: RDD, func: Callable[[list], object] | None = None) -> list:
        """Run one task per partition of ``rdd`` and return the per-partition results.

        ``func`` maps a partition's record list to the task result (defaults
        to the identity, i.e. return the records).
        """
        if self._stopped:
            raise RuntimeError("SparkContext has been stopped")
        rdd.prepare()
        func = func or (lambda records: records)
        use_remote = self.scheduler.supports_remote

        def make_task(index: int):
            """Bind one partition index into a scheduler task."""
            def task():
                """Compute one partition on an executor."""
                return func(rdd.iterator(index))
            return task

        def make_post(index: int):
            # Driver-side completion of a remote task: backfill the RDD's
            # persistence cache, then apply the (arbitrary, driver-only)
            # result function.
            """Bind one partition index into a result callback."""
            def post(records):
                """Store one partition's result on the driver."""
                rdd._fill_cache(index, records)
                return func(records)
            return post

        tasks = []
        for index in range(rdd.num_partitions):
            payload = rdd.remote_payload(index) if use_remote else None
            if payload is None:
                tasks.append(make_task(index))
            else:
                fn, args = payload
                tasks.append(RemoteTask(fn, args, post=make_post(index)))
        return self.scheduler.run_stage("result", tasks)

"""Deterministic fault injection for the engine.

Spark's headline feature is lineage-based fault tolerance; the paper
distinguishes *pure* solvers (recoverable) from *impure* ones (side effects
through the shared file system break recoverability).  The fault injector
lets tests and the ``apspark chaos`` driver schedule four kinds of fault —
plain task failures, worker-process crashes, straggler delays (which trip the
soft timeout and trigger speculation), and corrupted/lost staged blocks — and
verify that pure lineage recomputes correctly while impure channels recover
through the bounded re-stage path or surface
:class:`~repro.common.errors.LineageError`.

Every decision is a pure function of ``(plan, task id or write index)``: the
rate draws are seeded per-index through :func:`~repro.common.rng.derive_seed`
rather than consumed from a shared stream, so the schedule is identical no
matter how the thread pool interleaves task startup — the property the
``apspark chaos --seed S`` reproducibility contract rests on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, FaultInjectedError
from repro.common.rng import derive_seed, make_rng


@dataclass
class FaultPlan:
    """Describes which task executions and staged writes should fail, and how.

    Parameters
    ----------
    fail_task_indices:
        Global task-launch indices (0-based, counted across the whole context
        lifetime) that should raise a plain
        :class:`~repro.common.errors.FaultInjectedError` on their *first*
        attempt.
    crash_task_indices:
        Task indices whose first attempt should die as a *worker crash*: on
        the ``processes`` backend the scheduler kills a real worker process
        (producing a genuine ``BrokenProcessPool``); on in-process backends a
        :class:`~repro.common.errors.WorkerCrashError` is raised instead.
    delay_task_indices:
        Task indices whose first execution sleeps ``delay_seconds`` before
        running — a straggler.  With speculation enabled the soft timeout
        fires and a (non-delayed) copy races the original.
    delay_seconds:
        Straggler sleep duration.
    corrupt_write_indices:
        Shared-filesystem write indices (0-based, counted per context) whose
        on-disk bytes are corrupted after a successful write — readers detect
        the checksum mismatch and trigger the re-stage path.
    drop_write_indices:
        Write indices whose file is deleted right after the write — readers
        find it missing (the paper's "files missing when a task is
        rescheduled" hazard).
    failure_rate / crash_rate:
        Probability of failing/crashing any task's first attempt (checked
        after the explicit indices), decided per task id deterministically.
        Retries are never re-failed so runs terminate.
    max_failures:
        Upper bound on the total number of injected task faults of all kinds.
    """

    fail_task_indices: frozenset[int] = frozenset()
    crash_task_indices: frozenset[int] = frozenset()
    delay_task_indices: frozenset[int] = frozenset()
    delay_seconds: float = 0.05
    corrupt_write_indices: frozenset[int] = frozenset()
    drop_write_indices: frozenset[int] = frozenset()
    failure_rate: float = 0.0
    crash_rate: float = 0.0
    max_failures: int = 1 << 30
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of ints for the index sets (tests pass sets,
        # the chaos driver passes sorted lists) but store frozensets so the
        # plan is safely shareable across threads.
        for name in ("fail_task_indices", "crash_task_indices",
                     "delay_task_indices", "corrupt_write_indices",
                     "drop_write_indices"):
            value = getattr(self, name)
            if not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(int(v) for v in value))
        for name in ("failure_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {rate}")
        if self.delay_seconds < 0.0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")

    def is_empty(self) -> bool:
        """True when this plan injects nothing (the fault-free fast path)."""
        return (not self.fail_task_indices and not self.crash_task_indices
                and not self.delay_task_indices and not self.corrupt_write_indices
                and not self.drop_write_indices
                and self.failure_rate <= 0.0 and self.crash_rate <= 0.0)


def _rate_hit(seed: int, kind: int, index: int, rate: float) -> bool:
    """Deterministic per-index Bernoulli draw (order-independent)."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return bool(make_rng(derive_seed(seed, kind, index)).random() < rate)


@dataclass
class _Counters:
    """Mutable injection tallies, kept separate so ``FaultPlan`` stays shareable."""

    injected: int = 0
    crashes: int = 0
    delays: int = 0
    corrupted_writes: int = 0
    dropped_writes: int = 0
    failed_once: set[int] = field(default_factory=set)


class FaultInjector:
    """Runtime hook consulted by the scheduler and shared fs before each action."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._lock = threading.Lock()
        self._task_counter = 0
        self._write_counter = 0
        self._c = _Counters()

    @property
    def injected_failures(self) -> int:
        """Number of task faults injected so far (plain failures + crashes)."""
        return self._c.injected

    @property
    def injected_crashes(self) -> int:
        """Number of worker crashes injected so far."""
        return self._c.crashes

    @property
    def injected_delays(self) -> int:
        """Number of straggler delays injected so far."""
        return self._c.delays

    @property
    def injected_write_faults(self) -> int:
        """Number of staged writes corrupted or dropped so far."""
        return self._c.corrupted_writes + self._c.dropped_writes

    def counters(self) -> dict:
        """Snapshot of the injection tallies (for chaos-run reconciliation)."""
        with self._lock:
            return {
                "injected_failures": self._c.injected,
                "injected_crashes": self._c.crashes,
                "injected_delays": self._c.delays,
                "corrupted_writes": self._c.corrupted_writes,
                "dropped_writes": self._c.dropped_writes,
            }

    def next_task_id(self) -> int:
        """Allocate a unique task id for fault bookkeeping."""
        with self._lock:
            tid = self._task_counter
            self._task_counter += 1
            return tid

    # -- task faults -----------------------------------------------------------
    def maybe_fail(self, task_id: int, attempt: int) -> None:
        """Raise :class:`FaultInjectedError` if this attempt should fail."""
        if attempt > 0:
            return  # only first attempts fail, so retried work always completes
        plan = self.plan
        with self._lock:
            if self._c.injected >= plan.max_failures:
                return
            should_fail = task_id in plan.fail_task_indices
            if not should_fail and task_id not in self._c.failed_once:
                should_fail = _rate_hit(plan.seed, 1, task_id, plan.failure_rate)
            if should_fail:
                self._c.injected += 1
                self._c.failed_once.add(task_id)
        if should_fail:
            raise FaultInjectedError(f"injected failure in task {task_id}", task_id=task_id)

    def crash_requested(self, task_id: int, attempt: int) -> bool:
        """True when this attempt should die as a worker crash (first attempts only)."""
        if attempt > 0:
            return False
        plan = self.plan
        with self._lock:
            if self._c.injected >= plan.max_failures:
                return False
            should_crash = task_id in plan.crash_task_indices
            if not should_crash and task_id not in self._c.failed_once:
                should_crash = _rate_hit(plan.seed, 2, task_id, plan.crash_rate)
            if should_crash:
                self._c.injected += 1
                self._c.crashes += 1
                self._c.failed_once.add(task_id)
            return should_crash

    def delay_requested(self, task_id: int, attempt: int) -> float:
        """Straggler sleep (seconds) for this attempt; 0.0 for none.

        Only the first execution of a task is delayed, so the speculative
        copy (same task id, same attempt, second execution) runs at full
        speed and wins the race.
        """
        if attempt > 0:
            return 0.0
        plan = self.plan
        if task_id not in plan.delay_task_indices:
            return 0.0
        with self._lock:
            key = -(task_id + 1)  # distinct namespace from failed_once task ids
            if key in self._c.failed_once:
                return 0.0
            self._c.failed_once.add(key)
            self._c.delays += 1
        return max(0.0, float(plan.delay_seconds))

    # -- staging faults --------------------------------------------------------
    def next_write_id(self) -> int:
        """Allocate a unique staged-write index for fault bookkeeping."""
        with self._lock:
            wid = self._write_counter
            self._write_counter += 1
            return wid

    def corrupt_write(self, write_id: int) -> bool:
        """True when this staged write's on-disk bytes should be corrupted."""
        hit = write_id in self.plan.corrupt_write_indices
        if hit:
            with self._lock:
                self._c.corrupted_writes += 1
        return hit

    def drop_write(self, write_id: int) -> bool:
        """True when this staged write's file should be deleted after writing."""
        hit = write_id in self.plan.drop_write_indices
        if hit:
            with self._lock:
                self._c.dropped_writes += 1
        return hit

"""Deterministic fault injection for the engine.

Spark's headline feature is lineage-based fault tolerance; the paper
distinguishes *pure* solvers (recoverable) from *impure* ones (side effects
through the shared file system break recoverability).  The fault injector
lets tests kill the N-th task (or a random task) and verify that pure lineage
recomputes correctly while impure channels surface
:class:`~repro.common.errors.LineageError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.common.errors import FaultInjectedError
from repro.common.rng import make_rng


@dataclass
class FaultPlan:
    """Describes which task executions should fail.

    Parameters
    ----------
    fail_task_indices:
        Global task-launch indices (0-based, counted across the whole context
        lifetime) that should raise on their *first* attempt.
    failure_rate:
        Probability of failing any task attempt (checked after the explicit
        indices).  Retries are never re-failed so runs terminate.
    max_failures:
        Upper bound on the total number of injected failures.
    """

    fail_task_indices: frozenset[int] = frozenset()
    failure_rate: float = 0.0
    max_failures: int = 1 << 30
    seed: int = 0


class FaultInjector:
    """Runtime hook consulted by the scheduler before executing each task attempt."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._rng = make_rng(self.plan.seed)
        self._lock = threading.Lock()
        self._task_counter = 0
        self._injected = 0
        self._failed_once: set[int] = set()

    @property
    def injected_failures(self) -> int:
        """Number of failures injected so far."""
        return self._injected

    def next_task_id(self) -> int:
        """Allocate a unique task id for fault bookkeeping."""
        with self._lock:
            tid = self._task_counter
            self._task_counter += 1
            return tid

    def maybe_fail(self, task_id: int, attempt: int) -> None:
        """Raise :class:`FaultInjectedError` if this attempt should fail."""
        if attempt > 0:
            return  # only first attempts fail, so retried work always completes
        with self._lock:
            if self._injected >= self.plan.max_failures:
                return
            should_fail = task_id in self.plan.fail_task_indices
            if not should_fail and self.plan.failure_rate > 0.0 and task_id not in self._failed_once:
                should_fail = bool(self._rng.random() < self.plan.failure_rate)
            if should_fail:
                self._injected += 1
                self._failed_once.add(task_id)
        if should_fail:
            raise FaultInjectedError(f"injected failure in task {task_id}", task_id=task_id)

"""Shuffle manager: data movement between stages, staged through local storage.

In Spark every wide transformation writes its map-side output to the local
disks of the executors before the reduce side fetches it; those spills are
kept for fault tolerance, so their volume accumulates over the lifetime of an
application.  Section 5.2 of the paper shows this is exactly what breaks the
Blocked In-Memory solver for small block sizes: the per-iteration
``partitionBy`` shuffles exceed the 1 TB of local SSD per node.  The shuffle
manager reproduces that mechanism: every map-side write is charged against the
executor that produced it and checked against the configured capacity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.common.config import EngineConfig
from repro.common.errors import StorageExhaustedError
from repro.spark.metrics import EngineMetrics
from repro.spark.util import estimate_size


@dataclass
class MapOutput:
    """Map-side output of one task: records grouped by reduce partition."""

    map_partition: int
    executor: int
    buckets: dict[int, list]
    records: int
    nbytes: int


class ShuffleManager:
    """Tracks shuffle writes, enforces local-storage capacity, serves reduce reads."""

    def __init__(self, config: EngineConfig, metrics: EngineMetrics) -> None:
        self.config = config
        self.metrics = metrics
        self._lock = threading.Lock()
        self._next_shuffle_id = 0
        self._outputs: dict[int, list[MapOutput]] = {}

    def new_shuffle(self) -> int:
        """Register a new shuffle and return its id."""
        with self._lock:
            shuffle_id = self._next_shuffle_id
            self._next_shuffle_id += 1
            self._outputs[shuffle_id] = []
        self.metrics.shuffle_started()
        return shuffle_id

    def executor_for_partition(self, partition_index: int) -> int:
        """Deterministic partition -> executor placement (round robin)."""
        return partition_index % max(1, self.config.num_executors)

    def write_map_output(self, shuffle_id: int, map_partition: int,
                         buckets: dict[int, list]) -> MapOutput:
        """Record the map-side output of one task and charge its spill volume.

        Raises :class:`~repro.common.errors.StorageExhaustedError` when the
        cumulative spill volume on the producing executor exceeds the
        configured per-node local storage.
        """
        records = sum(len(v) for v in buckets.values())
        nbytes = sum(estimate_size(rec) for v in buckets.values() for rec in v)
        executor = self.executor_for_partition(map_partition)
        output = MapOutput(map_partition=map_partition, executor=executor,
                           buckets=buckets, records=records, nbytes=nbytes)
        if self.config.track_spills:
            self.metrics.shuffle_write(executor, records, nbytes)
            capacity = self.config.local_storage_bytes
            if capacity is not None:
                used = self.metrics.spilled_bytes_per_executor.get(executor, 0)
                if used > capacity:
                    raise StorageExhaustedError(
                        f"executor {executor} exceeded local storage capacity: "
                        f"{used} bytes spilled > {capacity} bytes available",
                        node=executor, required_bytes=used, capacity_bytes=capacity)
        with self._lock:
            self._outputs[shuffle_id].append(output)
        return output

    def read_reduce_input(self, shuffle_id: int, reduce_partition: int) -> list:
        """Return all records destined for ``reduce_partition``, in map-task order."""
        with self._lock:
            outputs = list(self._outputs.get(shuffle_id, ()))
        records: list = []
        for output in sorted(outputs, key=lambda o: o.map_partition):
            records.extend(output.buckets.get(reduce_partition, ()))
        return records

    def release(self, shuffle_id: int) -> None:
        """Drop in-memory shuffle data (spill accounting is intentionally kept)."""
        with self._lock:
            self._outputs.pop(shuffle_id, None)

    def spilled_bytes(self) -> dict[int, int]:
        """Cumulative spilled bytes per executor."""
        return dict(self.metrics.spilled_bytes_per_executor)

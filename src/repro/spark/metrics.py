"""Engine metrics: the observable quantities the paper's analysis hinges on.

The qualitative claims of Sections 4 and 5 — Repeated Squaring's all-to-all
``cartesian`` shuffle, the Blocked In-Memory solver's shuffle spills exceeding
local SSD capacity, the Collect/Broadcast solver trading shuffles for driver
collects and shared-filesystem traffic — are all statements about measurable
data movement.  :class:`EngineMetrics` records those quantities per run so
tests can assert them and the cost model can consume them.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass


@dataclass
class StageRecord:
    """One executed stage: its kind, task count, and wall-clock duration."""

    stage_id: int
    kind: str
    num_tasks: int
    duration: float


class EngineMetrics:
    """Thread-safe accumulator of engine counters.

    Attributes are grouped by subsystem:

    * tasks/stages — ``tasks_launched``, ``tasks_failed``, ``tasks_retried``, ``stages``
    * fault tolerance — ``tasks_recomputed``, ``worker_restarts``,
      ``speculative_launched``/``speculative_wins``, ``task_timeouts``,
      ``sharedfs_restages``/``sharedfs_integrity_failures``
    * shuffle — ``shuffle_count``, ``shuffle_records``, ``shuffle_bytes``,
      ``spilled_bytes_per_executor`` (cumulative local-storage usage per node)
    * driver traffic — ``collect_count``, ``collect_bytes``, ``broadcast_count``,
      ``broadcast_bytes``
    * shared filesystem — ``sharedfs_files_written``, ``sharedfs_bytes_written``,
      ``sharedfs_bytes_read``
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        with getattr(self, "_lock", threading.Lock()):
            self.tasks_launched = 0
            self.tasks_failed = 0
            self.tasks_retried = 0
            self.tasks_recomputed = 0
            self.worker_restarts = 0
            self.speculative_launched = 0
            self.speculative_wins = 0
            self.task_timeouts = 0
            self.stages: list[StageRecord] = []
            self.shuffle_count = 0
            self.shuffle_records = 0
            self.shuffle_bytes = 0
            self.spilled_bytes_per_executor: dict[int, int] = defaultdict(int)
            self.collect_count = 0
            self.collect_bytes = 0
            self.broadcast_count = 0
            self.broadcast_bytes = 0
            self.sharedfs_files_written = 0
            self.sharedfs_bytes_written = 0
            self.sharedfs_bytes_read = 0
            self.sharedfs_restages = 0
            self.sharedfs_integrity_failures = 0
            self.cached_partitions = 0
            self.cached_bytes = 0

    # -- task / stage accounting -------------------------------------------------
    def task_launched(self, count: int = 1) -> None:
        """Count one launched task."""
        with self._lock:
            self.tasks_launched += count

    def task_failed(self) -> None:
        """Count one failed task."""
        with self._lock:
            self.tasks_failed += 1

    def task_retried(self) -> None:
        """Count one task retry."""
        with self._lock:
            self.tasks_retried += 1

    def task_recomputed(self) -> None:
        """Count one lineage recomputation (retry caused by lost work, not an injected fault)."""
        with self._lock:
            self.tasks_recomputed += 1

    def worker_restarted(self) -> None:
        """Count one worker-pool rebuild after a worker-process death."""
        with self._lock:
            self.worker_restarts += 1

    def speculation_launched(self) -> None:
        """Count one speculative task copy launched after a soft timeout."""
        with self._lock:
            self.speculative_launched += 1

    def speculation_won(self) -> None:
        """Count one speculative copy finishing before its straggling original."""
        with self._lock:
            self.speculative_wins += 1

    def task_timed_out(self) -> None:
        """Count one hard-deadline expiry (stage failed fast)."""
        with self._lock:
            self.task_timeouts += 1

    def stage_finished(self, stage_id: int, kind: str, num_tasks: int, duration: float) -> None:
        """Record one finished stage and its wall time."""
        with self._lock:
            self.stages.append(StageRecord(stage_id, kind, num_tasks, duration))

    # -- shuffle accounting --------------------------------------------------------
    def shuffle_started(self) -> None:
        """Count the start of one shuffle."""
        with self._lock:
            self.shuffle_count += 1

    def shuffle_write(self, executor: int, records: int, nbytes: int) -> None:
        """Record shuffle records/bytes written by an executor."""
        with self._lock:
            self.shuffle_records += records
            self.shuffle_bytes += nbytes
            self.spilled_bytes_per_executor[executor] += nbytes

    @property
    def total_spilled_bytes(self) -> int:
        """Shuffle bytes spilled, summed over executors."""
        with self._lock:
            return sum(self.spilled_bytes_per_executor.values())

    def max_spilled_bytes(self) -> int:
        """Largest cumulative spill on any single executor (the capacity that matters)."""
        with self._lock:
            return max(self.spilled_bytes_per_executor.values(), default=0)

    # -- driver traffic ------------------------------------------------------------
    def collect_performed(self, nbytes: int) -> None:
        """Record one driver collect of the given size."""
        with self._lock:
            self.collect_count += 1
            self.collect_bytes += nbytes

    def broadcast_performed(self, nbytes: int) -> None:
        """Record one broadcast of the given size."""
        with self._lock:
            self.broadcast_count += 1
            self.broadcast_bytes += nbytes

    # -- shared filesystem ---------------------------------------------------------
    def sharedfs_written(self, nbytes: int) -> None:
        """Record bytes written to the shared file system."""
        with self._lock:
            self.sharedfs_files_written += 1
            self.sharedfs_bytes_written += nbytes

    def sharedfs_read(self, nbytes: int) -> None:
        """Record bytes read from the shared file system."""
        with self._lock:
            self.sharedfs_bytes_read += nbytes

    def sharedfs_restaged(self) -> None:
        """Count one staged block rewritten from the driver's lineage registry."""
        with self._lock:
            self.sharedfs_restages += 1

    def sharedfs_integrity_failure(self) -> None:
        """Count one staged block found missing or corrupt by a reader."""
        with self._lock:
            self.sharedfs_integrity_failures += 1

    # -- caching ---------------------------------------------------------------------
    def partition_cached(self, nbytes: int) -> None:
        """Record one cached partition of the given size."""
        with self._lock:
            self.cached_partitions += 1
            self.cached_bytes += nbytes

    def merge_delta(self, delta: dict) -> None:
        """Fold a counter delta (from :func:`metrics_delta`) into this accumulator.

        Used by the ``processes`` backend: a worker process accumulates
        counters (e.g. shared-filesystem reads) against its own collector and
        ships the delta back with the task result; the driver merges it here
        so per-solve metric deltas stay accurate across process boundaries.
        Only counters this object already knows are merged; ``num_stages`` is
        derived and therefore skipped.
        """
        with self._lock:
            for key, value in delta.items():
                if key == "spilled_bytes_per_executor" and isinstance(value, dict):
                    for executor, nbytes in value.items():
                        self.spilled_bytes_per_executor[int(executor)] += nbytes
                elif key == "num_stages":
                    continue
                elif (isinstance(value, (int, float)) and not isinstance(value, bool)
                        and isinstance(getattr(self, key, None), (int, float))):
                    setattr(self, key, getattr(self, key) + value)

    def as_dict(self) -> dict:
        """Snapshot of all counters as a plain dictionary (for reports and tests)."""
        with self._lock:
            return {
                "tasks_launched": self.tasks_launched,
                "tasks_failed": self.tasks_failed,
                "tasks_retried": self.tasks_retried,
                "tasks_recomputed": self.tasks_recomputed,
                "worker_restarts": self.worker_restarts,
                "speculative_launched": self.speculative_launched,
                "speculative_wins": self.speculative_wins,
                "task_timeouts": self.task_timeouts,
                "num_stages": len(self.stages),
                "shuffle_count": self.shuffle_count,
                "shuffle_records": self.shuffle_records,
                "shuffle_bytes": self.shuffle_bytes,
                "spilled_bytes_per_executor": dict(self.spilled_bytes_per_executor),
                "collect_count": self.collect_count,
                "collect_bytes": self.collect_bytes,
                "broadcast_count": self.broadcast_count,
                "broadcast_bytes": self.broadcast_bytes,
                "sharedfs_files_written": self.sharedfs_files_written,
                "sharedfs_bytes_written": self.sharedfs_bytes_written,
                "sharedfs_bytes_read": self.sharedfs_bytes_read,
                "sharedfs_restages": self.sharedfs_restages,
                "sharedfs_integrity_failures": self.sharedfs_integrity_failures,
                "cached_partitions": self.cached_partitions,
                "cached_bytes": self.cached_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.as_dict()
        body = ", ".join(f"{k}={v}" for k, v in d.items() if not isinstance(v, dict))
        return f"EngineMetrics({body})"


def quantile(values, q: float) -> float:
    """Linear-interpolated quantile of a sequence (``q`` in ``[0, 1]``).

    The serving analytics' latency percentiles (p50/p95/p99) come through
    here; pure-Python on purpose so the metrics layer stays dependency-free
    and the result is exact for the small/medium sample counts a serving
    session accumulates.  Raises ``ValueError`` on an empty sequence or an
    out-of-range ``q``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("quantile of an empty sequence")
    pos = (len(ordered) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def latency_summary(values, percentiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict:
    """Count/mean/max plus the requested percentiles of a latency sample.

    Returns ``{"count", "mean_s", "max_s", "p50_s", "p95_s", "p99_s"}``
    (percentile keys follow ``p<percent>_s``); all timing values are 0.0
    for an empty sample so reports can render before the first query lands.
    """
    ordered = sorted(float(v) for v in values)
    summary: dict = {"count": len(ordered)}
    if not ordered:
        summary["mean_s"] = summary["max_s"] = 0.0
        for p in percentiles:
            summary[f"p{int(round(p * 100))}_s"] = 0.0
        return summary
    summary["mean_s"] = sum(ordered) / len(ordered)
    summary["max_s"] = ordered[-1]
    for p in percentiles:
        summary[f"p{int(round(p * 100))}_s"] = quantile(ordered, p)
    return summary


def metrics_delta(before: dict, after: dict) -> dict:
    """Counter-wise difference of two :meth:`EngineMetrics.as_dict` snapshots.

    A long-lived context (one :class:`~repro.core.engine.APSPEngine` session)
    accumulates counters across many solves; subtracting the snapshot taken
    when a solve started attributes data movement to that solve alone.
    Numeric counters subtract; nested dicts (per-executor spills) subtract
    key-wise; anything else is taken from ``after`` verbatim.
    """
    delta: dict = {}
    for key, after_value in after.items():
        before_value = before.get(key)
        if isinstance(after_value, (int, float)) and isinstance(before_value, (int, float)):
            delta[key] = after_value - before_value
        elif isinstance(after_value, dict):
            prior = before_value if isinstance(before_value, dict) else {}
            delta[key] = {k: v - prior.get(k, 0) for k, v in after_value.items()
                          if v - prior.get(k, 0)}
        else:
            delta[key] = after_value
    return delta

"""Stage/task scheduler with pluggable execution backends and task retry.

Stages are lists of independent tasks (one per partition).  The scheduler runs
them serially, on a thread pool, or — for tasks carrying a picklable payload
(:class:`~repro.spark.remote.RemoteTask`) — on a process pool, consults the
fault injector before every attempt, retries failed attempts (lineage-based
recomputation happens simply by re-running the task closure), and records
stage timings in the metrics.

Backend execution model
-----------------------
``serial``
    Tasks run one by one on the driver thread.
``threads``
    Tasks of a stage run concurrently on a thread pool; NumPy kernels release
    the GIL so the block math genuinely parallelizes.
``processes``
    A coordination thread per task drives execution; tasks that are
    :class:`RemoteTask` payloads are shipped to a lazily-created
    ``ProcessPoolExecutor`` (true multi-core, no GIL), and their worker-side
    metric deltas are merged back into the driver's counters.  Plain closure
    tasks keep running on the coordination threads, so solvers that cannot
    express picklable payloads remain correct.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.common.config import EngineConfig
from repro.common.errors import FaultInjectedError, SolverError
from repro.spark.faults import FaultInjector
from repro.spark.metrics import EngineMetrics
from repro.spark.remote import RemoteTask, pack_payload, run_packed

#: Maximum attempts per task (Spark's default ``spark.task.maxFailures`` is 4).
MAX_TASK_ATTEMPTS = 4


def _mp_context():
    """A start method that is safe in a threaded driver (never plain fork)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


def _sanitize_main_for_spawn() -> None:
    """Drop a pseudo ``__main__.__file__`` (e.g. ``<stdin>``) before spawning.

    When the driver is fed from a pipe or heredoc, CPython's spawn/forkserver
    child preparation would try to re-run ``__main__`` from the non-existent
    path ``<stdin>`` and kill every worker with ``BrokenProcessPool``.  Our
    remote payloads are always importable module-level callables, so the
    child never needs ``__main__`` re-executed from such a pseudo-file.
    """
    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if main_file is not None and os.path.basename(main_file).startswith("<"):
        main.__file__ = None


class TaskScheduler:
    """Runs stages of independent tasks on the configured backend."""

    def __init__(self, config: EngineConfig, metrics: EngineMetrics,
                 fault_injector: FaultInjector | None = None) -> None:
        self.config = config
        self.metrics = metrics
        self.faults = fault_injector or FaultInjector()
        self._stage_counter = 0
        self._pool: ThreadPoolExecutor | None = None
        self._proc_pool: ProcessPoolExecutor | None = None
        self._proc_pool_lock = threading.Lock()
        if config.backend in ("threads", "processes"):
            self._pool = ThreadPoolExecutor(max_workers=max(1, config.total_cores),
                                            thread_name_prefix="apspark-exec")

    # ------------------------------------------------------------------
    @property
    def supports_remote(self) -> bool:
        """True when :class:`RemoteTask` payloads are shipped to worker processes."""
        return self.config.backend == "processes"

    def _process_pool(self) -> ProcessPoolExecutor:
        """The worker-process pool, created lazily on first remote dispatch.

        Worker startup (forkserver/spawn imports the package) is paid once per
        scheduler; the pool then lives until :meth:`shutdown`, exactly like
        the thread pool — the context owns both lifecycles.
        """
        with self._proc_pool_lock:
            if self._proc_pool is None:
                _sanitize_main_for_spawn()
                workers = max(1, min(self.config.total_cores,
                                     max(2, os.cpu_count() or 1)))
                self._proc_pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=_mp_context())
            return self._proc_pool

    # ------------------------------------------------------------------
    def _invoke(self, task: Callable[[], object]) -> object:
        """Execute one task attempt on the right executor for this backend.

        A :class:`RemoteTask` whose full payload (function *and* arguments)
        pickles is shipped to the process pool; anything else — including a
        payload whose records turn out to be unshippable — runs in-process,
        so the fallback guarantee holds at the data level, not just for the
        function.  Retried attempts re-ship the same payload: its input was
        materialized on the driver when the stage was built, so replaying it
        is exactly the lineage recomputation of this simulator.
        """
        if isinstance(task, RemoteTask) and self.supports_remote:
            payload = pack_payload(task.fn, task.args)
            if payload is not None:
                future = self._process_pool().submit(run_packed, payload)
                result, delta = future.result()
                self.metrics.merge_delta(delta)
                return task.finish(result)
        return task()

    def _run_task(self, task: Callable[[], object]) -> object:
        """Run a single task with fault injection and retry."""
        task_id = self.faults.next_task_id()
        last_error: Exception | None = None
        for attempt in range(MAX_TASK_ATTEMPTS):
            try:
                self.metrics.task_launched()
                if attempt > 0:
                    self.metrics.task_retried()
                self.faults.maybe_fail(task_id, attempt)
                return self._invoke(task)
            except FaultInjectedError as exc:
                self.metrics.task_failed()
                last_error = exc
                continue
        raise SolverError(
            f"task {task_id} failed {MAX_TASK_ATTEMPTS} times") from last_error

    @staticmethod
    def _gather(futures: Sequence[Future]) -> list:
        """Collect every future's result, then re-raise the first failure.

        Waiting on *all* futures before raising keeps the stage
        exception-safe: sibling tasks finish (or fail) and record their
        metrics, no work is left running unobserved in the pool, and the
        executor is immediately reusable for the next stage.
        """
        results: list = []
        first_error: Exception | None = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 — re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def run_stage(self, kind: str, tasks: Sequence[Callable[[], object]]) -> list:
        """Run all ``tasks`` and return their results in order."""
        self._stage_counter += 1
        stage_id = self._stage_counter
        start = time.perf_counter()
        try:
            if not tasks:
                results: list = []
            elif self._pool is not None and len(tasks) > 1:
                futures = [self._pool.submit(self._run_task, task) for task in tasks]
                results = self._gather(futures)
            else:
                results = [self._run_task(task) for task in tasks]
        finally:
            # Record the stage even when it fails so metric snapshots taken
            # around a failing solve stay internally consistent.
            duration = time.perf_counter() - start
            self.metrics.stage_finished(stage_id, kind, len(tasks), duration)
        return results

    def shutdown(self) -> None:
        """Stop worker pools and release scheduler resources."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._proc_pool_lock:
            if self._proc_pool is not None:
                self._proc_pool.shutdown(wait=True)
                self._proc_pool = None

"""Stage/task scheduler with pluggable execution backends and task retry.

Stages are lists of independent tasks (one per partition).  The scheduler runs
them serially or on a thread pool, consults the fault injector before every
attempt, retries failed attempts (lineage-based recomputation happens simply by
re-running the task closure), and records stage timings in the metrics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.common.config import EngineConfig
from repro.common.errors import FaultInjectedError, SolverError
from repro.spark.faults import FaultInjector
from repro.spark.metrics import EngineMetrics

#: Maximum attempts per task (Spark's default ``spark.task.maxFailures`` is 4).
MAX_TASK_ATTEMPTS = 4


class TaskScheduler:
    """Runs stages of independent tasks on the configured backend."""

    def __init__(self, config: EngineConfig, metrics: EngineMetrics,
                 fault_injector: FaultInjector | None = None) -> None:
        self.config = config
        self.metrics = metrics
        self.faults = fault_injector or FaultInjector()
        self._stage_counter = 0
        self._pool: ThreadPoolExecutor | None = None
        if config.backend == "threads":
            self._pool = ThreadPoolExecutor(max_workers=max(1, config.total_cores),
                                            thread_name_prefix="apspark-exec")

    # ------------------------------------------------------------------
    def _run_task(self, task: Callable[[], object]) -> object:
        """Run a single task with fault injection and retry."""
        task_id = self.faults.next_task_id()
        last_error: Exception | None = None
        for attempt in range(MAX_TASK_ATTEMPTS):
            try:
                self.metrics.task_launched()
                if attempt > 0:
                    self.metrics.task_retried()
                self.faults.maybe_fail(task_id, attempt)
                return task()
            except FaultInjectedError as exc:
                self.metrics.task_failed()
                last_error = exc
                continue
        raise SolverError(
            f"task {task_id} failed {MAX_TASK_ATTEMPTS} times") from last_error

    def run_stage(self, kind: str, tasks: Sequence[Callable[[], object]]) -> list:
        """Run all ``tasks`` and return their results in order."""
        self._stage_counter += 1
        stage_id = self._stage_counter
        start = time.perf_counter()
        if not tasks:
            results: list = []
        elif self._pool is not None and len(tasks) > 1:
            futures = [self._pool.submit(self._run_task, task) for task in tasks]
            results = [f.result() for f in futures]
        else:
            results = [self._run_task(task) for task in tasks]
        duration = time.perf_counter() - start
        self.metrics.stage_finished(stage_id, kind, len(tasks), duration)
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

"""Stage/task scheduler with pluggable execution backends and fault tolerance.

Stages are lists of independent tasks (one per partition).  The scheduler runs
them serially, on a thread pool, or — for tasks carrying a picklable payload
(:class:`~repro.spark.remote.RemoteTask`) — on a process pool, consults the
fault injector before every attempt, retries failed attempts with
deterministic-jitter exponential backoff (lineage-based recomputation happens
simply by re-running the task closure), and records stage timings in the
metrics.

Backend execution model
-----------------------
``serial``
    Tasks run one by one on the driver thread.
``threads``
    Tasks of a stage run concurrently on a thread pool; NumPy kernels release
    the GIL so the block math genuinely parallelizes.
``processes``
    A coordination thread per task drives execution; tasks that are
    :class:`RemoteTask` payloads are shipped to a lazily-created
    ``ProcessPoolExecutor`` (true multi-core, no GIL), and their worker-side
    metric deltas are merged back into the driver's counters.  Plain closure
    tasks keep running on the coordination threads, so solvers that cannot
    express picklable payloads remain correct.

Fault tolerance
---------------
Three failure classes are survived per attempt:

* **Worker death** — a ``BrokenProcessPool`` (real or injected via
  :meth:`FaultInjector.crash_requested`) retires the broken pool under a
  generation counter (concurrent victims retire it once), a fresh pool is
  built lazily, and only the in-flight tasks re-run — that *is* lineage
  recomputation here, because every task's input was materialized on the
  driver when the stage was built.  Counted as ``worker_restarts`` /
  ``tasks_recomputed``.
* **Stragglers** — when a soft per-task timeout is known (explicit config, or
  the cost model's predicted task wall × ``task_timeout_multiplier``), an
  attempt that overruns it races a speculative copy; first result wins and
  the loser is cancelled (threads can't be killed, so a *running* loser is
  simply discarded when it finishes).  A hard stage deadline
  (``stage_timeout_seconds``) instead fails fast with a diagnosable
  :class:`~repro.common.errors.TaskTimeoutError`.
* **Lost staging** — a :class:`~repro.common.errors.StagingError` from a
  worker-side shared-fs read is repaired through registered driver-side
  hooks (re-stage from the bounded lineage registry) and the task retried;
  an unrepairable loss escalates to
  :class:`~repro.common.errors.LineageError`, the paper's impure caveat.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor, wait)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from typing import Callable, Sequence

from repro.common.config import EngineConfig
from repro.common.errors import (FaultInjectedError, LineageError, SolverError,
                                 StagingError, TaskTimeoutError,
                                 WorkerCrashError)
from repro.common.rng import derive_seed
from repro.spark.faults import FaultInjector
from repro.spark.metrics import EngineMetrics
from repro.spark.remote import RemoteTask, pack_payload, run_packed

#: Maximum attempts per task (Spark's default ``spark.task.maxFailures`` is 4).
#: Kept as the default of :class:`~repro.common.retry.BackoffPolicy.max_attempts`.
MAX_TASK_ATTEMPTS = 4

#: Floor for a soft timeout derived from a cost-model hint: local task walls
#: for test-sized problems are sub-millisecond, and speculating on them would
#: double work for nothing.  Only genuine stalls should trip the derived
#: timeout; an explicit ``task_timeout_seconds`` is honoured verbatim.
MIN_DERIVED_SOFT_TIMEOUT = 0.25


def _mp_context():
    """A start method that is safe in a threaded driver (never plain fork)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn")


def _sanitize_main_for_spawn() -> None:
    """Drop a pseudo ``__main__.__file__`` (e.g. ``<stdin>``) before spawning.

    When the driver is fed from a pipe or heredoc, CPython's spawn/forkserver
    child preparation would try to re-run ``__main__`` from the non-existent
    path ``<stdin>`` and kill every worker with ``BrokenProcessPool``.  Our
    remote payloads are always importable module-level callables, so the
    child never needs ``__main__`` re-executed from such a pseudo-file.
    """
    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if main_file is not None and os.path.basename(main_file).startswith("<"):
        main.__file__ = None


def _die_worker() -> None:  # pragma: no cover - executes in a worker process
    """Kill the hosting worker process without cleanup (injected crash)."""
    os._exit(86)


class TaskScheduler:
    """Runs stages of independent tasks on the configured backend."""

    def __init__(self, config: EngineConfig, metrics: EngineMetrics,
                 fault_injector: FaultInjector | None = None) -> None:
        self.config = config
        self.metrics = metrics
        self.faults = fault_injector or FaultInjector()
        retry = config.retry
        if retry.seed == 0:
            # Decorrelate sessions deterministically: jitter derives from the
            # engine seed unless the policy was explicitly seeded.
            retry = retry.reseed(derive_seed(config.seed, 0xB0FF))
        self.retry = retry
        self._stage_counter = 0
        self._pool: ThreadPoolExecutor | None = None
        self._spec_pool: ThreadPoolExecutor | None = None
        self._spec_pool_lock = threading.Lock()
        self._proc_pool: ProcessPoolExecutor | None = None
        self._proc_pool_lock = threading.Lock()
        self._proc_pool_generation = 0
        self._task_wall_hint: float | None = None
        self._repair_hooks: list[Callable[[StagingError], bool]] = []
        self._abandoned = False
        if config.backend in ("threads", "processes"):
            self._pool = ThreadPoolExecutor(max_workers=max(1, config.total_cores),
                                            thread_name_prefix="apspark-exec")

    # ------------------------------------------------------------------
    @property
    def supports_remote(self) -> bool:
        """True when :class:`RemoteTask` payloads are shipped to worker processes."""
        return self.config.backend == "processes"

    def _process_pool(self) -> ProcessPoolExecutor:
        """The worker-process pool, created lazily on first remote dispatch.

        Worker startup (forkserver/spawn imports the package) is paid once per
        pool *generation*; a pool broken by worker death is retired (see
        :meth:`_retire_process_pool`) and the next dispatch builds a fresh one
        here — the recovery half of worker-crash tolerance.
        """
        with self._proc_pool_lock:
            if self._proc_pool is None:
                _sanitize_main_for_spawn()
                workers = max(1, min(self.config.total_cores,
                                     max(2, os.cpu_count() or 1)))
                self._proc_pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=_mp_context())
            return self._proc_pool

    def _retire_process_pool(self, generation: int) -> None:
        """Discard a broken process pool (once per generation) for lazy rebuild.

        Every in-flight task on a dead pool observes ``BrokenProcessPool``
        concurrently; the generation counter makes sure only the first
        observer retires the pool (and counts the ``worker_restart``), so a
        single worker death never cascades into several rebuilds.
        """
        with self._proc_pool_lock:
            if self._proc_pool is None or self._proc_pool_generation != generation:
                return
            pool, self._proc_pool = self._proc_pool, None
            self._proc_pool_generation += 1
        self.metrics.worker_restarted()
        pool.shutdown(wait=False, cancel_futures=True)

    def _speculation_pool(self) -> ThreadPoolExecutor:
        """Threads hosting speculated attempts (primary + copy per task)."""
        with self._spec_pool_lock:
            if self._spec_pool is None:
                workers = 2 * max(1, self.config.total_cores)
                self._spec_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="apspark-spec")
            return self._spec_pool

    # ------------------------------------------------------------------ hints/hooks
    @contextmanager
    def task_wall_hint(self, seconds: float | None):
        """Scope a cost-model prediction of one task's wall time.

        Solvers publish their per-task estimate around a solve; the scheduler
        derives the soft (speculation) timeout from it.  Nested scopes
        restore the previous hint on exit.
        """
        previous = self._task_wall_hint
        self._task_wall_hint = seconds if seconds and seconds > 0 else None
        try:
            yield
        finally:
            self._task_wall_hint = previous

    def add_repair_hook(self, hook: Callable[[StagingError], bool]) -> None:
        """Register a driver-side repairer for worker-reported staging losses."""
        self._repair_hooks.append(hook)

    def _repair_staging(self, exc: StagingError) -> bool:
        """Try every repair hook; True when one restored the staged block."""
        for hook in self._repair_hooks:
            try:
                if hook(exc):
                    return True
            except Exception:  # noqa: BLE001 — a failing repairer is a failed repair
                continue
        return False

    def _soft_timeout(self) -> float | None:
        """Per-task soft timeout: explicit config, else derived from the hint."""
        if self.config.task_timeout_seconds is not None:
            return self.config.task_timeout_seconds
        hint = self._task_wall_hint
        if hint is None:
            return None
        return max(MIN_DERIVED_SOFT_TIMEOUT,
                   hint * self.config.task_timeout_multiplier)

    # ------------------------------------------------------------------ execution
    def _invoke(self, task: Callable[[], object]) -> object:
        """Execute one task attempt on the right executor for this backend.

        A :class:`RemoteTask` whose full payload (function *and* arguments)
        pickles is shipped to the process pool; anything else — including a
        payload whose records turn out to be unshippable — runs in-process,
        so the fallback guarantee holds at the data level, not just for the
        function.  Retried attempts re-ship the same payload: its input was
        materialized on the driver when the stage was built, so replaying it
        is exactly the lineage recomputation of this simulator.  A dead
        worker (``BrokenProcessPool``) retires the pool and resurfaces as a
        retryable :class:`WorkerCrashError`.
        """
        if isinstance(task, RemoteTask) and self.supports_remote:
            payload = pack_payload(task.fn, task.args)
            if payload is not None:
                with self._proc_pool_lock:
                    generation = self._proc_pool_generation
                try:
                    future = self._process_pool().submit(run_packed, payload)
                    result, delta = future.result()
                except BrokenExecutor as exc:
                    self._retire_process_pool(generation)
                    raise WorkerCrashError(
                        f"worker process died mid-task: {exc or type(exc).__name__}"
                    ) from exc
                self.metrics.merge_delta(delta)
                return task.finish(result)
        return task()

    def _injected_crash(self, task_id: int) -> None:
        """Kill a real worker (processes backend) or simulate executor loss.

        On the ``processes`` backend this submits :func:`_die_worker` to the
        live pool — the worker's ``os._exit`` breaks the pool for real, so
        recovery exercises the genuine ``BrokenProcessPool`` path, not a
        stand-in exception.
        """
        if self.supports_remote:
            with self._proc_pool_lock:
                generation = self._proc_pool_generation
            try:
                self._process_pool().submit(_die_worker).result()
            except BrokenExecutor as exc:
                self._retire_process_pool(generation)
                raise WorkerCrashError(
                    f"injected worker crash for task {task_id}",
                    task_id=task_id) from exc
        raise WorkerCrashError(
            f"injected worker crash for task {task_id} (simulated executor loss)",
            task_id=task_id)

    def _execute_attempt(self, task: Callable[[], object], task_id: int,
                         delay: float) -> object:
        """One attempt, with straggler injection and optional speculation."""
        soft = self._soft_timeout()
        if (soft is None or not self.config.speculation or self._pool is None):
            if delay > 0.0:
                time.sleep(delay)
            return self._invoke(task)
        return self._speculative_invoke(task, delay, soft)

    def _speculative_invoke(self, task: Callable[[], object], delay: float,
                            soft: float) -> object:
        """Race a straggling attempt against a speculative copy; first wins.

        The loser is cancelled if still queued; a loser already *running*
        cannot be killed (threads), so it finishes in the speculation pool
        and its result is discarded — the cost of speculation, as in Spark.
        """
        pool = self._speculation_pool()

        def primary() -> object:
            """The original attempt (carries any injected straggler delay)."""
            if delay > 0.0:
                time.sleep(delay)
            return self._invoke(task)

        first = pool.submit(primary)
        try:
            return first.result(timeout=soft)
        except FuturesTimeoutError:
            pass
        self.metrics.speculation_launched()
        second = pool.submit(self._invoke, task)
        done, _pending = wait([first, second], return_when=FIRST_COMPLETED)
        if first in done:
            second.cancel()
            return first.result()
        self.metrics.speculation_won()
        first.cancel()
        return second.result()

    def _run_task(self, task: Callable[[], object]) -> object:
        """Run a single task with fault injection, backoff, and retry."""
        task_id = self.faults.next_task_id()
        last_error: Exception | None = None
        attempts = max(1, self.retry.max_attempts)
        for attempt in range(attempts):
            try:
                self.metrics.task_launched()
                if attempt > 0:
                    self.metrics.task_retried()
                    if isinstance(last_error, (WorkerCrashError, StagingError)):
                        # Re-running after lost work *is* the lineage
                        # recomputation of this simulator.
                        self.metrics.task_recomputed()
                    self.retry.sleep(attempt, key=task_id)
                self.faults.maybe_fail(task_id, attempt)
                if self.faults.crash_requested(task_id, attempt):
                    self._injected_crash(task_id)
                delay = self.faults.delay_requested(task_id, attempt)
                return self._execute_attempt(task, task_id, delay)
            except FaultInjectedError as exc:
                self.metrics.task_failed()
                last_error = exc
                continue
            except WorkerCrashError as exc:
                self.metrics.task_failed()
                last_error = exc
                continue
            except StagingError as exc:
                self.metrics.task_failed()
                if not self._repair_staging(exc):
                    raise LineageError(
                        f"task {task_id} lost staged block {exc.name!r} and no "
                        "driver-side lineage could re-stage it; impure solvers "
                        "cannot recover such data") from exc
                last_error = exc
                continue
        raise SolverError(
            f"task {task_id} failed {attempts} times") from last_error

    def _gather(self, futures: Sequence[Future], *, kind: str,
                deadline: float | None, total: int) -> list:
        """Collect every future's result, then re-raise the first failure.

        Waiting on *all* futures before raising keeps the stage
        exception-safe: sibling tasks finish (or fail) and record their
        metrics, no work is left running unobserved in the pool, and the
        executor is immediately reusable for the next stage.  The one
        exception is the hard stage deadline: blowing it abandons the stage
        immediately (queued tasks cancelled, the scheduler marked so
        :meth:`shutdown` will not wait on hung threads) and raises a
        diagnosable :class:`TaskTimeoutError`.
        """
        results: list = []
        first_error: Exception | None = None
        completed = 0
        for future in futures:
            try:
                if deadline is None:
                    results.append(future.result())
                else:
                    remaining = deadline - time.monotonic()
                    results.append(future.result(timeout=max(0.0, remaining)))
                completed += 1
            except FuturesTimeoutError:
                for pending in futures:
                    pending.cancel()
                self.metrics.task_timed_out()
                self._abandoned = True
                timeout = self.config.stage_timeout_seconds
                raise TaskTimeoutError(
                    f"stage {kind!r} exceeded its hard timeout of {timeout}s "
                    f"with {completed}/{total} tasks complete",
                    stage_kind=kind, completed=completed, total=total,
                    timeout_seconds=timeout) from None
            except Exception as exc:  # noqa: BLE001 — re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def run_stage(self, kind: str, tasks: Sequence[Callable[[], object]]) -> list:
        """Run all ``tasks`` and return their results in order."""
        self._stage_counter += 1
        stage_id = self._stage_counter
        hard = self.config.stage_timeout_seconds
        deadline = (time.monotonic() + hard) if hard is not None else None
        start = time.perf_counter()
        try:
            if not tasks:
                results: list = []
            elif self._pool is not None and len(tasks) > 1:
                futures = [self._pool.submit(self._run_task, task) for task in tasks]
                results = self._gather(futures, kind=kind, deadline=deadline,
                                       total=len(tasks))
            else:
                results = []
                for index, task in enumerate(tasks):
                    if deadline is not None and time.monotonic() > deadline:
                        self.metrics.task_timed_out()
                        raise TaskTimeoutError(
                            f"stage {kind!r} exceeded its hard timeout of "
                            f"{hard}s with {index}/{len(tasks)} tasks complete",
                            stage_kind=kind, completed=index, total=len(tasks),
                            timeout_seconds=hard)
                    results.append(self._run_task(task))
        finally:
            # Record the stage even when it fails so metric snapshots taken
            # around a failing solve stay internally consistent.
            duration = time.perf_counter() - start
            self.metrics.stage_finished(stage_id, kind, len(tasks), duration)
        return results

    def shutdown(self) -> None:
        """Stop worker pools and release scheduler resources.

        Always reaps all three pools (coordination threads, speculation
        threads, worker processes).  After a hard-timeout abandonment the
        thread pools are shut down without waiting — a genuinely hung task
        must not be able to block ``stop()``; queued work is cancelled either
        way.
        """
        waits = not self._abandoned
        if self._spec_pool is not None:
            self._spec_pool.shutdown(wait=waits, cancel_futures=True)
            self._spec_pool = None
        if self._pool is not None:
            self._pool.shutdown(wait=waits, cancel_futures=True)
            self._pool = None
        with self._proc_pool_lock:
            pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.shutdown(wait=waits, cancel_futures=True)

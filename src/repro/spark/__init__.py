"""A faithful, in-process mini-Spark engine.

The paper's solvers use a small but specific subset of the Apache Spark RDD
API: ``parallelize``, ``map``, ``flatMap``, ``filter``, ``union``,
``reduceByKey``, ``combineByKey``, ``partitionBy`` with a custom partitioner,
``cartesian``, ``collect``, ``cache`` and broadcast variables, plus the
behaviours that drive the paper's performance story — shuffles staged through
per-node local storage, ``union`` preserving parent partitioning, pySpark's
``portable_hash`` key partitioning, and a shared file system used as an
out-of-band broadcast channel.  This package implements exactly that surface
with lazy RDDs, lineage-based recomputation, pluggable execution backends,
and detailed metrics/spill accounting so the paper's experiments can be
reproduced and projected.
"""

from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.spark.partitioner import (
    Partitioner,
    PortableHashPartitioner,
    MultiDiagonalPartitioner,
    GridPartitioner,
    portable_hash,
)
from repro.spark.broadcast import Broadcast
from repro.spark.sharedfs import SharedFileSystem
from repro.spark.metrics import EngineMetrics
from repro.spark.faults import FaultInjector, FaultPlan

__all__ = [
    "SparkContext",
    "RDD",
    "Partitioner",
    "PortableHashPartitioner",
    "MultiDiagonalPartitioner",
    "GridPartitioner",
    "portable_hash",
    "Broadcast",
    "SharedFileSystem",
    "EngineMetrics",
    "FaultInjector",
    "FaultPlan",
]

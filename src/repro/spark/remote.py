"""Cross-process task execution support for the ``processes`` backend.

The mini-Spark engine normally runs stage tasks as in-process closures
(``serial``/``threads`` backends).  Closures capture the driver's object
graph — RDD lineage, the context, locks — and therefore cannot be pickled
into a worker process.  The ``processes`` backend instead ships *payloads*:
a module-level function plus picklable arguments, wrapped in a
:class:`RemoteTask`.  Anything that cannot express itself as such a payload
keeps running on the driver's coordination thread pool, so every solver
stays correct under every backend and only the picklable hot paths (the
NumPy block kernels) pay the serialization toll for true multi-core
execution.

Worker-side engine counters (e.g. shared-filesystem reads performed by an
impure solver's kernel) are accumulated against a per-process
:data:`WORKER_METRICS` collector; :func:`run_remote` snapshots it around the
payload and returns the counter delta so the driver can fold it back into
the context's :class:`~repro.spark.metrics.EngineMetrics`.
"""

from __future__ import annotations

import pickle
from typing import Callable

from repro.spark.metrics import EngineMetrics, metrics_delta

#: Per-process metrics collector.  In a worker process this is the sink that
#: unpickled engine objects (e.g. :class:`~repro.spark.sharedfs.SharedFileSystem`)
#: bind to; in the driver process it is simply never read.
WORKER_METRICS = EngineMetrics()


def worker_metrics() -> EngineMetrics:
    """The metrics collector engine objects should bind to after unpickling."""
    return WORKER_METRICS


def run_remote(fn: Callable, *args) -> tuple[object, dict]:
    """Execute a payload in a worker process, returning ``(result, metrics delta)``.

    The delta covers every counter the payload touched through
    :data:`WORKER_METRICS` (worker processes execute one task at a time, so
    the snapshot pair is race-free).
    """
    before = WORKER_METRICS.as_dict()
    result = fn(*args)
    return result, metrics_delta(before, WORKER_METRICS.as_dict())


def pack_payload(fn: Callable, args: tuple) -> bytes | None:
    """Serialize a payload for shipping, or ``None`` when it cannot be pickled.

    Pickling explicitly on the driver (instead of letting the executor's
    feeder thread fail later) gives a clean decision point: an unshippable
    payload — e.g. records holding locks or open handles that the cheap
    adapter-level :func:`is_picklable` probe could not see — falls back to
    driver-side execution instead of crashing the stage.
    """
    try:
        return pickle.dumps((fn, args), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 — any pickling failure means "run locally"
        return None


def run_packed(payload: bytes) -> tuple[object, dict]:
    """Worker entry point: unpickle a packed payload and run it."""
    fn, args = pickle.loads(payload)
    return run_remote(fn, *args)


def compute_map_partition(func: Callable, index: int, records: list) -> list:
    """Payload for a narrow transformation: apply a partition adapter to records."""
    return func(index, records)


def is_picklable(obj) -> bool:
    """True when ``obj`` survives pickling (the processes-backend entry ticket)."""
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 — any pickling failure means "not shippable"
        return False
    return True


class RemoteTask:
    """A stage task whose payload can execute in a worker process.

    ``fn`` must be a module-level callable and ``args`` picklable values.
    ``post`` is an optional *driver-side* hook applied to the payload's
    result (cache fills, shuffle bucketing, per-partition post-processing);
    it may capture arbitrary driver state because it never crosses the
    process boundary.  Calling the task directly runs the whole thing
    in-process, which is what the ``serial``/``threads`` backends do.
    """

    __slots__ = ("fn", "args", "post")

    def __init__(self, fn: Callable, args: tuple = (),
                 post: Callable | None = None) -> None:
        self.fn = fn
        self.args = tuple(args)
        self.post = post

    def finish(self, result):
        """Apply the driver-side post-processing hook to a payload result."""
        if self.post is not None:
            return self.post(result)
        return result

    def __call__(self):
        return self.finish(self.fn(*self.args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"RemoteTask({name}, args={len(self.args)})"

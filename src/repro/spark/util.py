"""Small helpers shared by the engine: record size estimation and key extraction."""

from __future__ import annotations

import pickle
import sys

import numpy as np


def estimate_size(obj) -> int:
    """Estimate the serialized size of a record in bytes.

    NumPy arrays are counted by their buffer size (they dominate all traffic
    in the APSP workloads); containers are summed recursively; everything else
    falls back to ``pickle`` length.  The estimate feeds the shuffle-spill and
    collect/broadcast accounting, so it only needs to be proportional to the
    real volume, not exact.
    """
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(estimate_size(x) for x in obj) + 8
    if isinstance(obj, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in obj.items()) + 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(obj)


def record_key(record):
    """Return the key of a key-value record (``record[0]``).

    Raises ``TypeError`` with a clear message when the record is not a pair,
    mirroring pySpark's behaviour for by-key operations on non-pair RDDs.
    """
    if not isinstance(record, (tuple, list)) or len(record) != 2:
        raise TypeError(
            f"by-key operation requires (key, value) records, got {type(record).__name__}: {record!r}")
    return record[0]

"""Table 3 and Figure 5: weak scaling of the blocked solvers vs the MPI baselines.

The paper keeps n/p = 256 and scales p from 64 to 1,024, comparing Blocked
In-Memory, Blocked Collect/Broadcast, the naive MPI 2D Floyd-Warshall
(FW-2D-GbE) and the optimized divide-and-conquer solver (DC-GbE), reporting
wall-clock times (Table 3) and Gop/s per core normalized by the sequential
reference T1 = 0.022 s at n = 256 (Figure 5).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.common.config import EngineConfig
from repro.common.timing import format_seconds
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.mpi.divide_conquer import dc_apsp
from repro.mpi.fw2d import fw2d_mpi_apsp
from repro.sequential.floyd_warshall import floyd_warshall_reference

#: The paper's weak-scaling configuration.
PAPER_VERTICES_PER_CORE = 256
PAPER_CORE_COUNTS = (64, 128, 256, 512, 1024)
PAPER_T1_SECONDS = 0.022
PAPER_T1_GOPS = 0.762


def run_projected(*, vertices_per_core: int = PAPER_VERTICES_PER_CORE,
                  core_counts=PAPER_CORE_COUNTS,
                  cost_model: CostModel | None = None) -> list[dict]:
    """Regenerate Table 3 / Figure 5 from the cost model."""
    cm = cost_model or CostModel()
    rows: list[dict] = []
    for entry in cm.weak_scaling(vertices_per_core=vertices_per_core,
                                 core_counts=core_counts):
        p, n = entry["p"], entry["n"]
        im, cb = entry["blocked-im"], entry["blocked-cb"]
        fw2d_s = entry["fw-2d-mpi_seconds"]
        dc_s = entry["dc-mpi_seconds"]
        rows.append({
            "p": p,
            "n": n,
            "blocked_im": format_seconds(im.projected_total_seconds) if im.feasible else "-",
            "blocked_im_seconds": im.projected_total_seconds if im.feasible else float("nan"),
            "blocked_im_b": im.block_size,
            "blocked_cb": format_seconds(cb.projected_total_seconds),
            "blocked_cb_seconds": cb.projected_total_seconds,
            "blocked_cb_b": cb.block_size,
            "fw2d_mpi": format_seconds(fw2d_s),
            "fw2d_mpi_seconds": fw2d_s,
            "dc_mpi": format_seconds(dc_s),
            "dc_mpi_seconds": dc_s,
            "gops_core_im": cm.gops_per_core(n, p, im.projected_total_seconds) if im.feasible else 0.0,
            "gops_core_cb": cm.gops_per_core(n, p, cb.projected_total_seconds),
            "gops_core_fw2d_mpi": cm.gops_per_core(n, p, fw2d_s),
            "gops_core_dc_mpi": cm.gops_per_core(n, p, dc_s),
            "sequential_gops": PAPER_T1_GOPS,
        })
    return rows


def run_measured(*, vertices_per_core: int = 16, core_counts=(4, 8, 16),
                 config: EngineConfig | None = None, seed: int = 17,
                 check_correctness: bool = True) -> list[dict]:
    """Weak scaling on this machine: same structure, laptop-sized problems.

    ``p`` is the simulated core count of the engine; ``n = vertices_per_core * p``.
    Every configuration is checked against the sequential reference so the
    scaling rows are backed by verified results.
    """
    rows: list[dict] = []
    for p in core_counts:
        n = vertices_per_core * p
        cfg = (config or EngineConfig()).replace(
            num_executors=max(1, p // 4), cores_per_executor=min(4, p))
        adjacency = erdos_renyi_adjacency(n, seed=seed + p)
        reference = floyd_warshall_reference(adjacency) if check_correctness else None

        measurements: dict[str, float] = {}
        correct: dict[str, bool] = {}

        # Both solvers at this scale share one engine session (one context),
        # which is what the paper's per-p cluster allocation looks like.
        with APSPEngine(cfg) as engine:
            for solver in ("blocked-im", "blocked-cb"):
                result = engine.solve(adjacency, SolveRequest(
                    solver=solver, block_size=max(8, n // 8)))
                measurements[solver] = result.elapsed_seconds
                correct[solver] = (reference is None
                                   or bool(np.allclose(result.distances, reference)))

        start = time.perf_counter()
        ranks = 4 if n % 2 == 0 else 1
        fw2d = fw2d_mpi_apsp(adjacency, num_ranks=ranks)
        measurements["fw2d-mpi"] = time.perf_counter() - start
        correct["fw2d-mpi"] = reference is None or bool(np.allclose(fw2d, reference))

        start = time.perf_counter()
        dc = dc_apsp(adjacency, base_case=max(16, n // 8))
        measurements["dc-mpi"] = time.perf_counter() - start
        correct["dc-mpi"] = reference is None or bool(np.allclose(dc, reference))

        start = time.perf_counter()
        floyd_warshall_reference(adjacency)
        t_seq = time.perf_counter() - start

        rows.append({
            "p": p,
            "n": n,
            "blocked_im_seconds": measurements["blocked-im"],
            "blocked_cb_seconds": measurements["blocked-cb"],
            "fw2d_mpi_seconds": measurements["fw2d-mpi"],
            "dc_mpi_seconds": measurements["dc-mpi"],
            "sequential_seconds": t_seq,
            "all_correct": all(correct.values()),
        })
    return rows

"""Table 2: the effect of block size (and partitioner) on execution time.

For every solver x partitioner x block size the paper reports the iteration
count, the measured time of a single iteration at full scale, and the
projected total (single x iterations).  The projected mode regenerates the
table from the cost model at the paper's configuration (n = 262,144,
p = 1,024, B = 2); the measured mode runs real single iterations of each
solver on the mini-Spark engine at a configurable small scale and projects
totals the same way the paper does.
"""

from __future__ import annotations

from repro.cluster.costmodel import CostModel
from repro.common.config import EngineConfig
from repro.common.timing import format_seconds
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency

#: The paper's Table 2 configuration.
PAPER_N = 262144
PAPER_P = 1024
PAPER_B_FACTOR = 2
PAPER_BLOCK_SIZES = (256, 512, 1024, 2048, 4096)
SOLVERS = ("repeated-squaring", "fw-2d", "blocked-im", "blocked-cb")
PARTITIONERS = ("MD", "PH")


def run_projected(*, n: int = PAPER_N, p: int = PAPER_P,
                  block_sizes=PAPER_BLOCK_SIZES, solvers=SOLVERS,
                  partitioners=PARTITIONERS,
                  cost_model: CostModel | None = None) -> list[dict]:
    """Regenerate Table 2 rows from the cost model."""
    cm = cost_model or CostModel()
    rows: list[dict] = []
    for solver in solvers:
        for partitioner in partitioners:
            for block_size in block_sizes:
                proj = cm.project(solver, n, block_size, p, partitioner=partitioner,
                                  partitions_per_core=PAPER_B_FACTOR)
                rows.append({
                    "method": solver,
                    "partitioner": partitioner,
                    "block_size": block_size,
                    "iterations": proj.iterations,
                    "single_seconds": proj.single_iteration_seconds,
                    "single": format_seconds(proj.single_iteration_seconds),
                    "projected_seconds": proj.projected_total_seconds,
                    "projected": format_seconds(proj.projected_total_seconds),
                    "feasible": proj.feasible,
                })
    return rows


def run_measured(*, n: int = 160, block_sizes=(16, 32, 64), solvers=SOLVERS,
                 partitioners=("MD",), config: EngineConfig | None = None,
                 seed: int = 5) -> list[dict]:
    """Measure single-iteration times of each solver on the engine, then project.

    The full solve is executed (so results stay verifiable); the single-iteration
    time is the total divided by the iteration count, mirroring how the paper's
    per-iteration numbers relate to its projected totals.
    """
    config = config or EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)
    adjacency = erdos_renyi_adjacency(n, seed=seed)
    rows: list[dict] = []
    with APSPEngine(config) as engine:
        for solver in solvers:
            for partitioner in partitioners:
                for block_size in block_sizes:
                    result = engine.solve(adjacency, SolveRequest(
                        solver=solver, block_size=block_size, partitioner=partitioner,
                        partitions_per_core=PAPER_B_FACTOR))
                    elapsed = result.elapsed_seconds
                    single = elapsed / max(1, result.iterations)
                    rows.append({
                        "method": solver,
                        "partitioner": partitioner,
                        "block_size": block_size,
                        "iterations": result.iterations,
                        "single_seconds": single,
                        "projected_seconds": single * result.iterations,
                        "total_seconds": elapsed,
                        "shuffle_bytes": result.metrics.get("shuffle_bytes", 0),
                        "collect_bytes": result.metrics.get("collect_bytes", 0),
                        "sharedfs_bytes": result.metrics.get("sharedfs_bytes_written", 0),
                    })
    return rows

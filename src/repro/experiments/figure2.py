"""Figure 2: sequential kernel time (MatProd+MatMin, FloydWarshall) vs block size.

The paper sweeps block sizes from ~500 to 10,000 and observes O(b^3) growth
with a knee once blocks no longer fit in cache.  The measured mode sweeps
block sizes that fit this machine's time budget; the projected mode evaluates
the calibrated kernel model at the paper's block sizes.
"""

from __future__ import annotations

from repro.cluster.calibration import KernelCalibration, measure_kernel_times

#: Block sizes the paper's Figure 2 spans.
PAPER_BLOCK_SIZES = (1000, 2000, 3000, 4000, 6000, 8000, 10000)

#: Block sizes measured on the host by default (kept small enough to be quick).
DEFAULT_MEASURED_BLOCK_SIZES = (64, 96, 128, 192, 256, 384, 512)


def run_measured(block_sizes=DEFAULT_MEASURED_BLOCK_SIZES, *, repeats: int = 2,
                 seed: int = 0) -> list[dict]:
    """Measure the two kernels on this machine; one row per block size."""
    rows = measure_kernel_times(block_sizes, repeats=repeats, seed=seed)
    for row in rows:
        b = row["block_size"]
        row["minplus_gops"] = (b ** 3) / row["minplus_seconds"] / 1e9
        row["floyd_warshall_gops"] = (b ** 3) / row["floyd_warshall_seconds"] / 1e9
    return rows


def run_projected(block_sizes=PAPER_BLOCK_SIZES,
                  calibration: KernelCalibration | None = None) -> list[dict]:
    """Evaluate the calibrated kernel model at the paper's block sizes."""
    calibration = calibration or KernelCalibration.paper()
    rows = []
    for b in block_sizes:
        rows.append({
            "block_size": b,
            "minplus_seconds": calibration.minplus_seconds(b),
            "floyd_warshall_seconds": calibration.floyd_warshall_seconds(b),
        })
    return rows


def check_cubic_growth(rows: list[dict], *, key: str = "floyd_warshall_seconds",
                       tolerance: float = 1.2) -> bool:
    """Verify the O(b^3) shape: time ratios track (b2/b1)^3 within ``tolerance``.

    Small blocks are dominated by constant overheads, so the check only uses
    the largest two block sizes.
    """
    if len(rows) < 2:
        return True
    rows = sorted(rows, key=lambda r: r["block_size"])
    b1, b2 = rows[-2]["block_size"], rows[-1]["block_size"]
    t1, t2 = rows[-2][key], rows[-1][key]
    if t1 <= 0:
        return True
    expected = (b2 / b1) ** 3
    observed = t2 / t1
    return observed <= expected * tolerance and observed >= expected / (tolerance * 2.0)

"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment can run in two modes:

* **measured** — execute the real solvers on the mini-Spark engine at a scale
  that fits this machine (minutes, not cluster-days), reporting observed
  times and engine metrics;
* **projected** — evaluate the analytic cost model at the paper's scale
  (n up to 262,144 on 1,024 cores) and regenerate the paper's rows/series.

EXPERIMENTS.md records the paper-reported numbers next to both modes.
"""

from repro.experiments import figure2, figure3, table2, table3_figure5
from repro.experiments.report import format_table, rows_to_csv

__all__ = [
    "figure2",
    "figure3",
    "table2",
    "table3_figure5",
    "format_table",
    "rows_to_csv",
]

"""Plain-text reporting helpers shared by the experiment modules."""

from __future__ import annotations

import csv
import io
from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 *, title: str | None = None, floatfmt: str = ".3g") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        """Render one cell as a string."""
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in table:
        out.write("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) + "\n")
    return out.getvalue()


def rows_to_csv(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text (used by the CLI's ``--csv`` option)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([str(row.get(col, "")) for col in columns])
    return buffer.getvalue()

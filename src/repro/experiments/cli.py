"""Command-line interface: ``apspark <experiment> [options]``.

Examples
--------
Run the paper-scale projections for Table 2 and the weak-scaling study::

    apspark table2 --mode projected
    apspark table3 --mode projected

Run a small measured sweep on this machine::

    apspark figure3 --mode measured
    apspark solve --n 256 --solver blocked-cb --block-size 32

Benchmark suites with machine-readable results and regression gating::

    apspark bench list
    apspark bench run --suite smoke
    apspark bench compare --suite smoke --baseline benchmarks/baselines/BENCH_smoke.json

List the registered solvers with their aliases and purity::

    apspark solvers
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import bench
from repro.common.config import BACKENDS, EngineConfig
from repro.common.errors import ConfigurationError
from repro.common.timing import format_seconds
from repro.core.api import available_solvers, solver_catalog
from repro.core.engine import APSPEngine
from repro.core.request import EdgeUpdate, SolveRequest
from repro.experiments import figure2, figure3, table2, table3_figure5
from repro.experiments.report import format_table, rows_to_csv
from repro.graph import io as graph_io
from repro.graph import sparse as sparse_graph
from repro.linalg.algebra import available_algebras, get_algebra


def _load_input_graph(path: str):
    """Load a ``--input`` graph through the shared ingestion front door.

    ``.npz`` sparse CSR, ``.npy`` dense, ``.mtx`` MatrixMarket, or a
    plain-text edge list (see :func:`repro.graph.io.load_graph`).  Returns
    a :class:`repro.graph.io.LoadedGraph` — the adjacency plus the
    directedness the file resolved to, which feeds ``layout="auto"``.
    """
    from repro.common.errors import ValidationError
    try:
        return graph_io.load_graph(path)
    except (ValidationError, OSError) as exc:
        raise ConfigurationError(f"cannot load --input {path!r}: {exc}") from exc


def _fold_edges(adjacency, algebra, dtype):
    """The edge matrix :func:`repro.serve.format_route` folds against.

    The shared formatter re-derives route weights from *algebra-domain*
    edges: canonical CSR passes through, a canonical dense matrix (finite =
    edge) is prepared into the algebra's domain first.
    """
    if sparse_graph.is_sparse(adjacency):
        return adjacency
    return get_algebra(algebra).prepare_adjacency(adjacency, dtype=dtype)


def _print_route(result, adjacency, algebra, route, tolerances) -> bool:
    """Reconstruct, fold and print one ``--route SRC DST`` query.

    Formatting and the independent weight re-fold are shared with
    ``apspark route`` (see :func:`repro.serve.format_route`); this wrapper
    only adapts the full ``paths=True`` result: walk the predecessor
    matrix, classify a failed walk, and report through the common line.
    Returns False (driving a non-zero exit) on a mismatch or error; an
    unreachable pair is reported but is not an error.
    """
    from repro import serve as serve_mod
    from repro.common.errors import SolverError, ValidationError
    from repro.linalg.witness import NO_VERTEX
    src, dst = route
    try:
        path = result.reconstruct_path(src, dst)
    except ValidationError as exc:
        print(f"route {src} -> {dst}: error: {exc}", file=sys.stderr)
        return False
    except SolverError as exc:
        if src != dst and result.parents[src, dst] == NO_VERTEX:
            # Genuinely unreachable: valid output, not an error.
            path = None
        else:
            # A walk that started but failed means the parent matrix is corrupt.
            print(f"route {src} -> {dst}: error: {exc}", file=sys.stderr)
            return False
    edges = _fold_edges(adjacency, algebra, result.distances.dtype)
    line, verdict = serve_mod.format_route(
        src, dst, path, result.distances[src, dst], edges, algebra,
        tolerances=tolerances)
    print(line, file=sys.stderr if verdict == serve_mod.ROUTE_ERROR else sys.stdout)
    return verdict in (serve_mod.ROUTE_OK, serve_mod.ROUTE_UNREACHABLE)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", choices=("projected", "measured"), default="projected",
                        help="projected: cost model at paper scale; measured: run the engine here")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a table")


def build_parser() -> argparse.ArgumentParser:
    """Build the apspark argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(prog="apspark",
                                     description="APSP-on-Spark reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig2 = sub.add_parser("figure2", help="sequential kernel time vs block size")
    _add_common(p_fig2)

    p_fig3 = sub.add_parser("figure3", help="block size x partitioner for the blocked solvers")
    _add_common(p_fig3)
    p_fig3.add_argument("--distribution", action="store_true",
                        help="show the partition-size distribution panel instead of timings")

    p_tab2 = sub.add_parser("table2", help="effect of block size on execution time")
    _add_common(p_tab2)

    p_tab3 = sub.add_parser("table3", help="weak scaling of blocked methods vs MPI baselines")
    _add_common(p_tab3)

    p_solve = sub.add_parser("solve", help="solve a synthetic instance and verify it")
    p_solve.add_argument("--n", type=int, default=128)
    p_solve.add_argument("--input", default=None, metavar="PATH",
                         help="solve this graph instead of generating one: "
                              "a .npz CSR adjacency (scipy.sparse, ingested "
                              "without densifying) or a .npy dense matrix")
    p_solve.add_argument("--solver",
                         choices=[*available_solvers(), "auto"],
                         default="blocked-cb",
                         help="solver name, or 'auto' to let the calibrated "
                              "cost model pick solver and block size")
    p_solve.add_argument("--block-size", type=int, default=None)
    p_solve.add_argument("--partitioner", default="MD")
    p_solve.add_argument("--algebra", default="shortest-path",
                         choices=available_algebras(),
                         help="path algebra to close the matrix under")
    p_solve.add_argument("--dtype", default=None,
                         help="element dtype (e.g. float32); default: the "
                              "algebra's native dtype")
    p_solve.add_argument("--storage", default=None,
                         choices=("auto", "dense", "packed"),
                         help="block storage layout; auto = the algebra's "
                              "default (packed bitsets for reachability)")
    p_solve.add_argument("--layout", default=None,
                         choices=("auto", "triangular", "full"),
                         help="block grid layout: triangular stores the upper "
                              "block triangle (symmetric inputs only), full "
                              "stores all blocks (asymmetric/directed); "
                              "auto = inspect the input")
    p_solve.add_argument("--directed", action="store_true",
                         help="treat the input as directed: forces the full "
                              "layout and skips the symmetry requirement")
    p_solve.add_argument("--paths", action="store_true",
                         help="track path witnesses: the result carries a "
                              "predecessor matrix (parent pointers) at ~2x "
                              "the data traffic")
    p_solve.add_argument("--route", nargs=2, type=int, default=None,
                         metavar=("SRC", "DST"),
                         help="reconstruct and print the optimal route "
                              "between two vertices (implies --paths)")
    p_solve.add_argument("--no-verify", action="store_true",
                         help="skip the sequential reference check "
                              "(recommended for large sparse inputs: the "
                              "reference densifies the graph)")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--executors", type=int, default=4)
    p_solve.add_argument("--cores", type=int, default=2)
    p_solve.add_argument("--backend", choices=BACKENDS, default="serial")
    p_solve.add_argument("--repeat", type=int, default=1,
                         help="solve the instance this many times on one engine "
                              "session (demonstrates context reuse)")

    def _add_serve_common(p) -> None:
        """Graph + engine + cache options shared by ``route`` and ``serve``."""
        p.add_argument("--n", type=int, default=128,
                       help="size of the generated graph (ignored with --input)")
        p.add_argument("--input", default=None, metavar="PATH",
                       help="serve this graph instead of generating one "
                            "(.npz CSR, .npy dense, .mtx, or an edge list)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--solver", choices=available_solvers(), default="blocked-cb")
        p.add_argument("--block-size", type=int, default=None)
        p.add_argument("--algebra", default="shortest-path",
                       choices=available_algebras())
        p.add_argument("--dtype", default=None)
        p.add_argument("--layout", default=None,
                       choices=("auto", "triangular", "full"),
                       help="block grid layout (auto = inspect the input)")
        p.add_argument("--directed", action="store_true",
                       help="treat the input as directed (forces full layout)")
        p.add_argument("--backend", choices=BACKENDS, default="serial")
        p.add_argument("--executors", type=int, default=4)
        p.add_argument("--cores", type=int, default=2)
        p.add_argument("--cache-rows", type=int, default=None,
                       help="parent-row cache limit in rows (default: unbounded)")
        p.add_argument("--cache-budget-kb", type=float, default=None,
                       help="parent-row cache budget in KB (default: unbounded)")
        p.add_argument("--pairs-file", default=None, metavar="PATH",
                       help="replay queries from a file of 'SRC DST' lines")

    p_route = sub.add_parser(
        "route", help="answer route queries from a served closure "
                      "(per-source parent rows, solved lazily)")
    p_route.add_argument("pairs", nargs="*", type=int, metavar="SRC DST",
                         help="flat list of query pairs, e.g. '0 5 3 9'")
    _add_serve_common(p_route)
    p_route.add_argument("--report", action="store_true",
                         help="also print the serving analytics report")

    p_serve = sub.add_parser(
        "serve", help="replay a query workload against a served closure and "
                      "print the analytics report")
    _add_serve_common(p_serve)
    p_serve.add_argument("--queries", type=int, default=256,
                         help="number of random queries when no --pairs-file "
                              "is given")
    p_serve.add_argument("--sources", type=int, default=0,
                         help="restrict random queries to this many distinct "
                              "sources (0 = all; smaller = higher hit rate)")
    p_serve.add_argument("--verify", action="store_true",
                         help="re-fold every answered route against the edge "
                              "weights and fail on mismatch")
    p_serve.add_argument("--csv", action="store_true",
                         help="emit the stats snapshot as CSV instead of the "
                              "report")

    p_update = sub.add_parser(
        "update", help="dynamic closure maintenance: solve once, then apply "
                       "edge updates as rank-1 sweeps (or a cost-model-"
                       "driven re-solve)")
    p_update.add_argument("--n", type=int, default=128,
                          help="size of the generated graph (ignored with "
                               "--input)")
    p_update.add_argument("--input", default=None, metavar="PATH",
                          help="update this graph's closure instead of a "
                               "generated one (.npz CSR, .npy dense, .mtx, "
                               "or an edge list)")
    p_update.add_argument("--seed", type=int, default=0)
    p_update.add_argument("--solver", choices=available_solvers(),
                          default="blocked-cb")
    p_update.add_argument("--block-size", type=int, default=None)
    p_update.add_argument("--algebra", default="shortest-path",
                          choices=available_algebras())
    p_update.add_argument("--dtype", default=None)
    p_update.add_argument("--storage", default=None,
                          choices=("auto", "dense", "packed"))
    p_update.add_argument("--layout", default=None,
                          choices=("auto", "triangular", "full"))
    p_update.add_argument("--directed", action="store_true",
                          help="treat the input as directed (updates touch "
                               "one orientation instead of both)")
    p_update.add_argument("--paths", action="store_true",
                          help="maintain the predecessor matrix through the "
                               "updates as well")
    p_update.add_argument("--backend", choices=BACKENDS, default="serial")
    p_update.add_argument("--executors", type=int, default=4)
    p_update.add_argument("--cores", type=int, default=2)
    p_update.add_argument("--edge", nargs=3, action="append", default=None,
                          metavar=("U", "V", "W"),
                          help="insert or relax one edge (repeatable); "
                               "W of 'del'/'inf' deletes it")
    p_update.add_argument("--delete", nargs=2, type=int, action="append",
                          default=None, metavar=("U", "V"),
                          help="delete one edge (repeatable)")
    p_update.add_argument("--batch", type=int, default=0,
                          help="also apply this many seeded improving edges "
                               "(the dynamic bench suite's workload)")
    p_update.add_argument("--mode", choices=("auto", "incremental", "resolve"),
                          default="auto",
                          help="auto lets the cost model pick; incremental/"
                               "resolve force the path")
    p_update.add_argument("--verify", action="store_true",
                          help="check the updated closure against a full "
                               "re-closure of the mutated graph")

    p_chaos = sub.add_parser(
        "chaos", help="run solve+update+query twice (clean vs seeded fault "
                      "schedule) and fail unless the faulted run is "
                      "bit-identical")
    p_chaos.add_argument("--n", type=int, default=96)
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="seeds the graph, the workload, and every "
                              "fault decision — same seed, same schedule")
    p_chaos.add_argument("--solver", choices=available_solvers(),
                         default="blocked-cb")
    p_chaos.add_argument("--block-size", type=int, default=None)
    p_chaos.add_argument("--algebra", default="shortest-path",
                         choices=available_algebras())
    p_chaos.add_argument("--backend", choices=BACKENDS, default="threads")
    p_chaos.add_argument("--executors", type=int, default=2)
    p_chaos.add_argument("--cores", type=int, default=2)
    p_chaos.add_argument("--failure-rate", type=float, default=0.0,
                         help="probability any task's first attempt raises "
                              "an injected failure")
    p_chaos.add_argument("--crash-rate", type=float, default=0.0,
                         help="probability any task's first attempt dies as "
                              "a worker crash")
    p_chaos.add_argument("--failures", type=int, default=2,
                         help="inject this many plain task failures")
    p_chaos.add_argument("--crashes", type=int, default=1,
                         help="inject this many worker crashes (real "
                              "process kills on the processes backend)")
    p_chaos.add_argument("--delays", type=int, default=0,
                         help="inject this many straggler delays "
                              "(exercises speculation)")
    p_chaos.add_argument("--delay-seconds", type=float, default=0.3)
    p_chaos.add_argument("--corrupt-writes", type=int, default=1,
                         help="corrupt this many staged blocks on disk "
                              "(impure solvers only)")
    p_chaos.add_argument("--drop-writes", type=int, default=1,
                         help="delete this many staged blocks after writing")
    p_chaos.add_argument("--update-batches", type=int, default=2)
    p_chaos.add_argument("--edges-per-batch", type=int, default=4)
    p_chaos.add_argument("--queries", type=int, default=32)
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress the per-leg progress lines")

    p_convert = sub.add_parser(
        "convert", help="convert an external graph (.mtx / edge list / .npy) "
                        "to .npz CSR or .npy dense for --input")
    p_convert.add_argument("source", help="input graph in any load_graph format")
    p_convert.add_argument("target", help="output path: .npz (CSR) or .npy (dense)")

    p_solvers = sub.add_parser("solvers", help="list registered solvers and their metadata")
    p_solvers.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    p_bench = sub.add_parser("bench", help="benchmark suites, BENCH_*.json results, "
                                           "and baseline regression gating")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser("run", help="run a suite and write BENCH_<suite>.json")
    b_run.add_argument("--suite", default="smoke", choices=bench.available_suites())
    b_run.add_argument("--output", default=None,
                       help="report path (default: ./BENCH_<suite>.json)")
    b_run.add_argument("--repeats", type=int, default=None,
                       help="override every scenario's repeat count")
    b_run.add_argument("--n", type=int, default=None,
                       help="override every scenario's problem size "
                            "(like setting APSPARK_BENCH_N)")
    b_run.add_argument("--layout", default=None,
                       choices=("auto", "triangular", "full"),
                       help="override every scenario's block grid layout")
    b_run.add_argument("--directed", action="store_true",
                       help="run every scenario on a directed input graph")
    b_run.add_argument("--verify", action="store_true",
                       help="check each result against the sequential reference")
    b_run.add_argument("--quiet", action="store_true",
                       help="suppress per-scenario progress lines")

    b_compare = bench_sub.add_parser(
        "compare", help="diff a BENCH_*.json run against a baseline; "
                        "exits 1 on regression")
    b_compare.add_argument("--suite", default="smoke",
                           help="suite name used to locate default file paths")
    b_compare.add_argument("--baseline", default=None,
                           help="baseline report "
                                "(default: benchmarks/baselines/BENCH_<suite>.json)")
    b_compare.add_argument("--current", default=None,
                           help="current report (default: ./BENCH_<suite>.json)")
    b_compare.add_argument("--threshold", type=float, default=None,
                           help="override every scenario's slowdown gate "
                                "(e.g. 1.5 = fail at 50%% slower)")
    b_compare.add_argument("--min-seconds", type=float, default=None,
                           help="noise floor below which scenarios are not gated")
    b_compare.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    b_list = bench_sub.add_parser("list", help="list suites (or one suite's scenarios)")
    b_list.add_argument("--suite", default=None, help="show this suite's scenario grid")
    b_list.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    b_calibrate = bench_sub.add_parser(
        "calibrate", help="fit the cost model's machine constants from "
                          "BENCH_*.json archives and write "
                          "benchmarks/calibration.json")
    b_calibrate.add_argument(
        "--archive", action="append", default=None, metavar="PATH",
        help="a BENCH_*.json file or a directory of them; repeatable "
             "(default: benchmarks/baselines plus the working directory)")
    b_calibrate.add_argument(
        "--output", default=None, metavar="PATH",
        help="calibration file to write "
             "(default: benchmarks/calibration.json)")
    b_calibrate.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the per-scenario accuracy report as JSON")
    b_calibrate.add_argument(
        "--drift-baseline", default=None, metavar="PATH",
        help="warn-only compare of the fitted constants against this "
             "committed calibration (never affects the exit code)")
    b_calibrate.add_argument(
        "--drift-tolerance", type=float, default=None,
        help="constant drift ratio beyond which the warn-only compare "
             "flags a constant (default: 2.0)")
    b_calibrate.add_argument(
        "--dry-run", action="store_true",
        help="fit and report, but do not write the calibration file")
    return parser


def _bench_main(args) -> int:
    if args.bench_command == "list":
        if args.suite:
            suite = bench.get_suite(args.suite)
            rows = [{"name": s.name, **s.params(),
                     "threshold": f"{s.slowdown_threshold:.2f}x"}
                    for s in suite.scenarios]
        else:
            rows = []
            for name in bench.available_suites():
                suite = bench.get_suite(name)
                rows.append({"suite": suite.name,
                             "scenarios": len(suite.scenarios),
                             "description": suite.description})
        _emit(rows, args)
        return 0

    if args.bench_command == "run":
        suite = bench.get_suite(args.suite)
        if args.n is not None:
            suite = suite.with_n(args.n)
        if args.layout is not None or args.directed:
            from dataclasses import replace
            changes = {}
            if args.layout is not None:
                changes["layout"] = args.layout
            if args.directed:
                changes["directed"] = True
            try:
                suite = replace(suite, scenarios=tuple(
                    replace(s, **changes) for s in suite.scenarios))
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        progress = (lambda line: None) if args.quiet else print
        results = bench.run_suite(suite, repeats=args.repeats,
                                  verify=args.verify, progress=progress)
        report = bench.build_report(suite, results)
        path = bench.write_report(report, args.output
                                  or bench.default_report_path(suite.name))
        print(f"wrote {path} ({len(results)} scenario(s))")
        if args.verify and any(r.verified is False for r in results):
            print("verification FAILED for at least one scenario", file=sys.stderr)
            return 1
        return 0

    if args.bench_command == "compare":
        baseline_path = args.baseline or os.path.join(
            "benchmarks", "baselines", f"BENCH_{args.suite}.json")
        current_path = args.current or bench.default_report_path(args.suite)
        baseline = bench.load_report(baseline_path)
        current = bench.load_report(current_path)
        kwargs = {"threshold": args.threshold}
        if args.min_seconds is not None:
            kwargs["min_seconds"] = args.min_seconds
        rows = bench.compare_reports(baseline, current, **kwargs)
        _emit([row.as_dict() for row in rows], args)
        # Keep piped CSV output clean: the human summary goes to stderr then.
        print(bench.summarize(rows), file=sys.stderr if args.csv else sys.stdout)
        return 1 if bench.has_regressions(rows) else 0

    if args.bench_command == "calibrate":
        return _calibrate_main(args)

    return 2


def _calibrate_main(args) -> int:
    """``apspark bench calibrate``: archives in, fitted constants out.

    Exits 2 on a malformed/missing archive (fitting from corrupt walls would
    silently poison every ``solver="auto"`` decision), 0 otherwise.  The
    constants-drift compare against ``--drift-baseline`` is warn-only by
    design: constants legitimately differ across hardware.
    """
    from repro.common.errors import ValidationError
    from repro.cluster import fitting
    try:
        paths = bench.discover_archives(args.archive)
        if not paths:
            raise ValidationError(
                "no BENCH_*.json archives found; run 'apspark bench run' "
                "first or pass --archive")
        reports = [bench.load_report(path) for path in paths]
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    calibration = fitting.build_calibration(reports, source_paths=paths)
    accuracy = calibration["accuracy"]
    constants = calibration["constants"]
    scenarios = accuracy["scenarios"]
    print(f"fitted {len(constants['seconds_per_unit'])} machine constant(s) "
          f"from {scenarios} scenario(s) in {len(paths)} archive(s)")
    print(f"prediction accuracy: median rel error "
          f"{accuracy['median_rel_error']:.1%}, "
          f"mean {accuracy['mean_rel_error']:.1%}")
    for suite, row in sorted(accuracy["per_suite"].items()):
        print(f"  {suite:>14s}: {row['scenarios']:3d} scenario(s), "
              f"median {row['median_rel_error']:.1%}, "
              f"max {row['max_rel_error']:.1%}")
    if accuracy["worst"]:
        print("worst offenders:")
        for row in accuracy["worst"]:
            print(f"  {row['suite']}/{row['id']}: "
                  f"predicted {row['predicted_seconds']:.4f}s "
                  f"vs actual {row['actual_seconds']:.4f}s "
                  f"({row['rel_error']:.0%} off)")
    if not args.dry_run:
        output = args.output or os.path.join("benchmarks", "calibration.json")
        fitting.write_calibration(calibration, output)
        print(f"wrote {output}")
    if args.report:
        import json as _json
        with open(args.report, "w", encoding="utf-8") as fh:
            _json.dump(accuracy, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote accuracy report {args.report}")
    if args.drift_baseline:
        try:
            baseline = fitting.load_calibration(args.drift_baseline)
        except ValidationError as exc:
            print(f"drift compare skipped: {exc}", file=sys.stderr)
        else:
            kwargs = ({}
                      if args.drift_tolerance is None
                      else {"tolerance": args.drift_tolerance})
            rows = bench.compare_calibrations(baseline, calibration, **kwargs)
            print(bench.summarize_calibration_drift(rows))
    return 0


def _serve_main(args) -> int:
    """Shared driver for ``apspark route`` and ``apspark serve``.

    Both solve the closure once, open a lazy-row serving session and answer
    a query workload; they differ only in workload source and output —
    ``route`` prints one verified line per query, ``serve`` replays silently
    and prints the analytics report.
    """
    import numpy as np
    from repro import serve as serve_mod
    from repro.common.errors import SolverError, ValidationError
    try:
        config = EngineConfig(backend=args.backend, num_executors=args.executors,
                              cores_per_executor=args.cores)
        directed = bool(args.directed)
        adjacency = None
        if args.input is not None:
            loaded = _load_input_graph(args.input)
            adjacency = loaded.adjacency
            directed = directed or loaded.directed
        request = SolveRequest(solver=args.solver, block_size=args.block_size,
                               algebra=args.algebra, dtype=args.dtype,
                               layout=args.layout, directed=directed)
        if adjacency is None:
            adjacency = bench.graph_for_algebra(args.n, args.seed,
                                                request.algebra,
                                                directed=request.directed)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n = adjacency.shape[0]
    budget = (None if args.cache_budget_kb is None
              else max(1, int(args.cache_budget_kb * 1024)))
    try:
        if args.command == "route":
            if len(args.pairs) % 2:
                raise SolverError(
                    "route expects a flat, even-length list of SRC DST pairs")
            pairs = list(zip(args.pairs[::2], args.pairs[1::2]))
            if args.pairs_file:
                pairs += serve_mod.load_pairs_file(args.pairs_file, n=n)
            if not pairs:
                raise SolverError("no queries: pass SRC DST pairs or --pairs-file")
        elif args.pairs_file:
            pairs = serve_mod.load_pairs_file(args.pairs_file, n=n)
        else:
            # Deterministic random replay; --sources narrows the source pool
            # so the workload exercises cache hits, not just cold misses.
            rng = np.random.default_rng(args.seed)
            if args.sources > 0:
                pool = rng.choice(n, size=min(args.sources, n), replace=False)
            else:
                pool = np.arange(n)
            pairs = [(int(rng.choice(pool)), int(rng.integers(n)))
                     for _ in range(max(0, args.queries))]
        if not pairs:
            raise SolverError("no queries: pass --pairs-file or --queries > 0")
    except (SolverError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tolerances = bench.verify_tolerances(request.dtype)
    ok = True
    mismatches = 0
    with APSPEngine(config) as engine:
        service = engine.serve(adjacency, request, budget_bytes=budget,
                               max_rows=args.cache_rows)
        for src, dst in pairs:
            try:
                answer = service.route(src, dst)
            except (ValidationError, SolverError) as exc:
                print(f"route {src} -> {dst}: error: {exc}", file=sys.stderr)
                ok = False
                continue
            if args.command == "route" or args.verify:
                line, verdict = serve_mod.format_route(
                    src, dst, answer.path, answer.distance, service.adjacency,
                    service.algebra, tolerances=tolerances)
                healthy = verdict in (serve_mod.ROUTE_OK,
                                      serve_mod.ROUTE_UNREACHABLE)
                if args.command == "route":
                    print(line, file=sys.stderr
                          if verdict == serve_mod.ROUTE_ERROR else sys.stdout)
                elif not healthy:
                    print(line, file=sys.stderr)
                if not healthy:
                    mismatches += 1
                    ok = False
        stats = service.stats()
    if args.command == "route":
        if args.report:
            print(serve_mod.render_report(stats))
        return 0 if ok else 1
    if args.csv:
        row = {key: value for key, value in stats.items()
               if not isinstance(value, dict)}
        for stage in serve_mod.STAGES:
            row[f"stage_{stage}_s"] = stats["stage_seconds"][stage]
            row[f"stage_{stage}_count"] = stats["stage_counts"][stage]
        _emit([row], args)
    else:
        print(serve_mod.render_report(stats))
        if args.verify:
            print(f"  verify: {len(pairs) - mismatches}/{len(pairs)} "
                  "folded route(s) match the closure")
    return 0 if ok else 1


def _update_main(args) -> int:
    """Driver for ``apspark update``: one kept closure, one update batch.

    Solves the instance with ``keep_closure=True``, folds the command line
    into a batch (explicit ``--edge``/``--delete`` first, then ``--batch``
    seeded improving edges), applies it through ``engine.update`` and prints
    the decision: chosen mode, reason, per-kind edge counts, and the cost
    model's incremental-vs-resolve estimates next to the measured time.
    """
    from repro.common.errors import SolverError, ValidationError
    try:
        config = EngineConfig(backend=args.backend, num_executors=args.executors,
                              cores_per_executor=args.cores)
        directed = bool(args.directed)
        adjacency = None
        if args.input is not None:
            loaded = _load_input_graph(args.input)
            adjacency = loaded.adjacency
            directed = directed or loaded.directed
        request = SolveRequest(solver=args.solver, block_size=args.block_size,
                               algebra=args.algebra, dtype=args.dtype,
                               storage=args.storage, layout=args.layout,
                               directed=directed, paths=bool(args.paths))
        if adjacency is None:
            adjacency = bench.graph_for_algebra(args.n, args.seed,
                                                request.algebra,
                                                directed=request.directed)
        edges = []
        for u, v, w in (args.edge or []):
            weight = None if str(w).lower() in ("del", "inf", "none") else float(w)
            edges.append(EdgeUpdate(int(u), int(v), weight))
        for u, v in (args.delete or []):
            edges.append(EdgeUpdate(int(u), int(v), None))
        if args.batch > 0:
            edges.extend(bench.update_batch_for_algebra(
                adjacency.shape[0], args.seed + 7919, request.algebra,
                args.batch))
        if not edges:
            raise ConfigurationError(
                "no updates: pass --edge U V W, --delete U V and/or --batch K")
    except (ConfigurationError, ValidationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    force = None if args.mode == "auto" else args.mode
    try:
        with APSPEngine(config) as engine:
            result = engine.solve(adjacency, request, keep_closure=True)
            print(f"solved n={result.n} ({request.algebra}) in "
                  f"{format_seconds(result.elapsed_seconds)}; closure cached")
            report = engine.update(edges, force=force)
            state = engine.closure
            print(f"update: {report.describe()}")
            print(f"  estimated incremental "
                  f"{format_seconds(report.estimated_incremental_seconds)} vs "
                  f"re-solve {format_seconds(report.estimated_resolve_seconds)}"
                  f"; break-even at {report.break_even_edges} edge(s)")
            ok = True
            if args.verify:
                algebra = get_algebra(request.algebra)
                reference = bench.reference_closure(state.adjacency,
                                                    request.algebra,
                                                    dtype=request.dtype)
                ok = algebra.allclose(state.distances, reference,
                                      **bench.verify_tolerances(request.dtype))
                print(f"verified against the re-closure of the mutated graph: "
                      f"{'OK' if ok else 'MISMATCH'}")
            return 0 if ok else 1
    except (ConfigurationError, ValidationError, SolverError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _chaos_main(args) -> int:
    """Driver for ``apspark chaos``: exit 0 only when recovery was exact."""
    from repro.common.errors import SolverError, ValidationError
    from repro.experiments import chaos
    try:
        plan = chaos.build_fault_plan(
            args.seed, failure_rate=args.failure_rate,
            crash_rate=args.crash_rate, crashes=args.crashes,
            failures=args.failures, delays=args.delays,
            corrupt_writes=args.corrupt_writes, drop_writes=args.drop_writes,
            delay_seconds=args.delay_seconds)
        report = chaos.run_chaos(
            n=args.n, seed=args.seed, solver=args.solver,
            backend=args.backend, algebra=args.algebra,
            block_size=args.block_size, executors=args.executors,
            cores=args.cores, fault_plan=plan,
            update_batches=args.update_batches,
            edges_per_batch=args.edges_per_batch, queries=args.queries,
            progress=(lambda line: None) if args.quiet else print)
    except (ConfigurationError, ValidationError, SolverError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = report.lines()
    if args.quiet:
        lines = lines[-1:]  # just the verdict
    for line in lines:
        print(line, file=sys.stdout if report.exact else sys.stderr)
    return 0 if report.exact else 1


def _emit(rows, args, columns=None) -> None:
    if args.csv:
        sys.stdout.write(rows_to_csv(rows, columns))
    else:
        sys.stdout.write(format_table(rows, columns))


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "figure2":
        rows = figure2.run_projected() if args.mode == "projected" else figure2.run_measured()
        _emit(rows, args)
        return 0

    if args.command == "figure3":
        if args.distribution:
            rows = figure3.run_partition_distribution()
        elif args.mode == "projected":
            rows = figure3.run_projected()
        else:
            rows = figure3.run_measured()
        _emit(rows, args)
        return 0

    if args.command == "table2":
        rows = table2.run_projected() if args.mode == "projected" else table2.run_measured()
        _emit(rows, args)
        return 0

    if args.command == "table3":
        rows = (table3_figure5.run_projected() if args.mode == "projected"
                else table3_figure5.run_measured())
        _emit(rows, args)
        return 0

    if args.command == "solve":
        algebra = get_algebra(args.algebra)
        config = EngineConfig(backend=args.backend, num_executors=args.executors,
                              cores_per_executor=args.cores)
        want_paths = bool(args.paths or args.route is not None)
        adjacency = None
        directed = bool(args.directed)
        try:
            # The input file is loaded first so its own directedness (comment
            # token / MatrixMarket symmetry / structural sniff) can inform
            # layout resolution without a second pass over the data.
            if args.input is not None:
                loaded = _load_input_graph(args.input)
                adjacency = loaded.adjacency
                directed = directed or loaded.directed
            # Fails fast on unsupported solver x algebra / algebra x dtype /
            # algebra x storage / algebra x layout combinations (e.g. the
            # triangular layout with --directed, or packed storage on a
            # numeric algebra — incl. packed + --paths).
            request = SolveRequest(solver=args.solver, block_size=args.block_size,
                                   partitioner=args.partitioner,
                                   algebra=args.algebra, dtype=args.dtype,
                                   storage=args.storage, layout=args.layout,
                                   directed=directed, paths=want_paths)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if adjacency is not None:
            n = adjacency.shape[0]
            kind = "sparse CSR" if sparse_graph.is_sparse(adjacency) else "dense"
            nnz = adjacency.nnz if sparse_graph.is_sparse(adjacency) else None
            print(f"loaded {kind} adjacency from {args.input}: n={n}"
                  + (f", nnz={nnz}" if nnz is not None else "")
                  + (", directed" if directed else ""))
        else:
            adjacency = bench.graph_for_algebra(args.n, args.seed, request.algebra,
                                                directed=request.directed)
        verify = not args.no_verify
        reference = None
        if verify:
            dense_input = (sparse_graph.sparse_to_dense(adjacency, algebra=algebra)
                           if sparse_graph.is_sparse(adjacency) else adjacency)
            reference = bench.reference_closure(dense_input, request.algebra,
                                                dtype=request.dtype)
        tolerances = bench.verify_tolerances(request.dtype)
        with APSPEngine(config) as engine:
            jobs = engine.solve_many([adjacency] * max(1, args.repeat), request)
            correct = True
            result = None
            for job in jobs:
                result = job.result()
                if verify:
                    correct = correct and algebra.allclose(result.distances, reference,
                                                           **tolerances)
                print(f"{job.job_id}: {result.summary()}")
                tuner = result.metrics.get("tuner")
                if tuner:
                    print(f"  auto-tuned: {tuner['solver']} "
                          f"b={tuner['block_size']} "
                          f"storage={tuner['storage']} "
                          f"layout={tuner['layout']} "
                          f"predicted={tuner['predicted_seconds']:.4f}s "
                          f"(default {tuner['default_predicted_seconds']:.4f}s, "
                          f"calibration: {tuner['calibration_source']})")
                print(f"  elapsed: {format_seconds(result.elapsed_seconds)}; "
                      f"shuffled {result.metrics['shuffle_bytes'] / 1e6:.1f} MB; "
                      f"collected {result.metrics['collect_bytes'] / 1e6:.1f} MB; "
                      f"shared-fs {result.metrics['sharedfs_bytes_written'] / 1e6:.1f} MB written")
            stats = engine.stats()
        if args.route is not None and result is not None:
            correct = _print_route(result, adjacency, algebra, args.route,
                                   tolerances) and correct
        if verify:
            print(f"verified against the sequential {request.algebra} closure: "
                  f"{'OK' if correct else 'MISMATCH'}")
        else:
            print("verification skipped (--no-verify)")
        print(f"engine session: {stats['jobs_completed']} job(s) on one context, "
              f"{stats['tasks_launched']} tasks, "
              f"{format_seconds(stats['total_solve_seconds'])} solving")
        return 0 if correct else 1

    if args.command in ("route", "serve"):
        return _serve_main(args)

    if args.command == "update":
        return _update_main(args)

    if args.command == "chaos":
        return _chaos_main(args)

    if args.command == "convert":
        from repro.common.errors import ValidationError
        try:
            n, nnz = graph_io.convert_graph(args.source, args.target)
        except (ValidationError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.target}: n={n}, nnz={nnz} edge(s)")
        return 0

    if args.command == "bench":
        return _bench_main(args)

    if args.command == "solvers":
        rows = [info.as_dict() for info in solver_catalog()]
        _emit(rows, args, columns=["name", "aliases", "pure", "algebras",
                                   "layouts", "description"])
        return 0

    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Figure 3: block size x partitioner x over-decomposition for the blocked solvers.

Top/middle panels: total execution time of Blocked In-Memory (IM) and Blocked
Collect/Broadcast (CB) as a function of the block size, for the default
Portable Hash (PH) partitioner and the multi-diagonal (MD) partitioner, with
B ∈ {1, 2} RDD partitions per core (paper: n = 131,072 on p = 1,024 cores).

Bottom panel: the distribution of RDD partition sizes (blocks per partition)
induced by the two partitioners, which explains the timing differences.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.common.config import EngineConfig
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.blocks import num_blocks, upper_triangular_block_ids
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.spark.partitioner import partitioner_by_name

#: Paper configuration for Figure 3.
PAPER_N = 131072
PAPER_P = 1024
PAPER_BLOCK_SIZES = (512, 768, 1024, 1280, 1536, 1792, 2048)


def partition_size_distribution(n: int, block_size: int, num_partitions: int,
                                partitioner_name: str) -> dict:
    """Reproduce the bottom panel: blocks-per-partition statistics for one partitioner."""
    q = num_blocks(n, block_size)
    partitioner = partitioner_by_name(partitioner_name, num_partitions, q)
    counts = partitioner.distribution(upper_triangular_block_ids(q))
    return {
        "partitioner": partitioner_name.upper(),
        "block_size": block_size,
        "q": q,
        "num_partitions": num_partitions,
        "min_blocks": int(counts.min()),
        "max_blocks": int(counts.max()),
        "mean_blocks": float(counts.mean()),
        "std_blocks": float(counts.std()),
        "empty_partitions": int((counts == 0).sum()),
    }


def run_projected(*, n: int = PAPER_N, p: int = PAPER_P,
                  block_sizes=PAPER_BLOCK_SIZES,
                  cost_model: CostModel | None = None) -> list[dict]:
    """Projected total times at paper scale for IM/CB x {PH, MD} x B ∈ {1, 2}."""
    cm = cost_model or CostModel()
    rows: list[dict] = []
    for solver in ("blocked-im", "blocked-cb"):
        for partitioner in ("PH", "MD"):
            for b_factor in (1, 2):
                for block_size in block_sizes:
                    proj = cm.project(solver, n, block_size, p,
                                      partitioner=partitioner,
                                      partitions_per_core=b_factor)
                    rows.append({
                        "solver": solver,
                        "partitioner": partitioner,
                        "B": b_factor,
                        "block_size": block_size,
                        "total_seconds": proj.projected_total_seconds,
                        "feasible": proj.feasible,
                        "imbalance": proj.iteration.imbalance_factor,
                    })
    return rows


def run_measured(*, n: int = 192, block_sizes=(16, 24, 32, 48, 64),
                 config: EngineConfig | None = None, seed: int = 11,
                 check_correctness: bool = True) -> list[dict]:
    """Measured engine runs at laptop scale (same sweep structure as the paper's)."""
    config = config or EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)
    adjacency = erdos_renyi_adjacency(n, seed=seed)
    reference = floyd_warshall_reference(adjacency) if check_correctness else None
    rows: list[dict] = []
    # The whole sweep shares one engine session (one Spark context), exactly
    # like the paper's long-lived cluster runs.
    with APSPEngine(config) as engine:
        for solver in ("blocked-im", "blocked-cb"):
            for partitioner in ("PH", "MD"):
                for b_factor in (1, 2):
                    for block_size in block_sizes:
                        result = engine.solve(adjacency, SolveRequest(
                            solver=solver, block_size=block_size,
                            partitioner=partitioner, partitions_per_core=b_factor))
                        correct = True
                        if reference is not None:
                            correct = bool(np.allclose(result.distances, reference))
                        rows.append({
                            "solver": solver,
                            "partitioner": partitioner,
                            "B": b_factor,
                            "block_size": block_size,
                            "total_seconds": result.elapsed_seconds,
                            "shuffle_bytes": result.metrics.get("shuffle_bytes", 0),
                            "sharedfs_bytes": result.metrics.get("sharedfs_bytes_written", 0),
                            "correct": correct,
                        })
    return rows


def run_partition_distribution(*, n: int = PAPER_N, p: int = PAPER_P, b_factor: int = 2,
                               block_sizes=PAPER_BLOCK_SIZES) -> list[dict]:
    """Bottom panel of Figure 3 at paper scale (pure bookkeeping, fast)."""
    rows = []
    for partitioner in ("MD", "PH"):
        for block_size in block_sizes:
            rows.append(partition_size_distribution(n, block_size, p * b_factor, partitioner))
    return rows

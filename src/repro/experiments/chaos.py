"""Chaos harness: solve + update + query under a seeded fault schedule.

The fault-tolerance acceptance driver behind ``apspark chaos``.  It runs the
same workload twice on identical engine configurations — once fault-free,
once under a :class:`~repro.spark.faults.FaultPlan` built from the command
line — and verifies that the faulted run is **bit-identical** to the clean
one: recovery (task retries, worker-pool rebuilds, staged-block re-stages,
speculative copies) must never change answers, only counters.

Reproducibility contract: every fault decision is a pure function of
``(seed, task/write index)`` (see :mod:`repro.spark.faults`), so
``apspark chaos --seed S`` injects the same schedule on every invocation
regardless of thread interleaving.  The workload itself (graph, update
batches, query pairs) is generated from the same seed through the bench
helpers.

Exit is nonzero on any exactness violation — a distance mismatch after the
solve, after any update batch, or on any served query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import bench
from repro.common.config import EngineConfig
from repro.common.rng import derive_seed, make_rng
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.spark.faults import FaultPlan

#: Fault-plan counters that say "a fault actually happened" — the run report
#: prints these next to the scheduler's recovery counters so they reconcile.
RECOVERY_COUNTERS = ("tasks_retried", "tasks_recomputed", "worker_restarts",
                     "speculative_launched", "speculative_wins",
                     "task_timeouts", "sharedfs_restages",
                     "sharedfs_integrity_failures")


@dataclass
class ChaosReport:
    """Outcome of one chaos run: verdict, counters, and what was compared."""

    n: int
    solver: str
    backend: str
    seed: int
    exact: bool
    solve_exact: bool
    updates_exact: bool
    queries_exact: bool
    update_batches: int
    queries: int
    failed_queries: int = 0
    injected: dict = field(default_factory=dict)
    recovered: dict = field(default_factory=dict)
    degraded: bool = False

    def lines(self) -> list[str]:
        """Human-readable report, one line per fact."""
        out = [f"chaos: n={self.n} solver={self.solver} "
               f"backend={self.backend} seed={self.seed}",
               "  injected: " + ", ".join(f"{k}={v}" for k, v
                                          in sorted(self.injected.items())),
               "  recovered: " + ", ".join(f"{k}={v}" for k, v
                                           in sorted(self.recovered.items())),
               f"  solve: {'bit-identical' if self.solve_exact else 'MISMATCH'}",
               f"  updates ({self.update_batches} batch(es)): "
               f"{'bit-identical' if self.updates_exact else 'MISMATCH'}",
               f"  queries ({self.queries}): "
               f"{'all match' if self.queries_exact else f'{self.failed_queries} MISMATCH(ES)'}"]
        if self.degraded:
            out.append("  serving went degraded during the run")
        out.append(f"exactness under faults: {'OK' if self.exact else 'VIOLATED'}")
        return out


def build_fault_plan(seed: int, *, failure_rate: float = 0.0,
                     crash_rate: float = 0.0, crashes: int = 0,
                     failures: int = 0, delays: int = 0,
                     corrupt_writes: int = 0, drop_writes: int = 0,
                     delay_seconds: float = 0.05,
                     index_pool: int = 64) -> FaultPlan:
    """Turn chaos-CLI knobs into a concrete :class:`FaultPlan`.

    Count-style knobs (``crashes``, ``failures``, ``delays``,
    ``corrupt_writes``, ``drop_writes``) pick that many *small* indices from
    ``[0, index_pool)`` with a seeded rng — small indices are guaranteed to
    occur early in any non-trivial run, so a requested fault actually fires.
    Rate-style knobs pass through and hit tasks by per-index draw.
    """
    rng = make_rng(derive_seed(seed, 0xC4A05))

    def pick(count: int) -> frozenset[int]:
        if count <= 0:
            return frozenset()
        count = min(int(count), index_pool)
        return frozenset(int(i) for i in
                         rng.choice(index_pool, size=count, replace=False))

    return FaultPlan(fail_task_indices=pick(failures),
                     crash_task_indices=pick(crashes),
                     delay_task_indices=pick(delays),
                     delay_seconds=delay_seconds,
                     corrupt_write_indices=pick(corrupt_writes),
                     drop_write_indices=pick(drop_writes),
                     failure_rate=failure_rate, crash_rate=crash_rate,
                     seed=seed)


def _query_pairs(n: int, seed: int, queries: int) -> list[tuple[int, int]]:
    rng = make_rng(derive_seed(seed, 0x9E37))
    return [(int(rng.integers(n)), int(rng.integers(n)))
            for _ in range(max(0, queries))]


def _run_workload(adjacency, request: SolveRequest, config: EngineConfig,
                  *, fault_plan: FaultPlan | None, update_edge_batches,
                  pairs) -> tuple[np.ndarray, list[np.ndarray], list, dict, dict, bool]:
    """Solve, apply every update batch, answer every query on one engine.

    Returns ``(closure after solve, closures after each batch, query
    distances, engine metrics, injector counters, degraded?)``.  The same
    function runs both the clean and the faulted leg so the two are
    comparable stage by stage.
    """
    with APSPEngine(config, fault_plan=fault_plan) as engine:
        service = engine.serve(adjacency, request)
        solve_distances = np.array(engine.closure.distances, copy=True)
        batch_distances = []
        for batch in update_edge_batches:
            engine.update(batch)
            batch_distances.append(np.array(engine.closure.distances, copy=True))
        answers = []
        for src, dst in pairs:
            answers.append(service.route(src, dst).distance)
        degraded = bool(service.stats().get("degraded", False))
        metrics = engine.metrics
        injected = engine.context.fault_injector.counters()
    return solve_distances, batch_distances, answers, metrics, injected, degraded


def run_chaos(*, n: int = 96, seed: int = 0, solver: str = "blocked-cb",
              backend: str = "threads", algebra: str = "shortest-path",
              block_size: int | None = None, executors: int = 2, cores: int = 2,
              fault_plan: FaultPlan | None = None, update_batches: int = 2,
              edges_per_batch: int = 4, queries: int = 32,
              progress=None) -> ChaosReport:
    """Run the two-leg chaos workload and return the verdict + counters."""
    say = progress or (lambda line: None)
    request = SolveRequest(solver=solver, block_size=block_size,
                           algebra=algebra)
    adjacency = bench.graph_for_algebra(n, seed, request.algebra)
    edges = bench.update_batch_for_algebra(
        n, seed + 7919, request.algebra,
        max(0, update_batches) * max(1, edges_per_batch))
    batches = [edges[i * edges_per_batch:(i + 1) * edges_per_batch]
               for i in range(max(0, update_batches))]
    batches = [b for b in batches if b]
    pairs = _query_pairs(n, seed, queries)
    config = EngineConfig(backend=backend, num_executors=executors,
                          cores_per_executor=cores, seed=seed)

    say(f"clean leg: solve n={n} + {len(batches)} update batch(es) "
        f"+ {len(pairs)} queries on {backend}")
    ref_solve, ref_batches, ref_answers, _, _, _ = _run_workload(
        adjacency, request, config, fault_plan=None,
        update_edge_batches=batches, pairs=pairs)

    plan = fault_plan or FaultPlan()
    say(f"faulted leg: same workload under seeded fault plan (seed={plan.seed})")
    got_solve, got_batches, got_answers, metrics, injected, degraded = _run_workload(
        adjacency, request, config, fault_plan=plan,
        update_edge_batches=batches, pairs=pairs)

    solve_exact = bool(np.array_equal(ref_solve, got_solve))
    updates_exact = (len(ref_batches) == len(got_batches)
                     and all(np.array_equal(a, b) for a, b
                             in zip(ref_batches, got_batches)))
    failed_queries = sum(1 for a, b in zip(ref_answers, got_answers)
                         if not (a == b or (a != a and b != b)))
    queries_exact = failed_queries == 0 and len(ref_answers) == len(got_answers)
    recovered = {key: metrics.get(key, 0) for key in RECOVERY_COUNTERS}
    return ChaosReport(n=n, solver=solver, backend=backend, seed=seed,
                       exact=solve_exact and updates_exact and queries_exact,
                       solve_exact=solve_exact, updates_exact=updates_exact,
                       queries_exact=queries_exact, update_batches=len(batches),
                       queries=len(pairs), failed_queries=failed_queries,
                       injected=injected, recovered=recovered,
                       degraded=degraded)

"""APSPark reproduction: All-Pairs Shortest-Paths solvers in a Spark-like model.

This package reproduces the system described in

    Frank Schoeneman and Jaroslaw Zola,
    "Solving All-Pairs Shortest-Paths Problem in Large Graphs Using Apache Spark",
    ICPP 2019.

The public API is intentionally small:

* :func:`repro.solve_apsp` — front-end that runs any of the four paper solvers
  (``repeated-squaring``, ``fw-2d``, ``blocked-im``, ``blocked-cb``) or the
  sequential / MPI-style baselines on an adjacency matrix or a graph.
* :mod:`repro.graph` — synthetic graph generators used in the evaluation.
* :mod:`repro.spark` — the mini-Spark engine substrate (RDDs, partitioners,
  shuffle accounting, shared-filesystem broadcast).
* :mod:`repro.cluster` — the cluster model and analytic cost models used to
  project paper-scale runtimes (Tables 2 and 3, Figures 3 and 5).
* :mod:`repro.experiments` — one entry point per paper table/figure.
"""

from repro._version import __version__
from repro.core.api import solve_apsp, available_solvers, APSPResult

__all__ = [
    "__version__",
    "solve_apsp",
    "available_solvers",
    "APSPResult",
]

"""APSPark reproduction: All-Pairs Shortest-Paths solvers in a Spark-like model.

This package reproduces the system described in

    Frank Schoeneman and Jaroslaw Zola,
    "Solving All-Pairs Shortest-Paths Problem in Large Graphs Using Apache Spark",
    ICPP 2019.

The public API:

* :class:`repro.APSPEngine` — a persistent solving session owning one Spark
  context for its lifetime; ``engine.solve(adj, request)`` for single solves,
  ``engine.submit(...)`` / ``engine.solve_many(...)`` for batches of
  :class:`repro.APSPJob` with stable job ids and per-job timings.
* :class:`repro.SolveRequest` — typed, validated description of one solve
  (solver, block size, partitioner, over-decomposition).
* :func:`repro.solve_apsp` — one-shot convenience wrapper (ephemeral engine
  per call) kept for backward compatibility.
* :func:`repro.register_solver` — decorator adding new solver classes to the
  open registry; :func:`repro.available_solvers` lists them.
* :mod:`repro.graph` — synthetic graph generators used in the evaluation.
* :mod:`repro.spark` — the mini-Spark engine substrate (RDDs, partitioners,
  shuffle accounting, shared-filesystem broadcast).
* :mod:`repro.cluster` — the cluster model and analytic cost models used to
  project paper-scale runtimes (Tables 2 and 3, Figures 3 and 5).
* :mod:`repro.experiments` — one entry point per paper table/figure.
"""

from repro._version import __version__
from repro.core.api import solve_apsp, available_solvers, APSPResult
from repro.core.engine import APSPEngine, APSPJob
from repro.core.registry import SolverInfo, register_solver, solver_catalog, solver_info
from repro.core.request import SolveRequest
from repro.linalg.algebra import (Semiring, available_algebras, get_algebra,
                                  register_algebra)

__all__ = [
    "__version__",
    "solve_apsp",
    "available_solvers",
    "APSPResult",
    "APSPEngine",
    "APSPJob",
    "SolveRequest",
    "SolverInfo",
    "register_solver",
    "solver_catalog",
    "solver_info",
    "Semiring",
    "available_algebras",
    "get_algebra",
    "register_algebra",
]

"""Engine-wide configuration.

The :class:`EngineConfig` dataclass collects the knobs shared by the
mini-Spark engine and the solvers: execution backend, number of worker
threads ("cores"), number of simulated executors ("nodes"), shuffle spill
accounting, and the shared-filesystem directory used by the impure solvers.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.retry import BackoffPolicy

#: Execution backends supported by the scheduler.
BACKENDS = ("serial", "threads", "processes")


@dataclass
class EngineConfig:
    """Configuration of the mini-Spark engine.

    Parameters
    ----------
    backend:
        ``"serial"`` runs tasks one by one on the driver thread (fully
        deterministic, easiest to debug); ``"threads"`` runs tasks of a stage
        concurrently on a thread pool (NumPy/BLAS kernels release the GIL, so
        this gives real parallelism for the compute-heavy block kernels);
        ``"processes"`` additionally ships picklable task payloads to a
        process pool for GIL-free multi-core execution — tasks that cannot
        be pickled (closure-heavy lineage) transparently fall back to the
        driver's thread pool, so every solver stays correct.
    num_executors:
        Number of simulated executor processes (paper: one per node, 32).
    cores_per_executor:
        Worker threads per executor (paper: 32).  The product
        ``num_executors * cores_per_executor`` plays the role of ``p``.
    local_storage_bytes:
        Per-executor local storage capacity available for shuffle spills
        (paper: 1 TB SSD per node).  ``None`` disables the capacity check.
    track_spills:
        When true, every shuffle write is charged against the executor that
        produced it, and exceeding ``local_storage_bytes`` raises
        :class:`~repro.common.errors.StorageExhaustedError`.
    shared_fs_dir:
        Directory backing the shared-filesystem broadcast channel (paper:
        GPFS).  ``None`` means "create a temporary directory on first use".
    default_parallelism:
        Default number of partitions for RDDs created without an explicit
        partition count.
    fail_on_impure_fault:
        When true, a task failure inside an impure solver raises
        :class:`~repro.common.errors.LineageError` instead of being retried,
        modelling the paper's fault-tolerance caveat.
    retry:
        The :class:`~repro.common.retry.BackoffPolicy` governing every retry
        site (task re-execution, worker-crash recovery, staged-block repair).
        A policy with the default seed 0 is re-seeded deterministically from
        :attr:`seed` by the scheduler so distinct engine sessions decorrelate.
    task_timeout_seconds:
        Explicit soft per-task timeout.  ``None`` derives it from the cost
        model's predicted task wall × :attr:`task_timeout_multiplier` when a
        solver publishes a prediction; without either, no soft timeout.
    task_timeout_multiplier:
        Factor applied to the cost model's predicted per-task wall to obtain
        the soft timeout (stragglers slower than this trigger speculation).
    speculation:
        Launch a speculative copy of a task whose soft timeout expired
        (``threads``/``processes`` backends); first result wins.
    stage_timeout_seconds:
        Hard deadline for one stage.  Expiry raises a diagnosable
        :class:`~repro.common.errors.TaskTimeoutError` instead of hanging.
    staging_lineage_limit:
        Bound on the shared-filesystem lineage registry (staged values the
        driver retains for re-staging lost/corrupt blocks).
    staging_restage_limit:
        Re-stages allowed per staged block before the loss becomes a
        :class:`~repro.common.errors.LineageError`.
    """

    backend: str = "serial"
    num_executors: int = 4
    cores_per_executor: int = 2
    local_storage_bytes: int | None = None
    track_spills: bool = True
    shared_fs_dir: str | None = None
    default_parallelism: int | None = None
    fail_on_impure_fault: bool = True
    seed: int = 1234
    retry: BackoffPolicy = field(default_factory=BackoffPolicy)
    task_timeout_seconds: float | None = None
    task_timeout_multiplier: float = 4.0
    speculation: bool = True
    stage_timeout_seconds: float | None = None
    staging_lineage_limit: int = 256
    staging_restage_limit: int = 3

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        if self.num_executors < 1:
            raise ConfigurationError("num_executors must be >= 1")
        if self.cores_per_executor < 1:
            raise ConfigurationError("cores_per_executor must be >= 1")
        if self.local_storage_bytes is not None and self.local_storage_bytes < 0:
            raise ConfigurationError("local_storage_bytes must be >= 0 or None")
        if self.task_timeout_seconds is not None and self.task_timeout_seconds <= 0:
            raise ConfigurationError("task_timeout_seconds must be > 0 or None")
        if self.task_timeout_multiplier <= 0:
            raise ConfigurationError("task_timeout_multiplier must be > 0")
        if self.stage_timeout_seconds is not None and self.stage_timeout_seconds <= 0:
            raise ConfigurationError("stage_timeout_seconds must be > 0 or None")
        if self.staging_lineage_limit < 0:
            raise ConfigurationError("staging_lineage_limit must be >= 0")
        if self.staging_restage_limit < 0:
            raise ConfigurationError("staging_restage_limit must be >= 0")

    @property
    def total_cores(self) -> int:
        """Total simulated cores ``p`` available to the engine."""
        return self.num_executors * self.cores_per_executor

    @property
    def parallelism(self) -> int:
        """Default number of partitions used when none is requested."""
        if self.default_parallelism is not None:
            return self.default_parallelism
        return max(2, self.total_cores)

    def resolve_shared_fs_dir(self) -> str:
        """Return a usable shared-filesystem directory without mutating the config.

        When :attr:`shared_fs_dir` is set it is created (if needed) and
        returned.  Otherwise a fresh temporary directory is returned — the
        *caller* owns it and is responsible for cleaning it up; the config is
        deliberately left untouched so that a config shared across several
        contexts or engine sessions never smuggles one session's temp dir
        (and its lifetime) into another.
        :class:`~repro.spark.context.SparkContext` implements exactly that
        ownership: it removes the temp dir on ``stop()``.
        """
        if self.shared_fs_dir is None:
            return tempfile.mkdtemp(prefix="apspark-sharedfs-")
        os.makedirs(self.shared_fs_dir, exist_ok=True)
        return self.shared_fs_dir

    def replace(self, **kwargs) -> "EngineConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


def default_config() -> EngineConfig:
    """Return a small, deterministic configuration suitable for tests."""
    return EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)

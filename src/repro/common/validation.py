"""Input-validation helpers shared by solvers and generators."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError

#: Dtypes preserved (not upcast) when a caller asks for ``dtype=None``.
_NATIVE_KINDS = ("f", "b")  # floating and boolean


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_square_matrix(matrix: np.ndarray, name: str = "matrix", *,
                        dtype: np.dtype | str | None = np.float64) -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square array and return it.

    ``dtype`` controls the identity/dtype policy:

    * a concrete dtype (default ``float64`` for backward compatibility)
      casts the result to that dtype;
    * ``None`` *preserves* floating and boolean dtypes (so ``float32``
      pipelines keep their halved memory traffic and the boolean algebra its
      bool blocks) and upcasts anything else — integers, object arrays — to
      ``float64``.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if dtype is None:
        if arr.dtype.kind in _NATIVE_KINDS:
            return arr
        return np.asarray(arr, dtype=np.float64)
    return np.asarray(arr, dtype=dtype)


def check_nonnegative_weights(matrix: np.ndarray, name: str = "matrix", *,
                              algebra=None) -> np.ndarray:
    """Validate ``matrix`` against an algebra's weight precondition.

    Historically this enforced non-negativity unconditionally; that is really
    a (min, +) precondition, so the check now lives behind the algebra's
    input-validator hook: ``most-reliable`` requires weights in ``[0, 1]``,
    ``longest-path`` requires a DAG, and ``reachability`` needs nothing.
    With no ``algebra`` (the default) the behaviour is unchanged — the
    (min, +) non-negativity check on a float64 matrix.
    """
    from repro.linalg.algebra import get_algebra
    resolved = get_algebra(algebra)
    arr = check_square_matrix(matrix, name,
                              dtype=np.float64 if algebra is None else None)
    resolved.validate_input(arr, name)
    return arr


def check_block_size(block_size: int, n: int) -> int:
    """Validate a block-decomposition parameter ``b`` against problem size ``n``."""
    b = check_positive_int(block_size, "block_size")
    check_positive_int(n, "n")
    if b > n:
        raise ValidationError(f"block_size ({b}) must not exceed n ({n})")
    return b


def check_symmetric(matrix: np.ndarray, name: str = "matrix", *, atol: float = 0.0,
                    dtype: np.dtype | str | None = np.float64) -> np.ndarray:
    """Validate that ``matrix`` equals its transpose (treating inf==inf as equal)."""
    arr = check_square_matrix(matrix, name, dtype=dtype)
    if arr.dtype == np.bool_:
        if not bool(np.array_equal(arr, arr.T)):
            raise ValidationError(f"{name} must be symmetric (undirected graph)")
        return arr
    a, at = arr, arr.T
    both_inf = np.isinf(a) & np.isinf(at) & (np.sign(a) == np.sign(at))
    close = np.isclose(a, at, atol=atol, rtol=0.0, equal_nan=True) | both_inf
    if not bool(close.all()):
        raise ValidationError(f"{name} must be symmetric (undirected graph)")
    return arr

"""Input-validation helpers shared by solvers and generators."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_square_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square float array and return it as float64."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    return np.asarray(arr, dtype=np.float64)


def check_nonnegative_weights(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that all finite entries of ``matrix`` are non-negative.

    The paper restricts attention to graphs with no negative cycles; we adopt
    the stronger, simpler restriction to non-negative weights, which all the
    evaluation inputs (Erdős–Rényi with unit/uniform weights) satisfy.
    """
    arr = check_square_matrix(matrix, name)
    finite = arr[np.isfinite(arr)]
    if finite.size and float(finite.min()) < 0.0:
        raise ValidationError(f"{name} contains negative weights; only non-negative "
                              "edge weights are supported")
    return arr


def check_block_size(block_size: int, n: int) -> int:
    """Validate a block-decomposition parameter ``b`` against problem size ``n``."""
    b = check_positive_int(block_size, "block_size")
    check_positive_int(n, "n")
    if b > n:
        raise ValidationError(f"block_size ({b}) must not exceed n ({n})")
    return b


def check_symmetric(matrix: np.ndarray, name: str = "matrix", *, atol: float = 0.0) -> np.ndarray:
    """Validate that ``matrix`` equals its transpose (treating inf==inf as equal)."""
    arr = check_square_matrix(matrix, name)
    a, at = arr, arr.T
    both_inf = np.isinf(a) & np.isinf(at) & (np.sign(a) == np.sign(at))
    close = np.isclose(a, at, atol=atol, rtol=0.0, equal_nan=True) | both_inf
    if not bool(close.all()):
        raise ValidationError(f"{name} must be symmetric (undirected graph)")
    return arr

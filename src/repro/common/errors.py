"""Exception hierarchy for the APSPark reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch one type at the API boundary.  Specific subclasses are raised where
the distinction is actionable — most importantly
:class:`StorageExhaustedError`, which models the paper's observation that the
Blocked In-Memory solver fails when shuffle spills exceed the cluster's local
storage capacity (Section 5.2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An engine, cluster, or solver configuration value is invalid."""


class ValidationError(ReproError):
    """An input (matrix, graph, block size, ...) fails validation."""


class SolverError(ReproError):
    """A solver could not complete (other than by storage exhaustion)."""


class StorageExhaustedError(SolverError):
    """Local (per-node) storage capacity was exceeded by shuffle spills.

    The paper reports this failure mode for the Blocked In-Memory solver at
    small block sizes / large core counts (Section 5.2 and Table 3, the ``–``
    entry for p = 1024).  The shuffle manager raises this when accumulated
    spill volume on any simulated node exceeds
    :attr:`repro.cluster.model.NodeSpec.local_storage_bytes`.
    """

    def __init__(self, message: str, *, node: int | None = None,
                 required_bytes: int | None = None,
                 capacity_bytes: int | None = None) -> None:
        super().__init__(message)
        self.node = node
        self.required_bytes = required_bytes
        self.capacity_bytes = capacity_bytes


class FaultInjectedError(ReproError):
    """Raised by the fault-injection hooks to simulate a task/executor failure."""

    def __init__(self, message: str = "injected fault", *, task_id: int | None = None) -> None:
        super().__init__(message)
        self.task_id = task_id


class WorkerCrashError(SolverError):
    """A worker process died mid-task (real or injected).

    On the ``processes`` backend this wraps ``BrokenProcessPool``: the pool
    that hosted the attempt is garbage, the scheduler rebuilds it, and the
    attempt is retried — lineage recomputation, since the task's input was
    materialized on the driver when the stage was built.  On in-process
    backends the fault injector raises it directly to simulate the same
    executor-loss event.
    """

    def __init__(self, message: str = "worker process died", *,
                 task_id: int | None = None) -> None:
        super().__init__(message)
        self.task_id = task_id


class TaskTimeoutError(SolverError):
    """A stage exceeded its hard deadline (diagnosable fail-fast).

    Carries enough context to debug the hang: which stage kind, how many of
    its tasks completed, and the deadline that was blown.  Distinct from the
    *soft* per-task timeout, which never raises — it launches a speculative
    copy instead.
    """

    def __init__(self, message: str, *, stage_kind: str | None = None,
                 completed: int | None = None, total: int | None = None,
                 timeout_seconds: float | None = None) -> None:
        super().__init__(message)
        self.stage_kind = stage_kind
        self.completed = completed
        self.total = total
        self.timeout_seconds = timeout_seconds


class StagingError(ReproError):
    """A staged shared-filesystem block is missing or failed checksum verification.

    Retryable *if* the driver still holds the staged value in its bounded
    lineage registry (the block is then re-staged and the task re-run);
    otherwise it escalates to :class:`LineageError`, the paper's impure-solver
    caveat.  ``name`` is the key or path the reader asked for.
    """

    def __init__(self, message: str, *, name: str | None = None,
                 corrupt: bool = False) -> None:
        super().__init__(message)
        self.name = name
        self.corrupt = corrupt


class LineageError(ReproError):
    """A lost partition could not be recomputed from lineage.

    This is the behaviour the paper calls *impure*: solvers that stash data in
    a shared file system outside of RDD lineage are not guaranteed to recover
    from task failures.
    """

"""Deterministic-jitter exponential backoff shared by every retry site.

Spark retries a failed task up to ``spark.task.maxFailures`` times; real
deployments space those attempts out so a transiently-overloaded executor (or
a shared file system mid-failover) is not hammered at full rate.  The engine's
retry sites — task re-execution after an injected fault, worker-crash
recovery, staged-block re-reads — all draw their sleep schedule from one
:class:`BackoffPolicy` so behaviour is uniform and, crucially for this
reproduction, *deterministic*: the jitter term is seeded through
:func:`repro.common.rng.derive_seed` from ``(seed, site key, attempt)``, so a
given fault schedule produces the same sleeps (and the same metrics) on every
run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed, make_rng

#: Maximum attempts per task (Spark's default ``spark.task.maxFailures`` is 4).
DEFAULT_MAX_ATTEMPTS = 4


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt ``k`` (1-based: the delay *before* retry
    ``k``) is ``min(max_seconds, base_seconds * multiplier**(k-1))`` scaled
    down by up to ``jitter`` (a fraction in ``[0, 1]``) using a generator
    seeded from ``(seed, key, attempt)`` — two processes replaying the same
    schedule sleep identically, yet distinct tasks (distinct ``key``) decorrelate.

    The defaults are sized for this in-process simulator: short enough that a
    test exercising all four attempts costs ~100 ms, long enough to be
    observable in metrics and to give a genuinely broken pool time to reap.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_seconds: float = 0.01
    multiplier: float = 2.0
    max_seconds: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_seconds < 0.0:
            raise ConfigurationError("base_seconds must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_seconds < 0.0:
            raise ConfigurationError("max_seconds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay(self, attempt: int, *, key: int = 0) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based) at site ``key``.

        Deterministic: the same ``(seed, key, attempt)`` triple always yields
        the same delay.  ``attempt <= 0`` (the first execution) sleeps 0.
        """
        if attempt <= 0:
            return 0.0
        raw = min(self.max_seconds,
                  self.base_seconds * self.multiplier ** (attempt - 1))
        if raw <= 0.0 or self.jitter <= 0.0:
            return raw
        rng = make_rng(derive_seed(self.seed, int(key), int(attempt)))
        return raw * (1.0 - self.jitter * float(rng.random()))

    def sleep(self, attempt: int, *, key: int = 0) -> float:
        """Sleep for :meth:`delay` seconds and return the slept duration."""
        seconds = self.delay(attempt, key=key)
        if seconds > 0.0:
            time.sleep(seconds)
        return seconds

    def reseed(self, seed: int) -> "BackoffPolicy":
        """This policy with a different jitter seed (config -> scheduler wiring)."""
        if seed == self.seed:
            return self
        import dataclasses
        return dataclasses.replace(self, seed=int(seed))

"""Deterministic random-number-generation helpers.

Everything stochastic in the library (graph generation, fault injection,
synthetic blocks for benchmarks) goes through :func:`make_rng` so that runs
are reproducible given a seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` (non-deterministic entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from a parent seed.

    Used when work is split across partitions/tasks and each task needs its
    own statistically independent stream (e.g. per-partition edge sampling in
    the distributed Erdős–Rényi generator).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    parent = make_rng(seed)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)] \
        if hasattr(parent.bit_generator, "seed_seq") and parent.bit_generator.seed_seq is not None \
        else [np.random.default_rng(parent.integers(0, 2**63 - 1)) for _ in range(count)]


def derive_seed(seed: int, *components: int) -> int:
    """Derive a stable 63-bit seed from a base seed and integer components."""
    mask = (1 << 64) - 1
    h = (int(seed) * 0x9E3779B97F4A7C15) & mask
    for c in components:
        h ^= (int(c) + 0x9E3779B97F4A7C15 + ((h << 6) & mask) + (h >> 2)) & mask
        h &= mask
    return h & 0x7FFFFFFFFFFFFFFF

"""Lightweight timing helpers used throughout the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating timer: supports repeated start/stop cycles.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    count: int = 0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the timer and return self."""
        if self._started is not None:
            raise RuntimeError("timer already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        if self._started is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self.count += 1
        self._started = None
        return delta

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean duration per start/stop cycle."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        """Clear any recorded interval."""
        self.elapsed = 0.0
        self.count = 0
        self._started = None


class Stopwatch:
    """Named-section stopwatch used to break a run into labelled phases."""

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    @contextmanager
    def section(self, name: str):
        """Context manager timing one named section (accumulates on reuse)."""
        timer = self._timers.setdefault(name, Timer())
        timer.start()
        try:
            yield timer
        finally:
            timer.stop()

    def elapsed(self, name: str) -> float:
        """Seconds accumulated by one named section."""
        return self._timers[name].elapsed if name in self._timers else 0.0

    def as_dict(self) -> dict[str, float]:
        """Section-name to seconds mapping (a copy)."""
        return {name: t.elapsed for name, t in self._timers.items()}

    def total(self) -> float:
        """Seconds across all sections."""
        return sum(t.elapsed for t in self._timers.values())


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's tables do (``8h9m``, ``1m55s``, ``45s``).

    Durations of a day or more are formatted as ``NdHHh`` (e.g. ``9d16h``),
    matching the "Projected" column of Table 2.
    """
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if seconds < 60:
        return f"{seconds:.0f}s" if seconds >= 10 else f"{seconds:.2g}s"
    minutes, sec = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{sec}s"
    hours, minutes = divmod(minutes, 60)
    if hours < 24:
        return f"{hours}h{minutes}m"
    days, hours = divmod(hours, 24)
    return f"{days}d{hours}h"

"""Shared utilities: errors, configuration, RNG, timing, and validation."""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    StorageExhaustedError,
    SolverError,
    ValidationError,
    FaultInjectedError,
)
from repro.common.config import EngineConfig, default_config
from repro.common.rng import make_rng, spawn_rngs
from repro.common.timing import Timer, Stopwatch, format_seconds
from repro.common.validation import (
    check_square_matrix,
    check_nonnegative_weights,
    check_block_size,
    check_positive_int,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StorageExhaustedError",
    "SolverError",
    "ValidationError",
    "FaultInjectedError",
    "EngineConfig",
    "default_config",
    "make_rng",
    "spawn_rngs",
    "Timer",
    "Stopwatch",
    "format_seconds",
    "check_square_matrix",
    "check_nonnegative_weights",
    "check_block_size",
    "check_positive_int",
]

"""Sequential min-plus repeated squaring APSP (the non-distributed analogue of Section 4.2)."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg.semiring import minplus_square, minplus_closure_iterations


def repeated_squaring_apsp(adjacency: np.ndarray, *, return_iterations: bool = False):
    """APSP by repeated min-plus squaring of the adjacency matrix.

    Performs ``ceil(log2(n - 1))`` squarings, each ``O(n^3)``; asymptotically
    a ``log n`` factor worse than Floyd-Warshall, exactly the trade-off the
    paper discusses for its distributed Repeated Squaring solver.
    """
    adj = validate_adjacency(adjacency)
    n = adj.shape[0]
    iterations = minplus_closure_iterations(n)
    result = adj.copy()
    for _ in range(iterations):
        result = minplus_square(result)
    if return_iterations:
        return result, iterations
    return result

"""Sequential semiring repeated squaring (the non-distributed analogue of Section 4.2)."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.semiring import semiring_square, closure_iterations


def repeated_squaring_apsp(adjacency: np.ndarray, *, return_iterations: bool = False,
                           algebra: Semiring | str | None = None,
                           dtype=None, paths: bool = False):
    """Path closure by repeated semiring squaring of the adjacency matrix.

    Performs ``ceil(log2(n - 1))`` squarings, each ``O(n^3)``; asymptotically
    a ``log n`` factor worse than Floyd-Warshall, exactly the trade-off the
    paper discusses for its distributed Repeated Squaring solver.  Under the
    default algebra this is min-plus APSP; other registered algebras (widest
    path, reachability, ...) use the same iteration bound.  With
    ``paths=True`` the closure is computed on witnessed blocks and the
    result is ``(distances, parents)`` (prepended to the iteration count
    when ``return_iterations`` is also set).
    """
    from repro.linalg import witness as witness_mod
    resolved = get_algebra(algebra)
    adj = validate_adjacency(adjacency, algebra=resolved, dtype=dtype)
    n = adj.shape[0]
    iterations = closure_iterations(n)
    result = witness_mod.witness_matrix(adj, resolved) if paths else adj.copy()
    for _ in range(iterations):
        result = semiring_square(result, resolved)
    if paths:
        parents, _ = witness_mod.repair_parents(result.values, result.parents,
                                                adj, resolved)
        result = (result.values, parents)
        return (*result, iterations) if return_iterations else result
    if return_iterations:
        return result, iterations
    return result

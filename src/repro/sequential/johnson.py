"""Johnson's APSP algorithm (Bellman-Ford reweighting + per-source Dijkstra).

The paper mentions Johnson's algorithm as the other classic sequential APSP
approach (Section 3), with complexity ``O(|V||E| + |V|^2 log |V|)``.  Although
the library restricts inputs to non-negative weights (where reweighting is a
no-op numerically), the full algorithm — including the virtual source and the
Bellman-Ford potentials — is implemented so directed graphs with negative
edges (but no negative cycles) are also handled correctly.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SolverError, ValidationError
from repro.common.validation import check_square_matrix
from repro.sequential.dijkstra import dijkstra_single_source, _adjacency_lists


def bellman_ford(adjacency: np.ndarray, source: int) -> np.ndarray:
    """Single-source shortest paths with Bellman-Ford (handles negative edges).

    Raises :class:`~repro.common.errors.SolverError` if a negative cycle is
    reachable from ``source``.
    """
    arr = check_square_matrix(adjacency)
    n = arr.shape[0]
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    rows, cols = np.nonzero(np.isfinite(arr))
    edges = [(int(u), int(v), float(arr[u, v])) for u, v in zip(rows, cols) if u != v]
    for _ in range(n - 1):
        changed = False
        for u, v, w in edges:
            if np.isfinite(dist[u]) and dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    for u, v, w in edges:
        if np.isfinite(dist[u]) and dist[u] + w < dist[v] - 1e-12:
            raise SolverError("negative cycle detected")
    return dist


def johnson_apsp(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths via Johnson's algorithm.

    A virtual source connected to every vertex with weight 0 is used to compute
    Bellman-Ford potentials ``h``; edges are reweighted as
    ``w'(u, v) = w(u, v) + h(u) - h(v)`` (non-negative), Dijkstra runs from
    every source on the reweighted graph, and distances are shifted back.
    """
    arr = check_square_matrix(adjacency)
    n = arr.shape[0]
    # Augmented graph with virtual source n connected to all vertices at cost 0.
    aug = np.full((n + 1, n + 1), np.inf, dtype=np.float64)
    aug[:n, :n] = arr
    aug[n, :n] = 0.0
    np.fill_diagonal(aug, 0.0)
    h = bellman_ford(aug, n)[:n]
    if not np.all(np.isfinite(h)):
        # Vertices unreachable from the virtual source cannot happen (it links
        # to everyone), so this indicates numerical trouble.
        raise SolverError("Johnson potentials are not finite")
    # Reweight: w'(u, v) = w(u, v) + h[u] - h[v]  >= 0.
    reweighted = arr + h[:, None] - h[None, :]
    reweighted[~np.isfinite(arr)] = np.inf
    np.fill_diagonal(reweighted, 0.0)
    # Clip tiny negatives introduced by floating-point cancellation.
    reweighted[np.isfinite(reweighted) & (reweighted < 0)] = 0.0
    lists = _adjacency_lists(reweighted)
    out = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        d = dijkstra_single_source(reweighted, s, adjacency_lists=lists)
        out[s, :] = d - h[s] + h
    np.fill_diagonal(out, np.minimum(np.diag(out), 0.0) * 0.0)
    return out

"""Sequential reference APSP solvers.

These provide ground truth for the distributed solvers and the ``T1``
sequential baseline used in the weak-scaling analysis (Section 5.4).  Both
classic algorithm families mentioned in the paper (Section 3) are included:
Floyd-Warshall derivatives and Johnson's algorithm (Bellman-Ford reweighting
plus per-source Dijkstra).
"""

from repro.sequential.floyd_warshall import (
    floyd_warshall_reference,
    floyd_warshall_numpy,
    floyd_warshall_blocked,
)
from repro.sequential.dijkstra import dijkstra_single_source, apsp_dijkstra
from repro.sequential.johnson import johnson_apsp, bellman_ford
from repro.sequential.repeated_squaring import repeated_squaring_apsp

__all__ = [
    "floyd_warshall_reference",
    "floyd_warshall_numpy",
    "floyd_warshall_blocked",
    "dijkstra_single_source",
    "apsp_dijkstra",
    "johnson_apsp",
    "bellman_ford",
    "repeated_squaring_apsp",
]

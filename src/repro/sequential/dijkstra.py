"""Binary-heap Dijkstra and the Dijkstra-per-source APSP baseline."""

from __future__ import annotations

import heapq

import numpy as np

from repro.common.errors import ValidationError
from repro.graph.adjacency import validate_adjacency


def _adjacency_lists(adjacency: np.ndarray) -> list[list[tuple[int, float]]]:
    """Convert a dense adjacency matrix to per-vertex (neighbour, weight) lists.

    All finite off-diagonal entries are edges (including zero-weight edges,
    which Johnson's reweighting produces for shortest-path tree edges).
    """
    n = adjacency.shape[0]
    off_diagonal = ~np.eye(n, dtype=bool)
    rows, cols = np.nonzero(np.isfinite(adjacency) & off_diagonal)
    lists: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u, v in zip(rows.tolist(), cols.tolist()):
        lists[u].append((v, float(adjacency[u, v])))
    return lists


def dijkstra_single_source(adjacency: np.ndarray, source: int,
                           *, adjacency_lists: list[list[tuple[int, float]]] | None = None
                           ) -> np.ndarray:
    """Shortest-path distances from ``source`` using a binary heap.

    Requires non-negative edge weights (checked by
    :func:`~repro.graph.adjacency.validate_adjacency` when ``adjacency_lists``
    is not pre-supplied).
    """
    if adjacency_lists is None:
        adjacency = validate_adjacency(adjacency)
        adjacency_lists = _adjacency_lists(adjacency)
    n = len(adjacency_lists)
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, w in adjacency_lists[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def apsp_dijkstra(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths by running Dijkstra from every source.

    Complexity ``O(n (m + n) log n)`` — the baseline the paper contrasts with
    Floyd-Warshall derivatives for sparse graphs (Section 3).
    """
    adjacency = validate_adjacency(adjacency)
    n = adjacency.shape[0]
    lists = _adjacency_lists(adjacency)
    out = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        out[s, :] = dijkstra_single_source(adjacency, s, adjacency_lists=lists)
    return out

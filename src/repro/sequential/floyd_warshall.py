"""Sequential Floyd-Warshall variants (algebra-parameterized)."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg import witness as witness_mod
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.kernels import (
    floyd_warshall_inplace,
    floyd_warshall_scipy,
    blocked_floyd_warshall_inplace,
)


def floyd_warshall_reference(adjacency: np.ndarray) -> np.ndarray:
    """SciPy-backed Floyd-Warshall — the paper's ``T1`` sequential baseline.

    This is the solver the paper calls "efficient sequential Floyd-Warshall as
    implemented in SciPy" (Section 5.4).  (min, +)/float64 only — use
    :func:`floyd_warshall_numpy` for other algebras.
    """
    adj = validate_adjacency(adjacency)
    return floyd_warshall_scipy(adj)


def _finalize_witnessed(block, prepared: np.ndarray, algebra: Semiring):
    """Extract ``(distances, parents)`` from a solved witnessed matrix.

    Applies the plateau-consistency repair (see
    :func:`repro.linalg.witness.repair_parents`) so the returned predecessor
    matrix is walk-consistent for every source.
    """
    parents, _ = witness_mod.repair_parents(block.values, block.parents,
                                            prepared, algebra)
    return block.values, parents


def floyd_warshall_numpy(adjacency: np.ndarray, *,
                         algebra: Semiring | str | None = None,
                         dtype=None, paths: bool = False):
    """Pure NumPy Floyd-Warshall (vectorized rank-1 updates per pivot).

    Generic over the path algebra: pass ``algebra="widest-path"`` (etc.) to
    compute the closure under a different semiring, and ``dtype="float32"``
    to halve memory traffic.  The DAG-only ``longest-path`` algebra is
    supported here (inputs need not be symmetric), unlike in the distributed
    solvers.  With ``paths=True`` returns ``(distances, parents)`` where
    ``parents`` is the predecessor matrix of
    :func:`repro.linalg.witness.reconstruct_path`.
    """
    resolved = get_algebra(algebra)
    adj = validate_adjacency(adjacency, algebra=resolved, dtype=dtype)
    if not paths:
        return floyd_warshall_inplace(adj, resolved)
    witnessed = witness_mod.witness_matrix(adj, resolved)
    floyd_warshall_inplace(witnessed, resolved)
    return _finalize_witnessed(witnessed, adj, resolved)


def floyd_warshall_blocked(adjacency: np.ndarray, block_size: int, *,
                           algebra: Semiring | str | None = None,
                           dtype=None, paths: bool = False):
    """Cache-blocked Floyd-Warshall of Venkataraman et al. on a single machine.

    This is the sequential analogue of the Blocked In-Memory / Blocked
    Collect-Broadcast distributed solvers, useful both as ground truth and for
    the single-block benchmarks of Figure 2.  Generic over the path algebra.
    With ``paths=True`` returns ``(distances, parents)``.
    """
    resolved = get_algebra(algebra)
    adj = validate_adjacency(adjacency, algebra=resolved, dtype=dtype)
    if not paths:
        return blocked_floyd_warshall_inplace(adj, block_size, resolved)
    witnessed = witness_mod.witness_matrix(adj, resolved)
    blocked_floyd_warshall_inplace(witnessed, block_size, resolved)
    return _finalize_witnessed(witnessed, adj, resolved)

"""Sequential Floyd-Warshall variants (algebra-parameterized)."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.kernels import (
    floyd_warshall_inplace,
    floyd_warshall_scipy,
    blocked_floyd_warshall_inplace,
)


def floyd_warshall_reference(adjacency: np.ndarray) -> np.ndarray:
    """SciPy-backed Floyd-Warshall — the paper's ``T1`` sequential baseline.

    This is the solver the paper calls "efficient sequential Floyd-Warshall as
    implemented in SciPy" (Section 5.4).  (min, +)/float64 only — use
    :func:`floyd_warshall_numpy` for other algebras.
    """
    adj = validate_adjacency(adjacency)
    return floyd_warshall_scipy(adj)


def floyd_warshall_numpy(adjacency: np.ndarray, *,
                         algebra: Semiring | str | None = None,
                         dtype=None) -> np.ndarray:
    """Pure NumPy Floyd-Warshall (vectorized rank-1 updates per pivot).

    Generic over the path algebra: pass ``algebra="widest-path"`` (etc.) to
    compute the closure under a different semiring, and ``dtype="float32"``
    to halve memory traffic.  The DAG-only ``longest-path`` algebra is
    supported here (inputs need not be symmetric), unlike in the distributed
    solvers.
    """
    resolved = get_algebra(algebra)
    adj = validate_adjacency(adjacency, algebra=resolved, dtype=dtype)
    return floyd_warshall_inplace(adj, resolved)


def floyd_warshall_blocked(adjacency: np.ndarray, block_size: int, *,
                           algebra: Semiring | str | None = None,
                           dtype=None) -> np.ndarray:
    """Cache-blocked Floyd-Warshall of Venkataraman et al. on a single machine.

    This is the sequential analogue of the Blocked In-Memory / Blocked
    Collect-Broadcast distributed solvers, useful both as ground truth and for
    the single-block benchmarks of Figure 2.  Generic over the path algebra.
    """
    resolved = get_algebra(algebra)
    adj = validate_adjacency(adjacency, algebra=resolved, dtype=dtype)
    return blocked_floyd_warshall_inplace(adj, block_size, resolved)

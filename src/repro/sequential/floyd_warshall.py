"""Sequential Floyd-Warshall variants."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg.kernels import (
    floyd_warshall_inplace,
    floyd_warshall_scipy,
    blocked_floyd_warshall_inplace,
)


def floyd_warshall_reference(adjacency: np.ndarray) -> np.ndarray:
    """SciPy-backed Floyd-Warshall — the paper's ``T1`` sequential baseline.

    This is the solver the paper calls "efficient sequential Floyd-Warshall as
    implemented in SciPy" (Section 5.4).
    """
    adj = validate_adjacency(adjacency)
    return floyd_warshall_scipy(adj)


def floyd_warshall_numpy(adjacency: np.ndarray) -> np.ndarray:
    """Pure NumPy Floyd-Warshall (vectorized rank-1 updates per pivot)."""
    adj = validate_adjacency(adjacency)
    return floyd_warshall_inplace(adj.copy())


def floyd_warshall_blocked(adjacency: np.ndarray, block_size: int) -> np.ndarray:
    """Cache-blocked Floyd-Warshall of Venkataraman et al. on a single machine.

    This is the sequential analogue of the Blocked In-Memory / Blocked
    Collect-Broadcast distributed solvers, useful both as ground truth and for
    the single-block benchmarks of Figure 2.
    """
    adj = validate_adjacency(adjacency)
    return blocked_floyd_warshall_inplace(adj.copy(), block_size)

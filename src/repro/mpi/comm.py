"""A simulated MPI communicator: thread-per-rank SPMD execution with accounting.

Only the operations the baselines need are implemented — ``send``/``recv``,
``bcast``, ``allgather``, ``gather``, ``barrier`` and sub-communicators by
colour (``split``) — following mpi4py's lower-case, pickle-based object API.
Every transfer is counted (messages and bytes) so the cost model can translate
the communication structure into projected cluster times.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.spark.util import estimate_size


@dataclass
class CommStats:
    """Aggregate communication counters for one SPMD run."""

    messages: int = 0
    bytes_sent: int = 0
    broadcasts: int = 0
    broadcast_bytes: int = 0
    allgathers: int = 0
    allgather_bytes: int = 0
    barriers: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_message(self, nbytes: int) -> None:
        """Count one point-to-point message of the given size."""
        with self._lock:
            self.messages += 1
            self.bytes_sent += nbytes

    def record_broadcast(self, nbytes: int, fanout: int) -> None:
        """Count one broadcast of the given payload size."""
        with self._lock:
            self.broadcasts += 1
            self.broadcast_bytes += nbytes * max(0, fanout)

    def record_allgather(self, nbytes: int, participants: int) -> None:
        """Count one allgather of the given payload size."""
        with self._lock:
            self.allgathers += 1
            self.allgather_bytes += nbytes * max(0, participants - 1)

    def record_barrier(self) -> None:
        """Count one barrier synchronization."""
        with self._lock:
            self.barriers += 1

    def as_dict(self) -> dict:
        """Counter snapshot as a plain dict."""
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "broadcasts": self.broadcasts,
            "broadcast_bytes": self.broadcast_bytes,
            "allgathers": self.allgathers,
            "allgather_bytes": self.allgather_bytes,
            "barriers": self.barriers,
        }


class _SharedState:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int, stats: CommStats) -> None:
        self.size = size
        self.stats = stats
        self.mailboxes = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }
        self.barrier = threading.Barrier(size)
        self.collect_slots: list = [None] * size
        self.collect_lock = threading.Lock()


class SimulatedComm:
    """Per-rank handle to a simulated communicator (mpi4py-like lower-case API)."""

    def __init__(self, rank: int, shared: _SharedState) -> None:
        self._rank = rank
        self._shared = shared

    # -- topology ---------------------------------------------------------------
    def get_rank(self) -> int:
        """This process's rank in the communicator."""
        return self._rank

    def get_size(self) -> int:
        """Number of ranks in the communicator."""
        return self._shared.size

    # mpi4py-style aliases
    Get_rank = get_rank
    Get_size = get_size

    # -- point to point ------------------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Send a payload to one rank (records stats)."""
        if not (0 <= dest < self._shared.size):
            raise ConfigurationError(f"invalid destination rank {dest}")
        self._shared.stats.record_message(estimate_size(obj))
        self._shared.mailboxes[(self._rank, dest)].put((tag, obj))

    def recv(self, source: int, tag: int = 0, timeout: float = 60.0):
        """Blocking receive from a specific rank and tag."""
        box = self._shared.mailboxes[(source, self._rank)]
        stash = []
        try:
            while True:
                got_tag, obj = box.get(timeout=timeout)
                if got_tag == tag:
                    for item in stash:
                        box.put(item)
                    return obj
                stash.append((got_tag, obj))
        except queue.Empty as exc:  # pragma: no cover - deadlock guard
            raise ConfigurationError(
                f"rank {self._rank} timed out waiting for rank {source} tag {tag}") from exc

    # -- collectives -----------------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        self._shared.stats.record_barrier()
        self._shared.barrier.wait()

    def bcast(self, obj, root: int = 0):
        """Broadcast ``obj`` from ``root`` to all ranks and return it everywhere."""
        if self._rank == root:
            self._shared.stats.record_broadcast(estimate_size(obj), self._shared.size - 1)
            with self._shared.collect_lock:
                self._shared.collect_slots[root] = obj
        self._shared.barrier.wait()
        value = self._shared.collect_slots[root]
        self._shared.barrier.wait()
        return value

    def gather(self, obj, root: int = 0):
        """Gather one object per rank at ``root`` (returns the list at root, None elsewhere)."""
        with self._shared.collect_lock:
            self._shared.collect_slots[self._rank] = obj
        if self._rank != root:
            self._shared.stats.record_message(estimate_size(obj))
        self._shared.barrier.wait()
        result = list(self._shared.collect_slots) if self._rank == root else None
        self._shared.barrier.wait()
        return result

    def allgather(self, obj):
        """Gather one object per rank and return the full list on every rank."""
        self._shared.stats.record_allgather(estimate_size(obj), self._shared.size)
        with self._shared.collect_lock:
            self._shared.collect_slots[self._rank] = obj
        self._shared.barrier.wait()
        result = list(self._shared.collect_slots)
        self._shared.barrier.wait()
        return result


def run_spmd(size: int, func: Callable[[SimulatedComm], object], *,
             timeout: float = 300.0) -> tuple[list, CommStats]:
    """Run ``func(comm)`` on ``size`` ranks (threads) and return per-rank results + stats."""
    if size < 1:
        raise ConfigurationError("size must be >= 1")
    stats = CommStats()
    shared = _SharedState(size, stats)
    results: list = [None] * size
    errors: list = [None] * size

    def worker(rank: int) -> None:
        """Thread body running one simulated rank."""
        comm = SimulatedComm(rank, shared)
        try:
            results[rank] = func(comm)
        except BaseException as exc:  # propagate to the caller
            errors[rank] = exc
            try:
                shared.barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=worker, args=(r,), name=f"mpi-rank-{r}")
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    for rank, exc in enumerate(errors):
        if exc is not None:
            raise exc
    return results, stats

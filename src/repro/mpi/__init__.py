"""Message-passing substrate and the MPI-style baseline solvers of Section 5.5.

The paper contrasts its Spark solvers with two MPI codes run on the same
cluster: a straightforward 2D-decomposed Floyd-Warshall (``FW-2D-GbE``) and
Solomonik's communication-avoiding divide-and-conquer solver (``DC-GbE``).
Neither MPI nor the cluster is available here, so this package provides

* :class:`~repro.mpi.comm.SimulatedComm` — an in-process, thread-per-rank
  communicator with point-to-point and collective operations and full
  message/byte accounting, and
* the two baselines implemented on top of it
  (:func:`~repro.mpi.fw2d.fw2d_mpi_apsp`) or as an exact sequential algorithm
  (:func:`~repro.mpi.divide_conquer.dc_apsp`), with their cluster-scale
  runtimes projected by :mod:`repro.cluster.costmodel`.
"""

from repro.mpi.comm import SimulatedComm, CommStats, run_spmd
from repro.mpi.fw2d import fw2d_mpi_apsp
from repro.mpi.divide_conquer import dc_apsp, dc_apsp_with_stats

__all__ = [
    "SimulatedComm",
    "CommStats",
    "run_spmd",
    "fw2d_mpi_apsp",
    "dc_apsp",
    "dc_apsp_with_stats",
]

"""FW-2D-GbE baseline: 2D-decomposed parallel Floyd-Warshall over message passing.

This is the "naive MPI" comparator of Section 5.5: processors form a
``g x g`` grid, each owning an ``(n/g) x (n/g)`` block of the distance matrix;
in iteration ``k`` the owners of row ``k`` broadcast their row segments down
their grid column, the owners of column ``k`` broadcast their column segments
along their grid row, and every rank applies the rank-1 update locally.  The
implementation runs on :class:`~repro.mpi.comm.SimulatedComm`, so results are
exact and the communication volume is measured; cluster-scale runtimes are
projected separately by the cost model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.graph.adjacency import validate_adjacency
from repro.mpi.comm import SimulatedComm, run_spmd


def _grid_dim(num_ranks: int) -> int:
    g = int(round(math.sqrt(num_ranks)))
    if g * g != num_ranks:
        raise ConfigurationError(
            f"FW-2D requires a square number of ranks, got {num_ranks}")
    return g


def fw2d_mpi_apsp(adjacency: np.ndarray, num_ranks: int = 4,
                  *, return_stats: bool = False):
    """Solve APSP with the 2D message-passing Floyd-Warshall on ``num_ranks`` simulated ranks.

    ``num_ranks`` must be a perfect square and the grid dimension must divide
    ``n``.  Returns the distance matrix (and the communication statistics when
    ``return_stats`` is true).
    """
    adj = validate_adjacency(adjacency, require_symmetric=False)
    n = adj.shape[0]
    g = _grid_dim(num_ranks)
    if n % g != 0:
        raise ConfigurationError(f"grid dimension {g} must divide n={n}")
    bs = n // g

    def rank_main(comm: SimulatedComm):
        """Per-rank body of the simulated 2-D Floyd-Warshall."""
        rank = comm.get_rank()
        my_row, my_col = divmod(rank, g)
        local = np.array(adj[my_row * bs:(my_row + 1) * bs,
                             my_col * bs:(my_col + 1) * bs], copy=True)
        for k in range(n):
            owner = k // bs          # grid row/column owning global row/column k
            k_local = k % bs
            # Row k segment for my column range, broadcast down the grid column.
            if my_row == owner:
                row_seg = np.array(local[k_local, :], copy=True)
                for r in range(g):
                    if r != my_row:
                        comm.send(row_seg, dest=r * g + my_col, tag=2 * k)
            else:
                row_seg = comm.recv(source=owner * g + my_col, tag=2 * k)
            # Column k segment for my row range, broadcast along the grid row.
            if my_col == owner:
                col_seg = np.array(local[:, k_local], copy=True)
                for c in range(g):
                    if c != my_col:
                        comm.send(col_seg, dest=my_row * g + c, tag=2 * k + 1)
            else:
                col_seg = comm.recv(source=my_row * g + owner, tag=2 * k + 1)
            np.minimum(local, col_seg[:, None] + row_seg[None, :], out=local)
        return (my_row, my_col, local)

    results, stats = run_spmd(g * g, rank_main)
    out = np.empty((n, n), dtype=np.float64)
    for my_row, my_col, local in results:
        out[my_row * bs:(my_row + 1) * bs, my_col * bs:(my_col + 1) * bs] = local
    if return_stats:
        return out, stats
    return out

"""DC-GbE baseline: communication-avoiding divide-and-conquer APSP (Solomonik et al.).

The recursive formulation splits the distance matrix into four quadrants and
alternates recursive closures of the diagonal quadrants with min-plus products
of the off-diagonal ones:

    A = FW(A);  B = A ⊗ B;  C = C ⊗ A;  D = min(D, C ⊗ B)
    D = FW(D);  B = B ⊗ D;  C = D ⊗ C;  A = min(A, B ⊗ C)

which touches each quadrant a constant number of times per level and is the
basis of the communication-optimal distributed algorithm the paper uses as the
highly-optimized HPC reference point.  Here the recursion is executed exactly
(single process); its operation counts are reported so the cost model can
project distributed runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.adjacency import validate_adjacency
from repro.linalg.kernels import floyd_warshall_inplace
from repro.linalg.semiring import minplus_product

#: Below this size the recursion bottoms out into the direct Floyd-Warshall kernel.
DEFAULT_BASE_CASE = 64


@dataclass
class DCStats:
    """Operation counters of one divide-and-conquer run."""

    base_cases: int = 0
    multiplications: int = 0
    multiply_volume: float = 0.0   # sum over products of m*k*n
    max_depth: int = 0


def _dc(dist: np.ndarray, base_case: int, stats: DCStats, depth: int = 0) -> None:
    n = dist.shape[0]
    stats.max_depth = max(stats.max_depth, depth)
    if n <= base_case:
        floyd_warshall_inplace(dist)
        stats.base_cases += 1
        return
    m = n // 2
    a = dist[:m, :m]
    b = dist[:m, m:]
    c = dist[m:, :m]
    d = dist[m:, m:]

    def multiply(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Semiring product + ⊕ used by the DC recursion."""
        stats.multiplications += 1
        stats.multiply_volume += float(x.shape[0]) * x.shape[1] * y.shape[1]
        return minplus_product(x, y)

    _dc(a, base_case, stats, depth + 1)
    b[:] = np.minimum(b, multiply(a, b))
    c[:] = np.minimum(c, multiply(c, a))
    d[:] = np.minimum(d, multiply(c, b))
    _dc(d, base_case, stats, depth + 1)
    b[:] = np.minimum(b, multiply(b, d))
    c[:] = np.minimum(c, multiply(d, c))
    a[:] = np.minimum(a, multiply(b, c))


def dc_apsp(adjacency: np.ndarray, *, base_case: int = DEFAULT_BASE_CASE) -> np.ndarray:
    """Solve APSP with the divide-and-conquer recursion; returns the distance matrix."""
    dist, _ = dc_apsp_with_stats(adjacency, base_case=base_case)
    return dist


def dc_apsp_with_stats(adjacency: np.ndarray, *,
                       base_case: int = DEFAULT_BASE_CASE) -> tuple[np.ndarray, DCStats]:
    """Like :func:`dc_apsp`, additionally returning the operation counters."""
    adj = validate_adjacency(adjacency, require_symmetric=False)
    dist = adj.copy()
    stats = DCStats()
    _dc(dist, max(1, base_case), stats)
    return dist, stats

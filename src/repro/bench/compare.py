"""Baseline comparison: diff a benchmark run against a committed baseline.

The gate is per-scenario: a scenario regresses when ``current / baseline``
exceeds its slowdown threshold (recorded in the baseline report, overridable
at comparison time).  Sub-floor timings are never gated — at micro scales the
ratio is dominated by scheduling noise, not the code under test.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scenarios faster than this (in both runs) are informational only.
DEFAULT_MIN_SECONDS = 0.05

#: Fallback threshold when neither the baseline entry nor the caller names one.
DEFAULT_THRESHOLD = 1.5

STATUS_OK = "ok"
STATUS_SLOWER = "slower"        # exceeded the gate -> regression
STATUS_FASTER = "faster"        # improved beyond the inverse gate
STATUS_TOO_FAST = "below-floor"  # both runs under the noise floor
STATUS_MISSING = "missing"      # in baseline, absent from current run
STATUS_NEW = "new"              # in current run, absent from baseline


@dataclass(frozen=True)
class ScenarioComparison:
    """Comparison verdict for one scenario id."""

    scenario_id: str
    baseline_seconds: float | None
    current_seconds: float | None
    ratio: float | None
    threshold: float
    status: str

    @property
    def regressed(self) -> bool:
        """True when this scenario exceeded its slowdown gate."""
        return self.status == STATUS_SLOWER

    def as_dict(self) -> dict:
        """Plain-dict view for CSV/table emission."""
        return {
            "scenario": self.scenario_id,
            "baseline_s": (f"{self.baseline_seconds:.4f}"
                           if self.baseline_seconds is not None else "-"),
            "current_s": (f"{self.current_seconds:.4f}"
                          if self.current_seconds is not None else "-"),
            "ratio": f"{self.ratio:.2f}x" if self.ratio is not None else "-",
            "threshold": f"{self.threshold:.2f}x",
            "status": self.status,
        }


def _scenario_index(report: dict) -> dict[str, dict]:
    return {entry["id"]: entry for entry in report.get("scenarios", [])}


def compare_reports(baseline: dict, current: dict, *,
                    threshold: float | None = None,
                    min_seconds: float = DEFAULT_MIN_SECONDS) -> list[ScenarioComparison]:
    """Compare two loaded reports scenario by scenario.

    ``threshold`` overrides every scenario's own slowdown gate when given.
    Scenario sets need not match: baseline-only scenarios are reported as
    ``missing`` and current-only ones as ``new`` (neither is a regression —
    grids evolve).
    """
    baseline_index = _scenario_index(baseline)
    current_index = _scenario_index(current)
    rows: list[ScenarioComparison] = []

    for scenario_id, base_entry in baseline_index.items():
        gate = threshold if threshold is not None else float(
            base_entry.get("slowdown_threshold", DEFAULT_THRESHOLD))
        current_entry = current_index.get(scenario_id)
        base_seconds = float(base_entry["wall_seconds"])
        if current_entry is None:
            rows.append(ScenarioComparison(scenario_id, base_seconds, None,
                                           None, gate, STATUS_MISSING))
            continue
        cur_seconds = float(current_entry["wall_seconds"])
        ratio = cur_seconds / base_seconds if base_seconds > 0 else float("inf")
        if base_seconds < min_seconds and cur_seconds < min_seconds:
            status = STATUS_TOO_FAST
        elif ratio > gate:
            status = STATUS_SLOWER
        elif ratio < 1.0 / gate:
            status = STATUS_FASTER
        else:
            status = STATUS_OK
        rows.append(ScenarioComparison(scenario_id, base_seconds, cur_seconds,
                                       ratio, gate, status))

    fallback_gate = threshold if threshold is not None else DEFAULT_THRESHOLD
    for scenario_id, current_entry in current_index.items():
        if scenario_id not in baseline_index:
            rows.append(ScenarioComparison(
                scenario_id, None, float(current_entry["wall_seconds"]),
                None, fallback_gate, STATUS_NEW))
    return rows


def regressions(rows: list[ScenarioComparison]) -> list[ScenarioComparison]:
    """The subset of rows that violate their slowdown gate."""
    return [row for row in rows if row.regressed]


def has_regressions(rows: list[ScenarioComparison]) -> bool:
    """True when any compared scenario exceeded its slowdown gate."""
    return bool(regressions(rows))


def improvements(rows: list[ScenarioComparison]) -> list[ScenarioComparison]:
    """The subset of rows that improved beyond the inverse gate (speedups)."""
    return [row for row in rows if row.status == STATUS_FASTER]


#: A fitted machine constant may drift this far (ratio-wise) from the
#: committed calibration before the warn-only CI compare flags it.
DEFAULT_CONSTANT_DRIFT = 2.0

#: Constants below this (seconds per unit x typical feature value is still
#: sub-noise) are not ratio-compared: a 10x swing on a ~zero constant is
#: fit jitter, not machine drift.
_CONSTANT_FLOOR = 1e-15


def compare_calibrations(baseline: dict, current: dict, *,
                         tolerance: float = DEFAULT_CONSTANT_DRIFT) -> list[dict]:
    """Diff two calibration documents' fitted machine constants.

    Returns one row per constant key (union of both documents) with the
    drift ratio and a status: ``ok``, ``drifted`` (ratio outside
    ``[1/tolerance, tolerance]``), ``new`` (only fitted now) or ``gone``
    (only in the baseline).  This feeds the warn-only CI compare — machine
    constants legitimately move across hardware, so drift is a signal to
    re-calibrate, never a gate.
    """
    base = (baseline.get("constants") or {}).get("seconds_per_unit") or {}
    cur = (current.get("constants") or {}).get("seconds_per_unit") or {}
    rows: list[dict] = []
    for key in sorted(set(base) | set(cur)):
        base_value = base.get(key)
        cur_value = cur.get(key)
        ratio = None
        if base_value is None:
            status = "new"
        elif cur_value is None:
            status = "gone"
        elif base_value < _CONSTANT_FLOOR or cur_value < _CONSTANT_FLOOR:
            # One side is (near-)zero: ratios are meaningless; only flag
            # appearing/disappearing costs.
            both_zero = (base_value < _CONSTANT_FLOOR
                         and cur_value < _CONSTANT_FLOOR)
            status = "ok" if both_zero else "drifted"
        else:
            ratio = cur_value / base_value
            status = ("ok" if 1.0 / tolerance <= ratio <= tolerance
                      else "drifted")
        rows.append({
            "constant": key,
            "baseline": base_value,
            "current": cur_value,
            "ratio": ratio,
            "status": status,
        })
    return rows


def summarize_calibration_drift(rows: list[dict]) -> str:
    """One-line verdict for the warn-only constants-drift CI step."""
    drifted = [row for row in rows if row["status"] == "drifted"]
    churned = [row for row in rows if row["status"] in ("new", "gone")]
    if not drifted and not churned:
        return f"calibration constants stable: {len(rows)} constant(s) compared"
    bits = []
    if drifted:
        names = ", ".join(row["constant"] for row in drifted[:4])
        more = "..." if len(drifted) > 4 else ""
        bits.append(f"{len(drifted)} constant(s) drifted ({names}{more})")
    if churned:
        bits.append(f"{len(churned)} constant(s) appeared/disappeared")
    return ("calibration drift (warn-only, consider re-running "
            "'apspark bench calibrate'): " + "; ".join(bits))


def summarize(rows: list[ScenarioComparison]) -> str:
    """One-line verdict suitable for CI logs.

    Speedups are called out alongside the regression verdict so perf wins —
    e.g. a float32 scenario beating its float64 twin's baseline — stay
    visible in the warn-only CI compare, not just slowdowns.
    """
    failed = regressions(rows)
    faster = improvements(rows)
    compared = [r for r in rows if r.ratio is not None]
    faster_bit = ""
    if faster:
        best = min(faster, key=lambda r: r.ratio or 1.0)
        faster_bit = (f"; {len(faster)} faster than baseline "
                      f"(best: {best.scenario_id} at {best.ratio:.2f}x)")
    if failed:
        worst = max(failed, key=lambda r: r.ratio or 0.0)
        return (f"REGRESSION: {len(failed)}/{len(compared)} scenario(s) over "
                f"threshold (worst: {worst.scenario_id} at {worst.ratio:.2f}x)"
                f"{faster_bit}")
    return f"ok: {len(compared)} scenario(s) within threshold{faster_bit}"

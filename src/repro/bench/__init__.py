"""Benchmark subsystem: scenario grids, machine-readable results, regression gates.

Public surface:

* :class:`~repro.bench.scenarios.BenchScenario` / :class:`~repro.bench.scenarios.BenchSuite`
  — the scenario grid definitions shared by the JSON harness and the
  pytest-benchmark modules under ``benchmarks/``.
* :func:`~repro.bench.runner.run_suite` — execute a suite through
  :class:`~repro.core.engine.APSPEngine`, recording wall time, per-stage
  timings, and engine metric deltas.
* :mod:`~repro.bench.results` — versioned ``BENCH_<suite>.json`` reports with
  git/host metadata.
* :mod:`~repro.bench.compare` — diff a run against a committed baseline and
  gate on per-scenario slowdown thresholds.

CLI: ``apspark bench run|compare|list``.
"""

from repro.bench.compare import (ScenarioComparison, compare_calibrations,
                                 compare_reports, has_regressions,
                                 improvements, regressions, summarize,
                                 summarize_calibration_drift)
from repro.bench.results import (SCHEMA_VERSION, build_report, default_report_path,
                                 discover_archives, load_report,
                                 validate_report, write_report)
from repro.bench.runner import (ScenarioResult, graph_for_algebra,
                                reference_closure, run_suite, scenario_graph,
                                scenario_reference, solve_scenario,
                                update_batch_for_algebra, verify_tolerances)
from repro.bench.scenarios import (BENCH_N_ENV, BenchScenario, BenchSuite,
                                   available_suites, bench_scale_n, get_suite)

__all__ = [
    "BENCH_N_ENV",
    "BenchScenario",
    "BenchSuite",
    "SCHEMA_VERSION",
    "ScenarioComparison",
    "ScenarioResult",
    "available_suites",
    "bench_scale_n",
    "build_report",
    "compare_calibrations",
    "compare_reports",
    "default_report_path",
    "discover_archives",
    "get_suite",
    "graph_for_algebra",
    "has_regressions",
    "reference_closure",
    "improvements",
    "load_report",
    "regressions",
    "run_suite",
    "scenario_graph",
    "scenario_reference",
    "solve_scenario",
    "summarize",
    "summarize_calibration_drift",
    "update_batch_for_algebra",
    "validate_report",
    "verify_tolerances",
    "write_report",
]

"""Benchmark scenario grids: the single source of truth for what gets measured.

A :class:`BenchScenario` pins every knob of one measured solve — solver,
problem size, block size, partitioner, engine backend and shape — and a
:class:`BenchSuite` is an ordered grid of scenarios.  Both the JSON harness
(``apspark bench run``) and the pytest-benchmark modules under
``benchmarks/`` parametrize over these definitions, so a workload is defined
exactly once.

Scales are environment-tunable: set ``APSPARK_BENCH_N`` to shrink or grow
every suite's problem size (the CI smoke run uses a tiny value; local deep
runs can crank it up) without editing code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable

# Importing the API populates the solver registry, which SolveRequest
# validation (and therefore scenario construction) depends on.
import repro.core.api  # noqa: F401
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.request import SolveRequest

#: Environment variable overriding every suite's problem size ``n``.
BENCH_N_ENV = "APSPARK_BENCH_N"

#: Default slowdown gate: fail a comparison when a scenario runs this many
#: times slower than its baseline.
DEFAULT_SLOWDOWN_THRESHOLD = 1.5


def bench_scale_n(default: int) -> int:
    """Problem size for a suite: ``APSPARK_BENCH_N`` when set, else ``default``."""
    raw = os.environ.get(BENCH_N_ENV)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{BENCH_N_ENV} must be an integer, got {raw!r}") from exc
    if value < 8:
        raise ConfigurationError(f"{BENCH_N_ENV} must be >= 8, got {value}")
    return value


@dataclass(frozen=True)
class BenchScenario:
    """One benchmarked workload: a point in the solver × n × b × backend grid.

    ``workload`` selects what gets measured: ``"solve"`` (the default) is one
    closure solve; ``"serve"`` solves the closure once and then replays a
    deterministic random query stream against the serving layer —
    ``queries`` route lookups drawn from ``query_sources`` distinct sources
    (0 = all of them) under a parent-row cache capped at ``cache_rows``;
    ``"update"`` solves the closure once with ``keep_closure=True`` and then
    applies a deterministic batch of ``update_batch`` improving edge updates
    through ``engine.update`` under ``update_mode`` (``"auto"`` lets the
    cost model pick, ``"incremental"``/``"resolve"`` force the path — the
    forced pair is the incremental-vs-resolve twin whose ``update_seconds``
    ratio is the dynamic-maintenance win).
    """

    name: str
    solver: str = "blocked-cb"
    n: int = 128
    block_size: int | None = 32
    partitioner: str = "MD"
    partitions_per_core: int = 2
    algebra: str = "shortest-path"
    dtype: str | None = None
    storage: str | None = None
    layout: str | None = None
    directed: bool = False
    paths: bool = False
    backend: str = "serial"
    num_executors: int = 4
    cores_per_executor: int = 2
    seed: int = 1234
    repeats: int = 1
    slowdown_threshold: float = DEFAULT_SLOWDOWN_THRESHOLD
    workload: str = "solve"
    queries: int = 0
    query_sources: int = 0
    cache_rows: int | None = None
    update_batch: int = 0
    update_mode: str = "auto"
    failure_rate: float = 0.0
    crash_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.n < 2:
            raise ConfigurationError("scenario n must be >= 2")
        if self.repeats < 1:
            raise ConfigurationError("scenario repeats must be >= 1")
        if self.slowdown_threshold <= 1.0:
            raise ConfigurationError("slowdown_threshold must be > 1.0")
        if self.workload not in ("solve", "serve", "update"):
            raise ConfigurationError(
                f"scenario workload must be 'solve', 'serve' or 'update', "
                f"got {self.workload!r}")
        if self.workload == "serve":
            if self.queries < 1:
                raise ConfigurationError(
                    "a serve scenario needs queries >= 1")
            if self.paths:
                raise ConfigurationError(
                    "serve scenarios solve parent rows lazily; paths=True "
                    "would materialize the full predecessor matrix")
        if self.workload == "update":
            if self.update_batch < 1:
                raise ConfigurationError(
                    "an update scenario needs update_batch >= 1")
            if self.update_mode not in ("auto", "incremental", "resolve"):
                raise ConfigurationError(
                    f"update_mode must be 'auto', 'incremental' or "
                    f"'resolve', got {self.update_mode!r}")
        if self.query_sources < 0:
            raise ConfigurationError("query_sources must be >= 0")
        if self.cache_rows is not None and self.cache_rows < 1:
            raise ConfigurationError("cache_rows must be >= 1 or None")
        for rate_name in ("failure_rate", "crash_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{rate_name} must be in [0, 1], got {rate}")
        # Validate eagerly: a bad grid should fail at definition time, long
        # before any engine spins up.
        self.engine_config()
        self.request()

    # ------------------------------------------------------------------
    def engine_config(self) -> EngineConfig:
        """The engine configuration this scenario runs under."""
        return EngineConfig(backend=self.backend, num_executors=self.num_executors,
                            cores_per_executor=self.cores_per_executor)

    def fault_plan(self):
        """The scenario's :class:`~repro.spark.faults.FaultPlan`, or None.

        None (the common case) keeps the engine on the fault-free fast path;
        a nonzero ``failure_rate`` / ``crash_rate`` builds a seeded
        rate-based plan, so faulted runs are deterministic per scenario seed
        (the baseline compare depends on it).
        """
        if self.failure_rate <= 0.0 and self.crash_rate <= 0.0:
            return None
        from repro.spark.faults import FaultPlan
        return FaultPlan(failure_rate=self.failure_rate,
                         crash_rate=self.crash_rate, seed=self.seed)

    def request(self) -> SolveRequest:
        """The typed solve request this scenario submits."""
        return SolveRequest(solver=self.solver, block_size=self.block_size,
                            partitioner=self.partitioner,
                            partitions_per_core=self.partitions_per_core,
                            algebra=self.algebra, dtype=self.dtype,
                            storage=self.storage, layout=self.layout,
                            directed=self.directed, paths=self.paths,
                            tag=self.name)

    def params(self) -> dict:
        """Scenario parameters as a plain dict (for reports)."""
        return {
            "solver": self.solver,
            "n": self.n,
            "block_size": self.block_size,
            "partitioner": self.partitioner,
            "partitions_per_core": self.partitions_per_core,
            "algebra": self.algebra,
            "dtype": self.dtype,
            "storage": self.storage,
            "layout": self.layout,
            "directed": self.directed,
            "paths": self.paths,
            "backend": self.backend,
            "num_executors": self.num_executors,
            "cores_per_executor": self.cores_per_executor,
            "seed": self.seed,
            "repeats": self.repeats,
            "workload": self.workload,
            "queries": self.queries,
            "query_sources": self.query_sources,
            "cache_rows": self.cache_rows,
            "update_batch": self.update_batch,
            "update_mode": self.update_mode,
            "failure_rate": self.failure_rate,
            "crash_rate": self.crash_rate,
        }

    def with_n(self, n: int) -> "BenchScenario":
        """Variant of this scenario at a different problem size.

        Serve workloads scale with the graph: the query count, source pool
        and cache cap grow proportionally with ``n`` so the hit/eviction
        profile (the thing the scenario exists to measure) is preserved.
        """
        block = self.block_size
        if block is not None:
            block = max(4, min(block, n))
        changes: dict = {"n": n, "block_size": block}
        if self.workload == "serve" and n != self.n:
            scale = n / self.n
            changes["queries"] = max(1, round(self.queries * scale))
            if self.query_sources:
                changes["query_sources"] = max(1, round(self.query_sources * scale))
            if self.cache_rows is not None:
                changes["cache_rows"] = max(1, round(self.cache_rows * scale))
        if self.workload == "update" and n != self.n and self.update_batch > 1:
            # Batches sized relative to n (break-even probes) scale with the
            # graph; single-edge scenarios stay single-edge at every scale.
            changes["update_batch"] = max(2, round(self.update_batch * n / self.n))
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.name}: {self.solver} n={self.n} b={self.block_size} "
                f"{self.partitioner} backend={self.backend}")


@dataclass(frozen=True)
class BenchSuite:
    """An ordered grid of scenarios measured and gated together."""

    name: str
    description: str
    scenarios: tuple[BenchScenario, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [s.name for s in self.scenarios]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"suite {self.name!r} has duplicate scenario names: {dupes}")

    def scenario(self, name: str) -> BenchScenario:
        """Look up one scenario by name; unknown names raise."""
        for s in self.scenarios:
            if s.name == name:
                return s
        raise ConfigurationError(f"suite {self.name!r} has no scenario {name!r}")

    def with_n(self, n: int) -> "BenchSuite":
        """The whole suite re-scaled to problem size ``n``."""
        return replace(self, scenarios=tuple(s.with_n(n) for s in self.scenarios))


# ---------------------------------------------------------------------------
# Suite definitions
# ---------------------------------------------------------------------------
def _smoke_suite() -> BenchSuite:
    """Tiny cross-section of the grid: every solver, every backend axis.

    Small enough for a CI job (seconds, not minutes) while still touching the
    min-plus/Floyd-Warshall hot paths of all four solvers and all three
    scheduler backends.  The ``blocked-cb-serial`` / ``blocked-cb-paths``
    pair is the witness-tracking twin: identical workload with and without
    parent-pointer planes, so the diff quantifies the ~2x traffic (and
    paired-kernel compute) overhead of ``SolveRequest(paths=True)``.
    """
    n = bench_scale_n(48)
    shape = dict(n=n, block_size=16, num_executors=2, cores_per_executor=2)
    return BenchSuite(
        name="smoke",
        description="tiny grid: all solvers serial, blocked-cb across "
                    "backends, plus the paths=True twin",
        scenarios=(
            BenchScenario(name="blocked-cb-serial", solver="blocked-cb",
                          backend="serial", **shape),
            BenchScenario(name="blocked-cb-paths", solver="blocked-cb",
                          backend="serial", paths=True, **shape),
            BenchScenario(name="blocked-cb-threads", solver="blocked-cb",
                          backend="threads", **shape),
            BenchScenario(name="blocked-cb-processes", solver="blocked-cb",
                          backend="processes", **shape),
            BenchScenario(name="blocked-im-serial", solver="blocked-im",
                          backend="serial", **shape),
            BenchScenario(name="repeated-squaring-serial", solver="repeated-squaring",
                          backend="serial", **shape),
            BenchScenario(name="fw2d-serial", solver="fw-2d",
                          backend="serial", **shape),
        ),
    )


def _backends_suite() -> BenchSuite:
    """Scheduler backend ablation (the old ``test_bench_backend`` workload)."""
    n = bench_scale_n(128)
    scenarios = tuple(
        BenchScenario(name=f"blocked-cb-{backend}", solver="blocked-cb", n=n,
                      block_size=32, backend=backend,
                      num_executors=2, cores_per_executor=2)
        for backend in ("serial", "threads", "processes")
    )
    return BenchSuite(
        name="backends",
        description="blocked-cb across serial / threads / processes execution",
        scenarios=scenarios,
    )


def _blocksize_suite() -> BenchSuite:
    """Table 2 workload: every solver swept over block size."""
    n = bench_scale_n(128)
    solvers = ("repeated-squaring", "fw-2d", "blocked-im", "blocked-cb")
    block_sizes = (16, 32, 64)
    scenarios = tuple(
        BenchScenario(name=f"{solver}-b{block_size}", solver=solver, n=n,
                      block_size=min(block_size, n))
        for solver in solvers for block_size in block_sizes
    )
    return BenchSuite(
        name="blocksize",
        description="Table 2: effect of block size on each solver",
        scenarios=scenarios,
    )


def _partitioner_suite() -> BenchSuite:
    """Figure 3 workload: blocked solvers × partitioner × over-decomposition."""
    n = bench_scale_n(128)
    scenarios = tuple(
        BenchScenario(name=f"{solver}-{partitioner}-B{b_factor}", solver=solver,
                      n=n, block_size=min(32, n), partitioner=partitioner,
                      partitions_per_core=b_factor)
        for solver in ("blocked-im", "blocked-cb")
        for partitioner in ("MD", "PH")
        for b_factor in (1, 2)
    )
    return BenchSuite(
        name="partitioner",
        description="Figure 3: partitioner and over-decomposition sweep",
        scenarios=scenarios,
    )


def _algebras_suite() -> BenchSuite:
    """Algebra × dtype sweep on the best solver (blocked-cb).

    The ``shortest-path-f64`` / ``shortest-path-f32`` pair is the dtype-policy
    twin: identical workload, halved element size, so the comparison exposes
    the memory-traffic win of ``float32`` in the hot product kernel.  The
    remaining scenarios track the per-algebra cost of the generalized
    kernels (the boolean closure should be by far the cheapest).

    Like the ``reachability`` suite, the block size scales with ``n``
    (``n / 4`` clamped to [32, 256]; 32 at the CI scale, unchanged) so
    reference-machine runs at ``APSPARK_BENCH_N>=1024`` measure the kernels
    rather than per-task scheduler overhead — the regime where the float32
    and boolean wins are actually visible and therefore gateable.
    """
    n = bench_scale_n(96)
    shape = dict(solver="blocked-cb", n=n,
                 block_size=max(32, min(256, n // 4)) if n >= 32 else n,
                 num_executors=2, cores_per_executor=2)
    return BenchSuite(
        name="algebras",
        description="algebra x dtype sweep on blocked-cb "
                    "(incl. the float32-vs-float64 twin)",
        scenarios=(
            BenchScenario(name="shortest-path-f64", algebra="shortest-path",
                          dtype="float64", **shape),
            BenchScenario(name="shortest-path-f32", algebra="shortest-path",
                          dtype="float32", **shape),
            BenchScenario(name="widest-path-f64", algebra="widest-path",
                          dtype="float64", **shape),
            BenchScenario(name="widest-path-f32", algebra="widest-path",
                          dtype="float32", **shape),
            BenchScenario(name="most-reliable-f64", algebra="most-reliable",
                          dtype="float64", **shape),
            BenchScenario(name="reachability-bool", algebra="reachability",
                          dtype="bool", **shape),
        ),
    )


def _reachability_suite() -> BenchSuite:
    """Packed-bitset vs dense-bool ablation for the boolean closure.

    Each pair runs the identical transitive-closure workload under the two
    block-storage policies, so the comparison isolates the packed-bitset
    win: 64x denser blocks, word-parallel ⊕/⊗, 1/8th the pickled bytes
    through the shuffle, the driver, and the shared file system.  The
    ``processes`` scenario additionally measures the smaller IPC payloads.
    Record reference baselines at ``APSPARK_BENCH_N=1024`` or larger — at
    toy sizes the scheduler overhead hides the kernel difference.  Unlike
    the CI-oriented suites, the block size scales with ``n`` (``n / 4``,
    clamped to [32, 512]) so large runs stay kernel-dominated rather than
    scheduler-dominated.
    """
    n = bench_scale_n(96)
    block = max(32, min(512, n // 4))
    shape = dict(n=n, block_size=min(block, n), algebra="reachability",
                 dtype="bool", num_executors=2, cores_per_executor=2)
    return BenchSuite(
        name="reachability",
        description="boolean closure: packed bitset vs dense bool blocks "
                    "(blocked solvers + processes backend)",
        scenarios=(
            BenchScenario(name="blocked-cb-bool-dense", solver="blocked-cb",
                          storage="dense", **shape),
            BenchScenario(name="blocked-cb-bool-packed", solver="blocked-cb",
                          storage="packed", **shape),
            BenchScenario(name="blocked-im-bool-dense", solver="blocked-im",
                          storage="dense", **shape),
            BenchScenario(name="blocked-im-bool-packed", solver="blocked-im",
                          storage="packed", **shape),
            BenchScenario(name="blocked-cb-bool-dense-processes",
                          solver="blocked-cb", storage="dense",
                          backend="processes", **shape),
            BenchScenario(name="blocked-cb-bool-packed-processes",
                          solver="blocked-cb", storage="packed",
                          backend="processes", **shape),
        ),
    )


def _serve_suite() -> BenchSuite:
    """Serving-layer workloads: query count × cache budget × source locality.

    Every scenario solves the closure once and replays ``4 n`` route queries
    against the lazy parent-row cache; what varies is the cache pressure:

    * ``serve-warm`` — queries concentrated on few sources, unbounded cache:
      the steady-state hit-rate regime (row solves amortized away);
    * ``serve-tight-cache`` — more sources than cached rows, so the LRU
      churns: measures eviction + re-solve overhead under memory pressure;
    * ``serve-cold-scan`` — sources drawn from the whole vertex set: the
      miss-dominated regime, effectively benchmarking ``solve_parent_row``;
    * ``serve-reachability`` — the boolean closure's plateau-heavy rows push
      queries through the BFS repair stage (packed-storage solve included).

    Reported wall time covers the closure solve plus the replay; the serve
    stats (hit rate, stage seconds) land in each scenario's ``metrics`` under
    ``serve_*`` keys, so baselines also gate on cache behaviour drift.
    """
    n = bench_scale_n(64)
    shape = dict(solver="blocked-cb", n=n,
                 block_size=max(16, min(128, n // 4)),
                 num_executors=2, cores_per_executor=2,
                 workload="serve", queries=4 * n)
    return BenchSuite(
        name="serve",
        description="route-serving layer: query replay under varying "
                    "cache pressure (hit-heavy, evicting, cold, repair-heavy)",
        scenarios=(
            BenchScenario(name="serve-warm",
                          query_sources=max(2, n // 16), **shape),
            BenchScenario(name="serve-tight-cache",
                          query_sources=max(4, n // 4),
                          cache_rows=max(2, n // 32), **shape),
            BenchScenario(name="serve-cold-scan", **shape),
            BenchScenario(name="serve-reachability", algebra="reachability",
                          dtype="bool", query_sources=max(2, n // 16), **shape),
        ),
    )


def _directed_suite() -> BenchSuite:
    """Full-grid vs triangular storage, and genuinely directed inputs.

    The ``*-tri`` / ``*-full`` pairs run the *same symmetric* graph under
    the two block layouts, so the diff isolates the cost of storing (and
    updating) all ``q²`` blocks instead of the upper block triangle — the
    price an undirected workload would pay for choosing ``layout="full"``.
    The ``*-directed`` scenarios measure the layout on the inputs it exists
    for: asymmetric Erdős–Rényi graphs (every ordered pair sampled
    independently), including a witness-tracking twin and the DAG
    longest-path workload the full grid unlocks.
    """
    n = bench_scale_n(48)
    shape = dict(n=n, block_size=16, num_executors=2, cores_per_executor=2)
    return BenchSuite(
        name="directed",
        description="triangular-vs-full layout twins on symmetric input, "
                    "plus asymmetric (directed) workloads",
        scenarios=(
            BenchScenario(name="blocked-cb-tri", solver="blocked-cb",
                          layout="triangular", **shape),
            BenchScenario(name="blocked-cb-full", solver="blocked-cb",
                          layout="full", **shape),
            BenchScenario(name="blocked-im-tri", solver="blocked-im",
                          layout="triangular", **shape),
            BenchScenario(name="blocked-im-full", solver="blocked-im",
                          layout="full", **shape),
            BenchScenario(name="blocked-cb-directed", solver="blocked-cb",
                          directed=True, **shape),
            BenchScenario(name="blocked-cb-directed-paths", solver="blocked-cb",
                          directed=True, paths=True, **shape),
            BenchScenario(name="fw2d-directed", solver="fw-2d",
                          directed=True, **shape),
            BenchScenario(name="longest-path-dag", solver="blocked-cb",
                          algebra="longest-path", **shape),
        ),
    )


def _dynamic_suite() -> BenchSuite:
    """Dynamic closure maintenance: incremental updates vs full re-closure.

    Every scenario solves the closure once (``keep_closure=True``) and then
    applies a deterministic batch of improving edge updates through
    ``engine.update``; the update cost lands in ``phase_seconds["update"]``
    and the ``update_*`` metrics.  The grid probes the three claims of the
    dynamic-update layer:

    * ``update-single-incremental`` / ``update-single-resolve`` — the
      incremental-vs-resolve twin: the identical single-edge update forced
      down both paths.  The ratio of their ``update_seconds`` is the O(n²)
      rank-1 sweep vs O(n³) re-closure win (≥ 5x at n=1024 for the dense
      float64 shortest-path closure);
    * ``update-batch8-incremental`` — per-edge amortization of a small batch
      (sequential sweeps share no work, so this should scale ~linearly);
    * ``update-batch-auto-large`` — a batch of ``n`` edges, mode ``auto``:
      past the cost model's break-even (~0.46 n) the engine must *choose*
      the re-solve, so this scenario measurably exercises the fallback;
    * algebra/storage variants — the rank-1 sweep through the widest-path
      and most-reliable kernels, and the packed-bitset word-parallel sweep
      with its dense-mirror writeback.

    Updates mutate the cached closure in place, so each repeat re-solves
    first; ``repeats=1`` keeps the suite cheap.
    """
    n = bench_scale_n(48)
    shape = dict(solver="blocked-cb", n=n,
                 block_size=max(16, min(128, n // 4)),
                 num_executors=2, cores_per_executor=2,
                 workload="update", repeats=1)
    return BenchSuite(
        name="dynamic",
        description="dynamic edge updates: rank-1 incremental maintenance "
                    "vs full re-closure (twins, batch sweep, auto fallback)",
        scenarios=(
            BenchScenario(name="update-single-incremental",
                          update_batch=1, update_mode="incremental", **shape),
            BenchScenario(name="update-single-resolve",
                          update_batch=1, update_mode="resolve", **shape),
            BenchScenario(name="update-batch8-incremental",
                          update_batch=8, update_mode="incremental", **shape),
            BenchScenario(name="update-batch-auto-large",
                          update_batch=n, update_mode="auto", **shape),
            BenchScenario(name="update-widest-single", algebra="widest-path",
                          update_batch=1, update_mode="incremental", **shape),
            BenchScenario(name="update-reliable-single",
                          algebra="most-reliable",
                          update_batch=1, update_mode="incremental", **shape),
            BenchScenario(name="update-reachability-packed",
                          algebra="reachability", dtype="bool",
                          storage="packed",
                          update_batch=4, update_mode="incremental", **shape),
        ),
    )


def _faults_suite() -> BenchSuite:
    """Fault-tolerance overhead and recovery cost.

    Two questions, two scenario groups:

    * ``faultfree-*`` — the identical blocked-cb workload as the backend
      suite, run through the full fault-tolerance machinery with *no* plan:
      retries armed, timeouts derived, integrity footers written and
      verified.  Gated against baseline, this is the "fault-free overhead
      stays within noise" acceptance knob;
    * ``kill1pct-*`` — the same workload with a seeded 1% task-kill
      schedule: each affected first attempt dies as a worker crash (a real
      process kill on the ``processes`` backend, rebuilding the pool) and is
      recovered through lineage retry.  Wall time measures recovery cost;
      the folded ``worker_restarts`` / ``tasks_recomputed`` metrics land in
      the report so baselines also pin how much recovery actually happened.
      A loose gate (3x): recovery cost is pool-rebuild dominated and noisy.
    """
    n = bench_scale_n(96)
    shape = dict(solver="blocked-cb", n=n, block_size=max(16, min(64, n // 4)),
                 num_executors=2, cores_per_executor=2)
    return BenchSuite(
        name="faults",
        description="fault-tolerance: fault-free machinery overhead and "
                    "1% task-kill recovery on threads/processes",
        scenarios=(
            BenchScenario(name="faultfree-threads", backend="threads", **shape),
            BenchScenario(name="faultfree-processes", backend="processes",
                          **shape),
            # Seed chosen so the 1% schedule deterministically kills tasks
            # early in the solve (ids 11 and 20) at every bench scale —
            # with the default seed the first hit lands past the ~64 tasks
            # a CI-sized solve launches and the scenario would measure
            # nothing.
            BenchScenario(name="kill1pct-threads", backend="threads",
                          crash_rate=0.01, seed=1242,
                          slowdown_threshold=3.0, **shape),
            BenchScenario(name="kill1pct-processes", backend="processes",
                          crash_rate=0.01, seed=1242,
                          slowdown_threshold=3.0, **shape),
            BenchScenario(name="failrate5pct-threads", backend="threads",
                          failure_rate=0.05, slowdown_threshold=3.0, **shape),
        ),
    )


def _scaling_suite() -> BenchSuite:
    """Table 3 workload: weak scaling of the blocked solvers (n/p fixed)."""
    points = ((4, 64), (8, 128), (16, 256))
    scenarios = tuple(
        BenchScenario(name=f"{solver}-p{p}-n{n}", solver=solver, n=n,
                      block_size=max(8, n // 8),
                      num_executors=max(1, p // 4), cores_per_executor=min(4, p))
        for p, n in points
        for solver in ("blocked-im", "blocked-cb")
    )
    return BenchSuite(
        name="scaling",
        description="Table 3: weak scaling of the blocked solvers",
        scenarios=scenarios,
    )


#: Suite registry: name -> builder (called fresh so env scaling applies).
_SUITE_BUILDERS: dict[str, Callable[[], BenchSuite]] = {
    "smoke": _smoke_suite,
    "backends": _backends_suite,
    "blocksize": _blocksize_suite,
    "partitioner": _partitioner_suite,
    "algebras": _algebras_suite,
    "reachability": _reachability_suite,
    "directed": _directed_suite,
    "dynamic": _dynamic_suite,
    "faults": _faults_suite,
    "scaling": _scaling_suite,
    "serve": _serve_suite,
}


def available_suites() -> tuple[str, ...]:
    """Names of the registered benchmark suites."""
    return tuple(sorted(_SUITE_BUILDERS))


def get_suite(name: str) -> BenchSuite:
    """Build a suite by name (re-reading ``APSPARK_BENCH_N`` each call)."""
    try:
        builder = _SUITE_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark suite {name!r}; expected one of "
            f"{', '.join(available_suites())}") from None
    return builder()

"""Benchmark runner: execute a scenario grid through :class:`APSPEngine`.

The runner mirrors the paper's experimental shape: scenarios sharing an
engine configuration run on one persistent engine session (one Spark context,
many solves), and each scenario records wall time, per-stage timings and the
engine metric *delta* attributable to that solve alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.engine import APSPEngine
from repro.core.request import EdgeUpdate
from repro.graph.generators import (directed_erdos_renyi_adjacency,
                                    erdos_renyi_adjacency)
from repro.linalg.algebra import get_algebra
from repro.linalg.kernels import semiring_closure
from repro.sequential.floyd_warshall import floyd_warshall_reference

from repro.bench.scenarios import BenchScenario, BenchSuite


@dataclass
class ScenarioResult:
    """Everything measured for one scenario."""

    scenario: BenchScenario
    wall_seconds: float                 # best (minimum) over repeats
    all_seconds: list[float] = field(default_factory=list)
    phase_seconds: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    solve: dict = field(default_factory=dict)   # geometry of the last solve
    verified: bool | None = None        # None when verification was skipped

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean wall time across repeats."""
        return sum(self.all_seconds) / len(self.all_seconds)

    def as_dict(self) -> dict:
        """JSON-ready record (the per-scenario unit of the ``BENCH_*`` schema)."""
        metrics = dict(self.metrics)
        spills = metrics.get("spilled_bytes_per_executor")
        if isinstance(spills, dict):
            # JSON object keys must be strings; executor ids are ints.
            metrics["spilled_bytes_per_executor"] = {
                str(k): v for k, v in spills.items()}
        return {
            "id": self.scenario.name,
            "params": self.scenario.params(),
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
            "all_seconds": list(self.all_seconds),
            "phase_seconds": dict(self.phase_seconds),
            "metrics": metrics,
            "solve": dict(self.solve),
            "verified": self.verified,
            "slowdown_threshold": self.scenario.slowdown_threshold,
        }


def graph_domain(algebra, *, directed: bool = False) -> str:
    """The input-graph domain an algebra (and orientation) requires.

    Single source of truth for graph generation *and* the run_suite graph
    cache key, so the two can never disagree.  The longest-path algebra
    always needs a DAG; other algebras get a symmetric or directed variant
    of their weight domain.
    """
    name = get_algebra(algebra).name
    if name == "longest-path":
        return "dag"
    domain = "unit-interval" if name == "most-reliable" else "weighted"
    return f"{domain}-directed" if directed else domain


def graph_for_algebra(n: int, seed: int, algebra="shortest-path", *,
                      directed: bool = False) -> np.ndarray:
    """Generate an Erdős–Rényi input graph respecting the algebra's domain.

    Most algebras accept the standard weighted input; the (max, ×)
    ``most-reliable`` algebra needs edge weights in ``[0, 1]``; the
    longest-path algebra needs a DAG (always directed).  ``directed=True``
    samples each ordered pair independently, giving the asymmetric inputs
    the ``layout="full"`` grid stores.
    """
    domain = graph_domain(algebra, directed=directed)
    if domain == "dag":
        return directed_erdos_renyi_adjacency(n, seed=seed, acyclic=True)
    weights = ({"weight_low": 0.05, "weight_high": 0.95}
               if domain.startswith("unit-interval") else {})
    if domain.endswith("-directed"):
        return directed_erdos_renyi_adjacency(n, seed=seed, **weights)
    return erdos_renyi_adjacency(n, seed=seed, **weights)


def reference_closure(adjacency: np.ndarray, algebra="shortest-path",
                      dtype: str | None = None) -> np.ndarray:
    """The sequential ground-truth closure for an (algebra, dtype) pair.

    The (min, +)/float64 case uses the fast SciPy reference; everything else
    goes through the dense generic closure.
    """
    if get_algebra(algebra).name == "shortest-path" and dtype in (None, "float64"):
        return floyd_warshall_reference(adjacency)
    return semiring_closure(adjacency, algebra, dtype=dtype)


def verify_tolerances(dtype: str | None) -> dict:
    """Keyword tolerances for comparing a result of ``dtype`` to its reference.

    float32 accumulates rounding in a solver-dependent order and needs a
    loose gate; float64 (and bool) keep the strict ``np.allclose`` defaults.
    """
    return {"rtol": 1e-4, "atol": 1e-6} if dtype == "float32" else {}


def update_batch_for_algebra(n: int, seed: int, algebra="shortest-path",
                             count: int = 1) -> list[EdgeUpdate]:
    """A deterministic batch of *improving* edge updates for an algebra.

    Weights are drawn to dominate the generators' edge-weight ranges under
    the algebra's ⊕ — shorter than any existing shortest-path edge, wider
    than any widest-path edge, more reliable than any probability edge —
    so against a :func:`graph_for_algebra` graph every update classifies as
    an improvement and takes the rank-1 sweep (the path the dynamic suite
    measures).  Longest-path draws ordered ``u < v`` pairs so insertions
    keep the DAG acyclic.  Seeded, so benchmark replays and CLI batches are
    identical across runs and machines.
    """
    name = get_algebra(algebra).name
    rng = np.random.default_rng(seed)
    edges: list[EdgeUpdate] = []
    while len(edges) < count:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        if name == "longest-path" and u > v:
            u, v = v, u
        if name == "reachability":
            weight: float | bool = True
        elif name == "most-reliable":
            weight = float(rng.uniform(0.96, 0.999))
        elif name == "widest-path":
            weight = float(rng.uniform(50.0, 100.0))
        elif name == "longest-path":
            weight = float(rng.uniform(20.0, 30.0))
        else:
            weight = float(rng.uniform(0.01, 0.5))
        edges.append(EdgeUpdate(u, v, weight))
    return edges


def scenario_graph(scenario: BenchScenario) -> np.ndarray:
    """Generate the input graph for a scenario, respecting its algebra's domain."""
    return graph_for_algebra(scenario.n, scenario.seed, scenario.algebra,
                             directed=scenario.directed)


def scenario_reference(scenario: BenchScenario, adjacency: np.ndarray) -> np.ndarray:
    """The sequential ground-truth closure a scenario's result must match."""
    return reference_closure(adjacency, scenario.algebra, dtype=scenario.dtype)


def scenario_queries(scenario: BenchScenario, n: int) -> list[tuple[int, int]]:
    """The deterministic query stream a serve scenario replays.

    Seeded by the scenario, so identical across runs and machines (the
    baseline compare depends on it).  ``query_sources`` narrows the source
    pool — smaller pools mean more cache hits, which is the axis the serve
    suite sweeps.
    """
    rng = np.random.default_rng(scenario.seed)
    if scenario.query_sources > 0:
        pool = rng.choice(n, size=min(scenario.query_sources, n), replace=False)
    else:
        pool = np.arange(n)
    return [(int(rng.choice(pool)), int(rng.integers(n)))
            for _ in range(scenario.queries)]


def solve_scenario(scenario: BenchScenario, engine: APSPEngine,
                   adjacency: np.ndarray | None = None):
    """Run one scenario once on an existing engine session, returning the result.

    This is the exact workload the pytest-benchmark modules measure, so the
    JSON harness and pytest-benchmark share one definition of "one run".

    A ``workload="serve"`` scenario solves the closure, opens a serving
    session with the scenario's cache cap, and replays its query stream.
    The returned result is the closure's :class:`APSPResult` with the
    serving layer folded in: a ``"serve"`` entry in ``phase_seconds`` (the
    replay wall time) and flat ``serve_*`` keys in ``metrics`` (hit rate,
    evictions, latency percentiles, per-stage seconds).

    A ``workload="update"`` scenario solves with ``keep_closure=True`` and
    applies its deterministic improving batch through ``engine.update``
    under the scenario's mode; the update cost lands in
    ``phase_seconds["update"]`` and flat ``update_*`` metrics (edge counts,
    changed rows, the cost model's break-even, and whether the incremental
    path actually ran).  The returned distances are the *updated* closure —
    verification must compare against the mutated graph's reference.
    """
    if adjacency is None:
        adjacency = scenario_graph(scenario)
    if scenario.workload == "update":
        result = engine.solve(adjacency, scenario.request(), keep_closure=True)
        batch = update_batch_for_algebra(adjacency.shape[0],
                                         scenario.seed + 7919,
                                         scenario.algebra,
                                         scenario.update_batch)
        force = None if scenario.update_mode == "auto" else scenario.update_mode
        report = engine.update(batch, force=force)
        result.phase_seconds["update"] = report.seconds
        result.metrics.update({
            "update_edges": report.edges,
            "update_improvements": report.improvements,
            "update_worsenings": report.worsenings,
            "update_noops": report.noops,
            "update_changed_rows": report.changed_rows,
            "update_seconds": report.seconds,
            "update_break_even_edges": report.break_even_edges,
            "update_incremental": 1 if report.mode == "incremental" else 0,
        })
        return result
    if scenario.workload != "serve":
        return engine.solve(adjacency, scenario.request())
    service = engine.serve(adjacency, scenario.request(),
                           max_rows=scenario.cache_rows, keep_result=True)
    pairs = scenario_queries(scenario, adjacency.shape[0])
    start = time.perf_counter()
    service.routes(pairs)
    serve_seconds = time.perf_counter() - start
    result = service.closure_result
    result.phase_seconds["serve"] = serve_seconds
    stats = service.stats()
    serve_metrics = {f"serve_{key}": value for key, value in stats.items()
                     if not isinstance(value, dict) and key != "algebra"}
    for stage, seconds in stats["stage_seconds"].items():
        serve_metrics[f"serve_stage_{stage}_s"] = seconds
        serve_metrics[f"serve_stage_{stage}_count"] = stats["stage_counts"][stage]
    result.metrics.update(serve_metrics)
    return result


def run_suite(suite: BenchSuite, *, repeats: int | None = None,
              verify: bool = False,
              progress: Callable[[str], None] | None = None) -> list[ScenarioResult]:
    """Run every scenario of ``suite`` and return the measurements in order.

    Parameters
    ----------
    repeats:
        Override each scenario's own repeat count (the reported wall time is
        the best of the repeats — the usual benchmarking convention).
    verify:
        Additionally check each result against the sequential Floyd-Warshall
        reference (cached per graph, so the reference is computed once per
        problem size).
    progress:
        Optional sink for one human-readable line per scenario.
    """
    if repeats is not None and repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    results: list[ScenarioResult] = []
    engines: dict[tuple, APSPEngine] = {}
    graphs: dict[tuple, np.ndarray] = {}
    references: dict[tuple, np.ndarray] = {}
    try:
        for scenario in suite.scenarios:
            config = scenario.engine_config()
            # Fault parameters are part of the pool key: a faulted scenario
            # must not inherit (or pollute) a fault-free scenario's context.
            config_key = (config.backend, config.num_executors,
                          config.cores_per_executor,
                          scenario.failure_rate, scenario.crash_rate,
                          scenario.seed if scenario.fault_plan() else None)
            engine = engines.get(config_key)
            if engine is None:
                engine = APSPEngine(config,
                                    fault_plan=scenario.fault_plan()).start()
                engines[config_key] = engine

            graph_key = (scenario.n, scenario.seed,
                         graph_domain(scenario.algebra,
                                      directed=scenario.directed))
            adjacency = graphs.get(graph_key)
            if adjacency is None:
                adjacency = scenario_graph(scenario)
                graphs[graph_key] = adjacency

            times: list[float] = []
            solve_result = None
            for _ in range(repeats if repeats is not None else scenario.repeats):
                start = time.perf_counter()
                solve_result = solve_scenario(scenario, engine, adjacency)
                times.append(time.perf_counter() - start)

            verified: bool | None = None
            if verify:
                if scenario.workload == "update":
                    # The update mutated the cached closure; the ground
                    # truth is the re-closure of the *mutated* adjacency
                    # (engine.closure holds it in the algebra's domain,
                    # which the reference solvers accept).  Uncached — the
                    # batch differs per scenario.
                    reference = reference_closure(engine.closure.adjacency,
                                                  scenario.algebra,
                                                  dtype=scenario.dtype)
                else:
                    ref_key = (*graph_key, scenario.algebra, scenario.dtype)
                    reference = references.get(ref_key)
                    if reference is None:
                        reference = scenario_reference(scenario, adjacency)
                        references[ref_key] = reference
                verified = get_algebra(scenario.algebra).allclose(
                    solve_result.distances, reference,
                    **verify_tolerances(scenario.dtype))

            solve_summary = {
                "q": solve_result.q,
                "block_size": solve_result.block_size,
                "iterations": solve_result.iterations,
                "num_partitions": solve_result.num_partitions,
                "gops": solve_result.gops,
            }
            tuner = solve_result.metrics.get("tuner")
            if tuner:
                # An auto scenario's params say "auto"; the archive must also
                # record what the tuner actually resolved it to, or the fit
                # and any later re-run of the scenario are incomparable.
                solve_summary["tuned_solver"] = tuner.get("solver")
                solve_summary["predicted_seconds"] = tuner.get(
                    "predicted_seconds")
            result = ScenarioResult(
                scenario=scenario,
                wall_seconds=min(times),
                all_seconds=times,
                phase_seconds=dict(solve_result.phase_seconds),
                metrics=dict(solve_result.metrics),
                solve=solve_summary,
                verified=verified,
            )
            results.append(result)
            if progress is not None:
                check = {True: " [verified]", False: " [MISMATCH]"}.get(verified, "")
                progress(f"{scenario.name}: {result.wall_seconds:.3f}s "
                         f"({len(times)} run(s)){check}")
    finally:
        for engine in engines.values():
            engine.stop()
    return results

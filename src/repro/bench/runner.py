"""Benchmark runner: execute a scenario grid through :class:`APSPEngine`.

The runner mirrors the paper's experimental shape: scenarios sharing an
engine configuration run on one persistent engine session (one Spark context,
many solves), and each scenario records wall time, per-stage timings and the
engine metric *delta* attributable to that solve alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.engine import APSPEngine
from repro.graph.generators import erdos_renyi_adjacency
from repro.sequential.floyd_warshall import floyd_warshall_reference

from repro.bench.scenarios import BenchScenario, BenchSuite


@dataclass
class ScenarioResult:
    """Everything measured for one scenario."""

    scenario: BenchScenario
    wall_seconds: float                 # best (minimum) over repeats
    all_seconds: list[float] = field(default_factory=list)
    phase_seconds: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    solve: dict = field(default_factory=dict)   # geometry of the last solve
    verified: bool | None = None        # None when verification was skipped

    @property
    def mean_seconds(self) -> float:
        return sum(self.all_seconds) / len(self.all_seconds)

    def as_dict(self) -> dict:
        """JSON-ready record (the per-scenario unit of the ``BENCH_*`` schema)."""
        metrics = dict(self.metrics)
        spills = metrics.get("spilled_bytes_per_executor")
        if isinstance(spills, dict):
            # JSON object keys must be strings; executor ids are ints.
            metrics["spilled_bytes_per_executor"] = {
                str(k): v for k, v in spills.items()}
        return {
            "id": self.scenario.name,
            "params": self.scenario.params(),
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
            "all_seconds": list(self.all_seconds),
            "phase_seconds": dict(self.phase_seconds),
            "metrics": metrics,
            "solve": dict(self.solve),
            "verified": self.verified,
            "slowdown_threshold": self.scenario.slowdown_threshold,
        }


def solve_scenario(scenario: BenchScenario, engine: APSPEngine,
                   adjacency: np.ndarray | None = None):
    """Run one scenario once on an existing engine session, returning the result.

    This is the exact workload the pytest-benchmark modules measure, so the
    JSON harness and pytest-benchmark share one definition of "one run".
    """
    if adjacency is None:
        adjacency = erdos_renyi_adjacency(scenario.n, seed=scenario.seed)
    return engine.solve(adjacency, scenario.request())


def run_suite(suite: BenchSuite, *, repeats: int | None = None,
              verify: bool = False,
              progress: Callable[[str], None] | None = None) -> list[ScenarioResult]:
    """Run every scenario of ``suite`` and return the measurements in order.

    Parameters
    ----------
    repeats:
        Override each scenario's own repeat count (the reported wall time is
        the best of the repeats — the usual benchmarking convention).
    verify:
        Additionally check each result against the sequential Floyd-Warshall
        reference (cached per graph, so the reference is computed once per
        problem size).
    progress:
        Optional sink for one human-readable line per scenario.
    """
    if repeats is not None and repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    results: list[ScenarioResult] = []
    engines: dict[tuple, APSPEngine] = {}
    graphs: dict[tuple[int, int], np.ndarray] = {}
    references: dict[tuple[int, int], np.ndarray] = {}
    try:
        for scenario in suite.scenarios:
            config = scenario.engine_config()
            config_key = (config.backend, config.num_executors, config.cores_per_executor)
            engine = engines.get(config_key)
            if engine is None:
                engine = APSPEngine(config).start()
                engines[config_key] = engine

            graph_key = (scenario.n, scenario.seed)
            adjacency = graphs.get(graph_key)
            if adjacency is None:
                adjacency = erdos_renyi_adjacency(scenario.n, seed=scenario.seed)
                graphs[graph_key] = adjacency

            times: list[float] = []
            solve_result = None
            for _ in range(repeats if repeats is not None else scenario.repeats):
                start = time.perf_counter()
                solve_result = solve_scenario(scenario, engine, adjacency)
                times.append(time.perf_counter() - start)

            verified: bool | None = None
            if verify:
                reference = references.get(graph_key)
                if reference is None:
                    reference = floyd_warshall_reference(adjacency)
                    references[graph_key] = reference
                verified = bool(np.allclose(solve_result.distances, reference))

            result = ScenarioResult(
                scenario=scenario,
                wall_seconds=min(times),
                all_seconds=times,
                phase_seconds=dict(solve_result.phase_seconds),
                metrics=dict(solve_result.metrics),
                solve={
                    "q": solve_result.q,
                    "block_size": solve_result.block_size,
                    "iterations": solve_result.iterations,
                    "num_partitions": solve_result.num_partitions,
                    "gops": solve_result.gops,
                },
                verified=verified,
            )
            results.append(result)
            if progress is not None:
                check = {True: " [verified]", False: " [MISMATCH]"}.get(verified, "")
                progress(f"{scenario.name}: {result.wall_seconds:.3f}s "
                         f"({len(times)} run(s)){check}")
    finally:
        for engine in engines.values():
            engine.stop()
    return results

"""Versioned machine-readable benchmark reports (``BENCH_<suite>.json``).

Schema (version 1)::

    {
      "schema_version": 1,
      "suite": "smoke",
      "created_unix": 1714000000.0,
      "git": {"sha": "...", "branch": "...", "dirty": false},
      "host": {"platform": "...", "python": "...", "numpy": "...",
               "cpu_count": 4, "hostname": "...", "bench_n_env": null},
      "scenarios": [
        {"id": "blocked-cb-serial",
         "params": {...},                  # full scenario grid point
         "wall_seconds": 0.123,           # best of repeats
         "mean_seconds": 0.130,
         "all_seconds": [...],
         "phase_seconds": {...},          # per-stage timings from the solver
         "metrics": {...},                # engine metric delta for the solve
         "solve": {"q": 4, "iterations": 4, ...},
         "verified": true | false | null,
         "slowdown_threshold": 1.5},
        ...
      ]
    }

Reports are the unit the baseline comparator (:mod:`repro.bench.compare`)
consumes, and what CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time

import numpy as np

from repro.common.errors import ValidationError
from repro.bench.runner import ScenarioResult
from repro.bench.scenarios import BENCH_N_ENV, BenchSuite

#: Bump when the report layout changes incompatibly.
SCHEMA_VERSION = 1

#: Keys every report must carry to be considered well-formed.
_REQUIRED_KEYS = ("schema_version", "suite", "scenarios")


def git_metadata(cwd: str | None = None) -> dict:
    """Best-effort git revision info; never raises (benches run anywhere)."""

    def _run(*args: str) -> str | None:
        try:
            proc = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                                  text=True, timeout=10, check=False)
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout.strip() if proc.returncode == 0 else None

    sha = _run("rev-parse", "HEAD")
    branch = _run("rev-parse", "--abbrev-ref", "HEAD")
    status = _run("status", "--porcelain")
    return {
        "sha": sha,
        "branch": branch,
        "dirty": bool(status) if status is not None else None,
    }


def host_metadata() -> dict:
    """Environment fingerprint recorded with every report."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "hostname": socket.gethostname(),
        "bench_n_env": os.environ.get(BENCH_N_ENV),
    }


def build_report(suite: BenchSuite, results: list[ScenarioResult]) -> dict:
    """Assemble the versioned report dict for a finished suite run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite.name,
        "description": suite.description,
        "created_unix": time.time(),
        "git": git_metadata(),
        "host": host_metadata(),
        "scenarios": [result.as_dict() for result in results],
    }


def default_report_path(suite_name: str, directory: str = ".") -> str:
    """The conventional on-disk name for a suite's report."""
    return os.path.join(directory, f"BENCH_{suite_name}.json")


def write_report(report: dict, path: str) -> str:
    """Write a report as stable, human-diffable JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_report(report: dict, path: str = "<report>") -> dict:
    """Check a loaded report against the schema; returns it on success."""
    if not isinstance(report, dict):
        raise ValidationError(f"{path}: benchmark report must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in report]
    if missing:
        raise ValidationError(
            f"{path}: benchmark report is missing keys: {', '.join(missing)}")
    version = report["schema_version"]
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"{path}: unsupported benchmark schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})")
    if not isinstance(report["scenarios"], list):
        raise ValidationError(f"{path}: 'scenarios' must be a list")
    for entry in report["scenarios"]:
        if not isinstance(entry, dict) or "id" not in entry or "wall_seconds" not in entry:
            raise ValidationError(
                f"{path}: each scenario needs at least 'id' and 'wall_seconds'")
    return report


def load_report(path: str) -> dict:
    """Load and validate a ``BENCH_*.json`` report from disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except FileNotFoundError:
        raise ValidationError(f"benchmark report not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: invalid JSON ({exc})") from exc
    return validate_report(report, path)


def discover_archives(locations: list[str] | None = None) -> list[str]:
    """Find every ``BENCH_*.json`` archive under the given files/directories.

    ``locations`` may mix report files and directories (directories are
    scanned non-recursively for the ``BENCH_*.json`` naming convention).
    The default locations are the committed baselines plus any fresh local
    runs in the working directory — exactly what ``apspark bench calibrate``
    should fit against.  Paths are deduplicated and returned sorted, which
    fixes the observation order of the calibration fit.
    """
    if locations is None:
        locations = [os.path.join("benchmarks", "baselines"), "."]
    found: set[str] = set()
    for location in locations:
        if os.path.isdir(location):
            for name in os.listdir(location):
                if name.startswith("BENCH_") and name.endswith(".json"):
                    found.add(os.path.normpath(os.path.join(location, name)))
        elif os.path.isfile(location):
            found.add(os.path.normpath(location))
        else:
            raise ValidationError(
                f"benchmark archive location not found: {location}")
    return sorted(found)

"""Packed-bitset storage and kernels for the boolean ``reachability`` algebra.

The (or, and) semiring needs exactly one bit per matrix cell, yet a ``bool``
ndarray spends a full byte per cell and the generic product kernel streams a
``(m, k, chunk)`` byte cube through memory.  This module packs each block row
into ``uint64`` words — 64 adjacency bits per word, 64x denser than ``bool``
ndarrays, 8x fewer bytes of traffic — and rewrites the Table-1 building
blocks as word-parallel bitwise kernels:

* ⊕ (``MatMin``)  becomes ``np.bitwise_or`` over the word arrays,
* ⊗-then-⊕ inner products (``MatProd``) become, for every set bit ``k`` of
  the left operand, a word-wise OR of the right operand's row ``k`` into the
  output rows (the per-bit column expansion of ``C |= A[:, k] & bcast(B[k])``),
* the Floyd-Warshall pivot loop becomes ``rows with bit k set |= row k``.

Bit layout — the zero-padding invariant
---------------------------------------
A block of shape ``(r, c)`` is stored as ``(r, ceil(c / 64))`` ``uint64``
words; bit ``b`` of word ``w`` in row ``i`` is cell ``(i, 64 * w + b)``.
When ``c % 64 != 0`` (the ragged edge blocks of a decomposition whose
``n % 64 != 0``), the last word of every row has ``64 - c % 64`` padding
bits past column ``c`` that are **always zero**.  This is a *global
invariant*, not a per-call cleanup: :func:`pack_bits` establishes it, and
every kernel preserves it *for free* because each one only combines words
with OR/AND against other invariant-respecting words (``0 | 0 = 0``,
``x & 0 = 0``) — no kernel ever needs to re-mask.  The invariant is what
makes word-level ``np.array_equal`` a correct block-equality test, lets
:func:`packed_product` OR whole rows without clipping, and keeps
``unpack_bits`` round-trips exact.  Anything that writes raw words (a new
kernel, a deserializer) must uphold it or every downstream kernel silently
corrupts the ragged edge.

:class:`PackedBlock` is deliberately *not* an ndarray subclass: the blocked
solvers only ever transpose, copy, pickle and combine blocks, and keeping the
type opaque guarantees no NumPy kernel silently unpacks one.  The dispatch
points (``semiring_product``, ``elementwise_combine``,
``floyd_warshall_inplace``, ``fw_rank1_update``, ``extract_col``) each check
for :class:`PackedBlock` and route here.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError

#: Bits packed per storage word.
WORD_BITS = 64

_U64 = np.uint64


def packed_width(n_cols: int) -> int:
    """Number of ``uint64`` words needed for ``n_cols`` bits."""
    if n_cols < 0:
        raise ValidationError("column count must be non-negative")
    return (n_cols + WORD_BITS - 1) // WORD_BITS


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0: hardware popcount ufunc
    def popcount_words(words: np.ndarray) -> int:
        """Total number of set bits across a ``uint64`` word array."""
        return int(np.bitwise_count(np.asarray(words, dtype=_U64)).sum())
else:  # pragma: no cover - exercised only on NumPy < 2.0
    _POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)],
                             dtype=np.uint8)

    def popcount_words(words: np.ndarray) -> int:
        """Total number of set bits across a ``uint64`` word array.

        Byte-LUT fallback for NumPy < 2.0 (no ``bitwise_count``): view the
        words as bytes and sum a 256-entry popcount table.
        """
        arr = np.ascontiguousarray(words, dtype=_U64)
        return int(_POPCOUNT_LUT[arr.view(np.uint8)].sum(dtype=np.int64))


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(r, c)`` array into ``(r, ceil(c/64))`` uint64 words.

    Establishes the zero-padding invariant (see the module docstring): the
    padded byte buffer is zero-initialized, so bits beyond column ``c`` are
    zero in every word.  Accepts 1-D input as a single row (returned as
    ``(1, w)``).
    """
    arr = np.asarray(bits)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValidationError(f"pack_bits expects a 1-D or 2-D array, got ndim={arr.ndim}")
    arr = np.ascontiguousarray(arr, dtype=np.uint8)
    r, c = arr.shape
    w = packed_width(c)
    # packbits gives ceil(c/8) bytes per row; pad to the 8-byte word boundary.
    raw = np.packbits(arr, axis=1, bitorder="little")
    padded = np.zeros((r, w * 8), dtype=np.uint8)
    padded[:, : raw.shape[1]] = raw
    # Assemble words from byte lanes explicitly (endianness-independent).
    lanes = padded.reshape(r, w, 8)
    words = np.zeros((r, w), dtype=_U64)
    for lane in range(8):
        words |= lanes[:, :, lane].astype(_U64) << _U64(8 * lane)
    return words


def unpack_bits(words: np.ndarray, n_cols: int) -> np.ndarray:
    """Unpack ``(r, w)`` uint64 words back into a boolean ``(r, n_cols)`` array."""
    arr = np.asarray(words, dtype=_U64)
    if arr.ndim != 2:
        raise ValidationError(f"unpack_bits expects a 2-D word array, got ndim={arr.ndim}")
    r, w = arr.shape
    if packed_width(n_cols) != w:
        raise ValidationError(
            f"word array of width {w} cannot hold exactly {n_cols} columns")
    lanes = np.empty((r, w, 8), dtype=np.uint8)
    for lane in range(8):
        lanes[:, :, lane] = ((arr >> _U64(8 * lane)) & _U64(0xFF)).astype(np.uint8)
    flat = lanes.reshape(r, w * 8)
    bits = np.unpackbits(flat, axis=1, bitorder="little", count=n_cols)
    return bits.astype(bool)


class PackedBlock:
    """A boolean matrix block stored as 64 adjacency bits per ``uint64`` word.

    ``words`` has shape ``(rows, ceil(cols / 64))``; ``shape`` is the logical
    ``(rows, cols)``.  Instances pickle by their two attributes, so packed
    blocks travel across the ``processes`` scheduler backend and the shared
    file system at 1/8th the bytes of the equivalent ``bool`` block.
    """

    __slots__ = ("words", "shape", "_bits_set")

    def __init__(self, words: np.ndarray, shape: tuple[int, int]) -> None:
        words = np.asarray(words, dtype=_U64)
        rows, cols = int(shape[0]), int(shape[1])
        if words.ndim != 2 or words.shape != (rows, packed_width(cols)):
            raise ValidationError(
                f"word array has shape {words.shape}, expected "
                f"{(rows, packed_width(cols))} for logical shape {(rows, cols)}")
        self.words = words
        self.shape = (rows, cols)
        self._bits_set: int | None = None

    # -- construction / conversion ----------------------------------------
    @classmethod
    def from_dense(cls, block: np.ndarray) -> "PackedBlock":
        """Pack a dense boolean (or truthy) 2-D block."""
        arr = np.asarray(block)
        if arr.ndim != 2:
            raise ValidationError(f"block must be 2-D, got ndim={arr.ndim}")
        if arr.dtype != np.bool_:
            arr = arr.astype(bool)
        return cls(pack_bits(arr), arr.shape)

    def to_dense(self) -> np.ndarray:
        """Unpack back to a boolean ndarray of the logical shape."""
        return unpack_bits(self.words, self.shape[1])

    def copy(self) -> "PackedBlock":
        """Deep copy (fresh word array, same logical shape)."""
        clone = PackedBlock(self.words.copy(), self.shape)
        clone._bits_set = self._bits_set
        return clone

    # -- density metric -----------------------------------------------------
    @property
    def bits_set(self) -> int:
        """Number of set bits, popcounted lazily and cached on the block.

        The zero-padding invariant makes the word-level popcount exact (pad
        bits are always zero).  Kernels that mutate ``words`` in place call
        :meth:`invalidate_popcount`; anything else writing raw words must do
        the same or the cached density goes stale.
        """
        if self._bits_set is None:
            self._bits_set = popcount_words(self.words)
        return self._bits_set

    @property
    def density(self) -> float:
        """Fraction of logical cells set (``bits_set / (rows * cols)``)."""
        rows, cols = self.shape
        cells = rows * cols
        return (self.bits_set / cells) if cells else 0.0

    def invalidate_popcount(self) -> None:
        """Drop the cached popcount after an in-place mutation of ``words``."""
        self._bits_set = None

    # -- ndarray-flavoured surface the solvers rely on ---------------------
    @property
    def T(self) -> "PackedBlock":
        """Packed transpose (repack of the transposed dense bits)."""
        return PackedBlock.from_dense(self.to_dense().T)

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed word array."""
        return int(self.words.nbytes)

    @property
    def dtype(self) -> np.dtype:
        """The *logical* element dtype (the words themselves are uint64)."""
        return np.dtype(np.bool_)

    def bit_column(self, j: int) -> np.ndarray:
        """Boolean column ``j`` (one bit per row) as a dense vector."""
        rows, cols = self.shape
        if not 0 <= j < cols:
            raise ValidationError(f"column {j} out of range for shape {self.shape}")
        word, bit = divmod(j, WORD_BITS)
        return ((self.words[:, word] >> _U64(bit)) & _U64(1)).astype(bool)

    def bit_row(self, i: int) -> np.ndarray:
        """Boolean row ``i`` as a dense vector."""
        rows, cols = self.shape
        if not 0 <= i < rows:
            raise ValidationError(f"row {i} out of range for shape {self.shape}")
        return unpack_bits(self.words[i : i + 1], cols)[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedBlock):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> None:  # pragma: no cover - mutable container
        raise TypeError("PackedBlock is unhashable")

    def __reduce__(self):
        return (PackedBlock, (self.words, self.shape))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedBlock(shape={self.shape}, words={self.words.shape})"


class PackedVector:
    """A packed boolean broadcast vector: 64 cells per ``uint64`` word.

    The 1-D counterpart of :class:`PackedBlock`, carrying the fw-2d pivot
    column for the ``reachability`` algebra: ``words`` is a flat
    ``(ceil(n / 64),)`` word array, ``n`` the logical bit count.  Instances
    pickle by those two attributes, so a broadcast column crosses the
    ``processes`` backend's IPC at 1/8th the bytes of the ``bool`` vector it
    replaces.  Slicing (``vec[a:b]``) returns a *dense* boolean slice — the
    per-block windows of the rank-1 update are tiny next to the broadcast
    itself, and block boundaries are not word-aligned, so the packed form is
    kept only for the wire.
    """

    __slots__ = ("words", "n")

    def __init__(self, words: np.ndarray, n: int) -> None:
        words = np.asarray(words, dtype=_U64)
        n = int(n)
        if words.ndim != 1 or words.shape[0] != packed_width(n):
            raise ValidationError(
                f"word vector has shape {words.shape}, expected "
                f"({packed_width(n)},) for {n} bits")
        self.words = words
        self.n = n

    @classmethod
    def from_dense(cls, bits: np.ndarray) -> "PackedVector":
        """Pack a 1-D boolean (or truthy) vector."""
        arr = np.asarray(bits)
        if arr.ndim != 1:
            raise ValidationError(
                f"packed vector source must be 1-D, got ndim={arr.ndim}")
        return cls(pack_bits(arr)[0], arr.shape[0])

    def to_dense(self) -> np.ndarray:
        """Unpack back to a boolean vector of length ``n``."""
        return unpack_bits(self.words[None, :], self.n)[0]

    # -- ndarray-flavoured surface the update kernels rely on --------------
    @property
    def shape(self) -> tuple[int]:
        """Logical length as a 1-tuple (ndarray-compatible)."""
        return (self.n,)

    @property
    def dtype(self) -> np.dtype:
        """The *logical* element dtype (the words themselves are uint64)."""
        return np.dtype(np.bool_)

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed word vector (what the broadcast ships)."""
        return int(self.words.nbytes)

    def __getitem__(self, index: slice) -> np.ndarray:
        """Dense boolean window ``[start:stop]`` via a word-window unpack."""
        if not isinstance(index, slice):
            raise ValidationError("packed vectors only support slice indexing")
        start, stop, step = index.indices(self.n)
        if step != 1:
            raise ValidationError("packed vectors only support unit-step slices")
        w0 = start // WORD_BITS
        w1 = packed_width(stop)
        window_bits = min(self.n, w1 * WORD_BITS) - w0 * WORD_BITS
        bits = unpack_bits(self.words[None, w0:w1], window_bits)[0]
        return bits[start - w0 * WORD_BITS: stop - w0 * WORD_BITS]

    def __reduce__(self):
        return (PackedVector, (self.words, self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedVector(n={self.n}, words={self.words.shape})"


def is_packed(block) -> bool:
    """True when ``block`` is a :class:`PackedBlock`."""
    return isinstance(block, PackedBlock)


def is_packed_vector(piece) -> bool:
    """True when ``piece`` is a :class:`PackedVector`."""
    return isinstance(piece, PackedVector)


def as_packed(block) -> PackedBlock:
    """Coerce a dense boolean block (or pass a packed one through)."""
    if isinstance(block, PackedBlock):
        return block
    return PackedBlock.from_dense(block)


def as_dense_bool(block) -> np.ndarray:
    """Coerce a packed block (or dense truthy array) to a boolean ndarray."""
    if isinstance(block, PackedBlock):
        return block.to_dense()
    arr = np.asarray(block)
    return arr if arr.dtype == np.bool_ else arr.astype(bool)


# ---------------------------------------------------------------------------
# Word-parallel kernels
# ---------------------------------------------------------------------------
def _check_same_shape(a: PackedBlock, b: PackedBlock, op: str) -> None:
    if a.shape != b.shape:
        raise ValidationError(f"{op} requires equal shapes, got {a.shape} and {b.shape}")


def packed_or(a: PackedBlock, b: PackedBlock, out: PackedBlock | None = None) -> PackedBlock:
    """Elementwise ⊕ (boolean OR), 64 cells per word operation."""
    _check_same_shape(a, b, "packed ⊕")
    if out is None:
        return PackedBlock(np.bitwise_or(a.words, b.words), a.shape)
    _check_same_shape(a, out, "packed ⊕ (out)")
    np.bitwise_or(a.words, b.words, out=out.words)
    out.invalidate_popcount()
    return out


def packed_and(a: PackedBlock, b: PackedBlock, out: PackedBlock | None = None) -> PackedBlock:
    """Elementwise ⊗ (boolean AND), 64 cells per word operation."""
    _check_same_shape(a, b, "packed ⊗")
    if out is None:
        return PackedBlock(np.bitwise_and(a.words, b.words), a.shape)
    _check_same_shape(a, out, "packed ⊗ (out)")
    np.bitwise_and(a.words, b.words, out=out.words)
    out.invalidate_popcount()
    return out


#: Inner indices expanded per vectorized step of the dense-path product; the
#: ``(m, _K_CHUNK, w)`` uint64 temporary stays well inside L2 for the block
#: sizes the paper sweeps.
_K_CHUNK = 64

#: Selector path is chosen when fewer than this fraction of A's bits are set:
#: its cost is ``popcount(A) * w`` gathered words versus the dense path's
#: ``2 m k w`` streamed ones, but gather/scatter traffic is ~4x dearer per
#: word than a contiguous stream.
_SPARSE_PATH_DENSITY = 0.125


def packed_product(a: PackedBlock, b: PackedBlock,
                   out: PackedBlock | None = None) -> PackedBlock:
    """Packed boolean semiring product ``C[i, j] = OR_k A[i, k] AND B[k, j]``.

    Two word-parallel strategies, chosen by the density of ``A``:

    * *selector path* (sparse ``A``): for every inner index ``k``, the rows
      of ``A`` with bit ``k`` set absorb ``B``'s packed row ``k`` with a
      word-wise OR — O(popcount(A) · w) gathered words;
    * *bit-expansion path* (dense ``A``, e.g. a closure block that has
      saturated): chunks of 64 bit-columns of ``A`` are expanded to
      all-ones/zero ``uint64`` masks and combined as
      ``OR-reduce(mask[:, K, None] & B[K])`` — O(m·k·w) streamed words with
      a handful of NumPy calls per chunk and no gather/scatter.

    Both are exact; when ``out`` is given the product *accumulates* into it
    (``out ⊕= A ⊗ B``), the reduction shape ``MatProd`` + ``MatMin`` needs.
    """
    m, k = a.shape
    kb, n = b.shape
    if k != kb:
        raise ValidationError(
            f"packed MatProd inner dimensions must agree, got {a.shape} and {b.shape}")
    if out is None:
        out = PackedBlock(np.zeros((m, b.words.shape[1]), dtype=_U64), (m, n))
    elif out.shape != (m, n):
        raise ValidationError(f"out has shape {out.shape}, expected {(m, n)}")
    # A's bits as a (k, m) byte matrix: row ``kk`` is A's bit-column ``kk``,
    # contiguous for both the selector scan and the mask expansion.
    a_cols = np.ascontiguousarray(a.to_dense().T)
    out_words = out.words
    b_words = b.words
    out.invalidate_popcount()
    # Path choice rides on the block's cached popcount (word-level, no
    # unpacking): a closure block is multiplied many times per sweep, so the
    # density is a per-block property, not a per-call recount.
    if a.bits_set < _SPARSE_PATH_DENSITY * m * k:
        for kk in range(k):
            rows = np.flatnonzero(a_cols[kk])
            if rows.size:
                out_words[rows] |= b_words[kk]
        return out
    for k0 in range(0, k, _K_CHUNK):
        k1 = min(k0 + _K_CHUNK, k)
        # (m, k1-k0) all-ones/zero masks from A's bits (two's complement).
        masks = np.zeros((m, k1 - k0), dtype=_U64) - a_cols[k0:k1].T
        # (m, k1-k0, w) AND, then OR-reduce the inner axis into the output.
        expanded = masks[:, :, None] & b_words[k0:k1][None, :, :]
        np.bitwise_or(out_words, np.bitwise_or.reduce(expanded, axis=1),
                      out=out_words)
    return out


def packed_floyd_warshall_inplace(block: PackedBlock) -> PackedBlock:
    """In-place packed Floyd-Warshall (transitive closure of a square block).

    Pivot ``k``'s relaxation ``dist[i, j] |= dist[i, k] & dist[k, j]``
    collapses to: every row with bit ``k`` set ORs in row ``k`` — one
    word-parallel OR over the selected rows per pivot.
    """
    rows, cols = block.shape
    if rows != cols:
        raise ValidationError(f"Floyd-Warshall needs a square block, got {block.shape}")
    words = block.words
    for k in range(rows):
        word, bit = divmod(k, WORD_BITS)
        # All-ones/zero mask per row (two's complement of the pivot bit):
        # a pure broadcast, no gather/scatter, stable cost as the closure
        # saturates.  Row k ORs with itself (bit (k, k) is set) — harmless.
        mask = _U64(0) - ((words[:, word] >> _U64(bit)) & _U64(1))
        words |= mask[:, None] & words[k][None, :]
    block.invalidate_popcount()
    return block


def packed_rank1_update(block: PackedBlock, col_i: np.ndarray,
                        row_j: np.ndarray) -> PackedBlock:
    """Packed ``FloydWarshallUpdate``: ``block ⊕= col_i ⊗ row_j`` (outer AND).

    ``col_i`` selects the rows to update (one bit per block row); ``row_j``
    is OR-ed into each of them as a packed word row.  Returns a new block
    (the solvers treat block records as immutable values).
    """
    col = np.asarray(col_i).reshape(-1).astype(bool)
    row = np.asarray(row_j).reshape(-1).astype(bool)
    if col.shape[0] != block.shape[0] or row.shape[0] != block.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {col.shape[0]}/{row.shape[0]} "
            f"but block is {block.shape}")
    out = block.copy()
    sel = np.flatnonzero(col)
    if sel.size:
        out.words[sel] |= pack_bits(row)[0]
        out.invalidate_popcount()
    return out


def packed_rank1_update_inplace(block: PackedBlock, col_i: np.ndarray,
                                row_j: np.ndarray) -> np.ndarray:
    """In-place packed rank-1 update returning the changed-row mask.

    The dynamic-update sibling of :func:`packed_rank1_update`: mutates
    ``block.words`` directly and reports which logical rows gained at least
    one bit — the mask the serving layer uses to invalidate exactly the
    parent-row cache entries the update touched.
    """
    col = np.asarray(col_i).reshape(-1).astype(bool)
    row = np.asarray(row_j).reshape(-1).astype(bool)
    if col.shape[0] != block.shape[0] or row.shape[0] != block.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {col.shape[0]}/{row.shape[0]} "
            f"but block is {block.shape}")
    changed = np.zeros(block.shape[0], dtype=bool)
    sel = np.flatnonzero(col)
    if sel.size:
        packed_row = pack_bits(row)[0]
        relaxed = block.words[sel] | packed_row
        grew = np.any(relaxed != block.words[sel], axis=1)
        if grew.any():
            block.words[sel] = relaxed
            block.invalidate_popcount()
            changed[sel[grew]] = True
    return changed


def packed_closure(adjacency: np.ndarray) -> np.ndarray:
    """Dense-in, dense-out transitive closure through the packed kernels.

    Reference entry point for tests and benchmarks: packs the boolean
    adjacency, runs the packed Floyd-Warshall, and unpacks the result.
    """
    arr = np.asarray(adjacency)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"adjacency must be square, got shape {arr.shape}")
    packed = PackedBlock.from_dense(arr)
    return packed_floyd_warshall_inplace(packed).to_dense()

"""Pluggable path algebras: semirings the APSP machinery is generic over.

The paper poses APSP as computing the closure of the adjacency matrix under
the (min, +) semiring built from the ``MatProd`` / ``MatMin`` /
``FloydWarshall`` building blocks of Table 1.  Nothing in that construction
is specific to (min, +): swapping the pair of operations turns the very same
solvers into a family of path-problem solvers, GraphBLAS-style.

A :class:`Semiring` bundles

* ``add_op`` — the path-choice operation ⊕ (``MatMin`` generalized),
* ``mul_op`` — the path-extension operation ⊗ (the inner op of ``MatProd``),
* ``zero``  — the ⊕ identity and ⊗ annihilator ("no path"),
* ``one``   — the ⊗ identity (the self-distance on the diagonal),
* a dtype policy (which NumPy dtypes the algebra supports and its default),
* an optional input validator encoding the algebra's precondition on edge
  weights (e.g. non-negativity for shortest paths),
* a *witness* policy (``witness_select``): the arg-reduction matching ⊕, so
  the kernels can remember **which** operand won and emit parent pointers
  for path reconstruction (see :mod:`repro.linalg.witness`).

Registered instances:

=================  =========  =========  ========  ========  =======  ==================
name               ⊕          ⊗          zero      one       witness  weights
=================  =========  =========  ========  ========  =======  ==================
``shortest-path``  min        ``+``      ``+inf``  ``0``     argmin   non-negative
``widest-path``    max        min        ``0``     ``+inf``  argmax   non-negative
``most-reliable``  max        ``×``      ``0``     ``1``     argmax   in ``[0, 1]``
``longest-path``   max        ``+``      ``-inf``  ``0``     argmax   DAG inputs only
``reachability``   or         and        ``False`` ``True``  argmax   none (bool)
=================  =========  =========  ========  ========  =======  ==================

The witness-composition rule the paired kernels implement: elementwise ⊕
keeps the winning operand's pointers (ties keep the first operand), and the
product ``C = A ⊗ B`` composes tails via ``parent_C[i, j] = parent_B[k*, j]``
where ``k*`` is the ``witness_select`` winner of the inner reduction — the
predecessor of ``j`` depends only on the final leg of the combined path.
Every ⊕ here is *selective* (min/max/or: the result **is** one of the
operands), which is what makes a per-cell argmin/argmax witness exact rather
than approximate; a non-selective ⊕ (e.g. counting paths with ``+``) would
have ``witness_select = None`` and simply opt out of ``paths=True``.

All registered algebras except ``longest-path`` are *absorptive*
(``one ⊕ x = one``): cycles never improve a path, so Floyd-Warshall and
repeated squaring are correct on arbitrary graphs.  ``longest-path`` is not,
which is why its input validator rejects anything with a directed cycle.

Semirings pickle by name (they travel inside the picklable phase callables of
the ``processes`` scheduler backend), so registered instances must stay
importable from this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.common.errors import ConfigurationError, ValidationError


# ---------------------------------------------------------------------------
# Input validators (module-level so they pickle with their Semiring)
# ---------------------------------------------------------------------------
def validate_nonnegative_weights(weights: np.ndarray, name: str = "adjacency") -> None:
    """Precondition of (min, +) and (max, min): finite weights must be >= 0."""
    arr = np.asarray(weights)
    if arr.dtype == np.bool_:
        return
    finite = arr[np.isfinite(arr)]
    if finite.size and float(finite.min()) < 0.0:
        raise ValidationError(f"{name} contains negative weights; only "
                              "non-negative edge weights are supported by this algebra")


def validate_probability_weights(weights: np.ndarray, name: str = "adjacency") -> None:
    """Precondition of (max, ×): finite weights are probabilities in [0, 1]."""
    arr = np.asarray(weights)
    if arr.dtype == np.bool_:
        return
    finite = arr[np.isfinite(arr)]
    if finite.size and (float(finite.min()) < 0.0 or float(finite.max()) > 1.0):
        raise ValidationError(f"{name} must hold edge reliabilities in [0, 1] "
                              "for the most-reliable path algebra")


def validate_dag_weights(weights: np.ndarray, name: str = "adjacency") -> None:
    """Precondition of (max, +): the edge set must be acyclic (Kahn's algorithm).

    With cycles, longest path lengths diverge and the semiring closure is
    undefined; note a symmetric (undirected) matrix with any edge is cyclic.
    """
    arr = np.asarray(weights)
    if arr.dtype == np.bool_:
        edges = arr.copy()
    else:
        edges = np.isfinite(np.asarray(arr, dtype=np.float64))
    np.fill_diagonal(edges, False)
    n = edges.shape[0]
    indegree = edges.sum(axis=0).astype(np.int64)
    stack = [v for v in range(n) if indegree[v] == 0]
    seen = 0
    while stack:
        v = stack.pop()
        seen += 1
        for w in np.nonzero(edges[v])[0]:
            indegree[w] -= 1
            if indegree[w] == 0:
                stack.append(int(w))
    if seen != n:
        raise ValidationError(
            f"{name} contains a directed cycle; the longest-path algebra is "
            "only defined on DAGs (undirected graphs are always cyclic)")


# ---------------------------------------------------------------------------
# The Semiring abstraction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Semiring:
    """A path algebra: ``(⊕, ⊗, zero, one)`` plus its dtype policy.

    Instances are frozen and stateless; the heavy lifting is delegated to the
    NumPy ufuncs held in ``add_op`` / ``mul_op``, so the generic kernels run
    at exactly the speed of the hand-written (min, +) originals — the
    "specialization" is the ufunc dispatch NumPy already does.
    """

    name: str
    add_op: np.ufunc                       # ⊕, elementwise binary
    mul_op: np.ufunc                       # ⊗, elementwise binary
    zero: float | bool                     # ⊕ identity, ⊗ annihilator
    one: float | bool                      # ⊗ identity
    dtypes: tuple[str, ...] = ("float64", "float32")
    default_dtype: str = "float64"
    input_validator: Callable[[np.ndarray], None] | None = None
    absorptive: bool = True                # one ⊕ x == one: cycles never help
    #: Block storage policies this algebra's kernels can run on, first is the
    #: default.  ``"dense"`` is a plain ndarray block; ``"packed"`` is the
    #: uint64 packed-bitset layout of :mod:`repro.linalg.bitset` (64 cells
    #: per word — only meaningful for one-bit-per-cell boolean algebras).
    storages: tuple[str, ...] = ("dense",)
    #: Block grid layouts this algebra's solves can run under, first is the
    #: preferred one for symmetric inputs.  ``"triangular"`` stores the upper
    #: block triangle and serves mirror blocks via transposes (symmetric
    #: inputs only); ``"full"`` stores all q² blocks and supports directed
    #: (asymmetric) inputs.  Algebras whose inputs are inherently directed
    #: (e.g. the DAG-only longest-path algebra) list ``("full",)``.
    layouts: tuple[str, ...] = ("triangular", "full")
    #: Witness policy: the arg-reduction matching ⊕ (``"min"`` for a min-⊕,
    #: ``"max"`` for max/or), or ``None`` when the algebra cannot track
    #: "which operand won" and therefore cannot reconstruct paths.  Only
    #: meaningful for selective ⊕ operations (the result is one operand).
    witness_select: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.default_dtype not in self.dtypes:
            raise ConfigurationError(
                f"algebra {self.name!r}: default dtype {self.default_dtype!r} "
                f"not among supported dtypes {self.dtypes}")
        unknown = set(self.storages) - {"dense", "packed"}
        if not self.storages or unknown:
            raise ConfigurationError(
                f"algebra {self.name!r}: invalid storage policies {self.storages}")
        unknown_layouts = set(self.layouts) - {"triangular", "full"}
        if not self.layouts or unknown_layouts:
            raise ConfigurationError(
                f"algebra {self.name!r}: invalid layout policies {self.layouts}")
        if self.witness_select not in (None, "min", "max"):
            raise ConfigurationError(
                f"algebra {self.name!r}: witness_select must be None, 'min' "
                f"or 'max', got {self.witness_select!r}")

    # -- pickling ----------------------------------------------------------
    def __reduce__(self):
        """Pickle by name so phase callables ship cheaply to worker processes."""
        return (get_algebra, (self.name,))

    # -- dtype policy ------------------------------------------------------
    def resolve_dtype(self, dtype: str | np.dtype | None = None) -> np.dtype:
        """Resolve a requested dtype against this algebra's policy.

        ``None`` selects the algebra's default; anything else must name one
        of the supported dtypes.
        """
        if dtype is None:
            return np.dtype(self.default_dtype)
        try:
            resolved = np.dtype(dtype)
        except TypeError as exc:
            raise ConfigurationError(f"invalid dtype {dtype!r}") from exc
        if resolved.name not in self.dtypes:
            raise ConfigurationError(
                f"algebra {self.name!r} supports dtypes {', '.join(self.dtypes)}; "
                f"got {resolved.name!r}")
        return resolved

    # -- storage policy ----------------------------------------------------
    @property
    def default_storage(self) -> str:
        """The block-storage layout this algebra's solves use by default."""
        return self.storages[0]

    def resolve_storage(self, storage: str | None = None, *,
                        paths: bool = False) -> str:
        """Resolve a requested block-storage policy against this algebra.

        ``None`` or ``"auto"`` selects the algebra's default (``"packed"``
        for the boolean reachability algebra, ``"dense"`` otherwise);
        anything else must be one of the supported policies.  With
        ``paths=True`` (witness tracking) the algebra must have a witness
        policy and the blocks must be dense — there are no packed-bitset
        witness kernels — so ``auto`` resolves to ``"dense"`` and an
        explicit ``"packed"`` request is rejected.
        """
        if paths and not self.supports_witness:
            raise ConfigurationError(
                f"algebra {self.name!r} declares no witness policy "
                "(witness_select is None); path reconstruction is "
                "unavailable for it")
        if storage is None:
            requested = "auto"
        else:
            requested = str(storage).strip().lower()
        if requested == "auto":
            return "dense" if paths else self.default_storage
        if requested not in self.storages:
            raise ConfigurationError(
                f"algebra {self.name!r} supports block storage "
                f"{', '.join(self.storages)}; got {requested!r}")
        if paths and requested == "packed":
            raise ConfigurationError(
                "witness tracking has no packed-bitset kernels; "
                "request storage='dense' (or 'auto') with paths=True")
        return requested

    # -- layout policy -----------------------------------------------------
    @property
    def default_layout(self) -> str:
        """The block grid layout this algebra prefers for symmetric inputs."""
        return self.layouts[0]

    def resolve_layout(self, layout: str | None = None, *,
                       directed: bool = False) -> str:
        """Resolve a requested block grid layout against this algebra.

        ``None`` or ``"auto"`` defers to input inspection (symmetric →
        triangular, asymmetric → full) and therefore stays ``"auto"`` here —
        unless ``directed=True`` forces the full grid, or the algebra only
        supports one layout.  Explicit requests must name a supported layout;
        ``directed=True`` rejects the triangular (mirrored) layout, which
        only represents symmetric matrices.
        """
        if directed and "full" not in self.layouts:
            raise ConfigurationError(
                f"algebra {self.name!r} has no full-grid layout; it cannot "
                "solve directed inputs")
        if layout is None:
            requested = "auto"
        else:
            requested = str(layout).strip().lower()
        if requested == "auto":
            if directed:
                return "full"
            if len(self.layouts) == 1:
                return self.layouts[0]
            return "auto"
        if requested not in self.layouts:
            raise ConfigurationError(
                f"algebra {self.name!r} supports block layouts "
                f"{', '.join(self.layouts)}; got {requested!r}")
        if directed and requested == "triangular":
            raise ConfigurationError(
                "directed inputs cannot use the triangular (mirrored) "
                "layout; request layout='full' (or 'auto') with directed=True")
        return requested

    def result_dtype(self, *operands: np.ndarray) -> np.dtype:
        """Dtype the kernels should compute in for the given operands.

        Preserves a supported common dtype (``float32`` operands stay
        ``float32`` — half the memory traffic of the hot product kernel);
        anything unsupported (e.g. integer inputs) is upcast to the default.
        """
        common = np.result_type(*operands) if operands else np.dtype(self.default_dtype)
        if common.name in self.dtypes:
            return common
        return np.dtype(self.default_dtype)

    # -- elementwise operations -------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Elementwise ⊕ (the generalized ``MatMin``)."""
        return self.add_op(a, b, out=out)

    def mul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Elementwise ⊗ (the inner operation of ``MatProd``)."""
        return self.mul_op(a, b, out=out)

    def add_reduce(self, array: np.ndarray, axis: int,
                   out: np.ndarray | None = None) -> np.ndarray:
        """⊕-reduction along ``axis`` (the outer operation of ``MatProd``)."""
        return self.add_op.reduce(array, axis=axis, out=out)

    # -- witness policy ----------------------------------------------------
    @property
    def supports_witness(self) -> bool:
        """True when this algebra can track argmin/argmax path witnesses."""
        return self.witness_select is not None

    def arg_select(self, array: np.ndarray, axis: int) -> np.ndarray:
        """Indices of the ⊕-winning elements along ``axis``.

        The witness companion of :meth:`add_reduce`: for every reduced lane
        it returns the index of the element the ⊕-reduction selected (first
        winner on ties, matching NumPy's argmin/argmax).  Raises for
        algebras without a witness policy.
        """
        if self.witness_select == "min":
            return np.argmin(array, axis=axis)
        if self.witness_select == "max":
            return np.argmax(array, axis=axis)
        raise ConfigurationError(
            f"algebra {self.name!r} declares no witness policy; path "
            "reconstruction is unavailable for it")

    # -- scalars and identities -------------------------------------------
    def zero_like(self, dtype: str | np.dtype | None = None):
        """The "no path" scalar cast to the given (or default) dtype."""
        return np.dtype(dtype or self.default_dtype).type(self.zero)

    def one_like(self, dtype: str | np.dtype | None = None):
        """The self-distance scalar cast to the given (or default) dtype."""
        return np.dtype(dtype or self.default_dtype).type(self.one)

    def identity_matrix(self, n: int, dtype: str | np.dtype | None = None) -> np.ndarray:
        """The ⊗-identity matrix: ``one`` on the diagonal, ``zero`` elsewhere."""
        dt = self.resolve_dtype(dtype)
        out = np.full((n, n), self.zero, dtype=dt)
        np.fill_diagonal(out, self.one)
        return out

    # -- input handling ----------------------------------------------------
    def validate_input(self, weights: np.ndarray, name: str = "adjacency") -> None:
        """Run this algebra's precondition check on raw edge weights.

        This is the hook that makes weight validation algebra-conditional:
        non-negativity is a (min, +)/(max, min) precondition, ``[0, 1]`` a
        (max, ×) one, acyclicity a (max, +) one, and reachability needs none.
        """
        if self.input_validator is not None:
            self.input_validator(weights, name)

    def prepare_adjacency(self, weights: np.ndarray,
                          dtype: str | np.dtype | None = None) -> np.ndarray:
        """Map canonical edge weights into this algebra's domain.

        The canonical external representation is a square weight matrix where
        non-finite entries (``inf``/``nan``) mean "no edge".  The returned
        matrix replaces missing edges with the algebra's ``zero``, the
        diagonal with ``one``, and is cast to the resolved dtype.  Boolean
        inputs are accepted directly (``True`` = edge) for the boolean
        algebra.
        """
        arr = np.asarray(weights)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValidationError(f"adjacency must be square, got shape {arr.shape}")
        # No explicit dtype: preserve a supported input dtype (float32 stays
        # float32), falling back to the algebra default otherwise.
        dt = self.resolve_dtype(dtype) if dtype is not None else self.result_dtype(arr)
        if dt == np.bool_:
            if arr.dtype == np.bool_:
                out = arr.copy()
            else:
                out = np.isfinite(np.asarray(arr, dtype=np.float64))
        else:
            out = np.array(arr, dtype=dt, copy=True)
            out[~np.isfinite(out)] = self.zero_like(dt)
        np.fill_diagonal(out, self.one_like(dt) if dt != np.bool_ else True)
        return out

    def allclose(self, a: np.ndarray, b: np.ndarray, *,
                 rtol: float = 1e-5, atol: float = 1e-8) -> bool:
        """Dtype-appropriate closeness: exact for bool, tolerant for floats."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.dtype == np.bool_ or b.dtype == np.bool_:
            return bool(np.array_equal(a, b))
        return bool(np.allclose(a, b, rtol=rtol, atol=atol, equal_nan=True))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Semiring({self.name}: ⊕={self.add_op.__name__}, "
                f"⊗={self.mul_op.__name__}, zero={self.zero}, one={self.one})")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_ALGEBRAS: dict[str, Semiring] = {}
_ALIAS_INDEX: dict[str, str] = {}


def _normalise(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_algebra(semiring: Semiring, *, aliases: Iterable[str] = ()) -> Semiring:
    """Register a semiring (and optional aliases) for lookup by name."""
    canonical = _normalise(semiring.name)
    for alias in aliases:
        key = _normalise(alias)
        owner = _ALIAS_INDEX.get(key)
        if owner is not None and owner != canonical:
            raise ConfigurationError(
                f"algebra alias {alias!r} already registered for {owner!r}")
    _ALGEBRAS[canonical] = semiring
    for alias in aliases:
        _ALIAS_INDEX[_normalise(alias)] = canonical
    return semiring


def resolve_algebra_name(name: str) -> str:
    """Resolve a name or alias to the canonical algebra name."""
    key = _normalise(name)
    key = _ALIAS_INDEX.get(key, key)
    if key not in _ALGEBRAS:
        raise ConfigurationError(
            f"unknown algebra {name!r}; available: {', '.join(available_algebras())}")
    return key


def get_algebra(algebra: "str | Semiring | None") -> Semiring:
    """Look up an algebra by name/alias; ``None`` means (min, +); instances pass through."""
    if algebra is None:
        return SHORTEST_PATH
    if isinstance(algebra, Semiring):
        return algebra
    return _ALGEBRAS[resolve_algebra_name(algebra)]


def available_algebras() -> list[str]:
    """Canonical names of the registered algebras, sorted."""
    return sorted(_ALGEBRAS)


def algebra_catalog() -> list[Semiring]:
    """Registered :class:`Semiring` instances, sorted by name."""
    return [_ALGEBRAS[name] for name in available_algebras()]


# ---------------------------------------------------------------------------
# The registered instances
# ---------------------------------------------------------------------------
SHORTEST_PATH = register_algebra(Semiring(
    name="shortest-path",
    add_op=np.minimum, mul_op=np.add,
    zero=float("inf"), one=0.0,
    input_validator=validate_nonnegative_weights,
    witness_select="min",
    description="(min, +) tropical semiring — the paper's APSP closure",
), aliases=("minplus", "min-plus", "apsp", "tropical"))

WIDEST_PATH = register_algebra(Semiring(
    name="widest-path",
    add_op=np.maximum, mul_op=np.minimum,
    zero=0.0, one=float("inf"),
    input_validator=validate_nonnegative_weights,
    witness_select="max",
    description="(max, min) bottleneck semiring — maximum-capacity paths",
), aliases=("maxmin", "max-min", "bottleneck"))

MOST_RELIABLE = register_algebra(Semiring(
    name="most-reliable",
    add_op=np.maximum, mul_op=np.multiply,
    zero=0.0, one=1.0,
    input_validator=validate_probability_weights,
    witness_select="max",
    description="(max, ×) Viterbi semiring — most-probable paths over [0, 1]",
), aliases=("maxtimes", "max-times", "reliability", "viterbi"))

LONGEST_PATH = register_algebra(Semiring(
    name="longest-path",
    add_op=np.maximum, mul_op=np.add,
    zero=float("-inf"), one=0.0,
    input_validator=validate_dag_weights,
    absorptive=False,
    # DAG inputs are inherently asymmetric: the mirrored triangular layout
    # cannot represent them, so critical paths always run on the full grid.
    layouts=("full",),
    witness_select="max",
    description="(max, +) semiring — critical paths; DAG inputs only",
), aliases=("maxplus", "max-plus", "critical-path"))

REACHABILITY = register_algebra(Semiring(
    name="reachability",
    add_op=np.logical_or, mul_op=np.logical_and,
    zero=False, one=True,
    dtypes=("bool",), default_dtype="bool",
    storages=("packed", "dense"),
    witness_select="max",
    description="(or, and) boolean semiring — transitive closure",
), aliases=("boolean", "or-and", "transitive-closure"))

#: Algebras safe on arbitrary (possibly cyclic, undirected) graphs — the set
#: the distributed solvers advertise by default.
ABSORPTIVE_ALGEBRAS: tuple[str, ...] = tuple(
    s.name for s in algebra_catalog() if s.absorptive)

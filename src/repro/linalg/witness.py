"""Witness (parent-pointer) tracking for path reconstruction.

The closure of the adjacency matrix answers "how far?"; this module makes
every witness-capable algebra also answer "which way?".  The idea is the
classic "argmin witness": wherever ⊕ chooses between path values, remember
*which* operand won, and wherever ⊗ extends paths, compose the remembered
pointers with the standard rule ``parent[i, j] = parent[k*, j]`` (the
predecessor of ``j`` only depends on the tail of the combined path).

Storage model — why every block carries **two** witness planes
--------------------------------------------------------------
The solvers store only upper-triangular blocks and materialize ``A_JI`` as
``A_IJ.T`` (Section 4's symmetric storage).  Distance values transpose; a
predecessor matrix does **not**: ``parents[j, i]`` (the predecessor of ``i``
on an optimal ``j -> i`` path) is not a function of ``parents[i, j]``.  For
an undirected graph, however, the reverse of an optimal ``i -> j`` path is an
optimal ``j -> i`` path, so the predecessor of ``i`` on the reversed path is
exactly the *successor* of ``i`` on the forward path.  A
:class:`WitnessBlock` therefore carries, alongside its ``values``:

* ``parents[i, j]`` — the global predecessor of column-vertex ``j`` on an
  optimal path from row-vertex ``i`` to ``j``;
* ``succs[i, j]``  — the global successor of row-vertex ``i`` on that path
  (``i``'s neighbour toward ``j``).

With both planes the transpose is closed::

    (V, P, R).T  =  (V.T, R.T, P.T)

which is what lets witnessed blocks flow through ``CopyCol``, the mirror
lookups of :class:`~repro.linalg.blocks.BlockedMatrix`, and the
repeated-squaring column orientation completely unchanged.

The successor plane exists *only* to serve those mirrored reads.  Under the
full-grid directed layout nothing is ever mirrored, so blocks carry a
**single plane** (``succs is None``): every kernel composes parents from
parents exactly as below and simply skips the successor arithmetic, and
``.T`` raises rather than fabricate a plane that does not exist.

Composition rules
-----------------
For the semiring product ``C = A ⊗ B`` with winning inner index ``k*``::

    P_C[i, j] = P_B[k*, j]      (falling back to P_A[i, k*] when k* == j)
    R_C[i, j] = R_A[i, k*]      (falling back to R_B[k*, j] when k* == i)

the fallbacks cover the empty-subpath cases (the winning index hitting the
``one`` diagonal of either operand); cells whose combined value is the
algebra's ``zero`` ("no path") are masked back to :data:`NO_VERTEX`.  For
elementwise ⊕ the winner simply keeps its planes, with ties resolved to the
*first* operand — which also makes the Floyd-Warshall rank-1 update safe:
the degenerate pivot cells (``i == k`` or ``j == k``) can tie but never
strictly improve, so their meaningless candidate pointers never survive.

All indices are **global** vertex ids (stamped at block-cutting time by
:func:`witness_block`), so kernels only ever gather and select; they never
need to know a block's position in the grid.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SolverError, ValidationError
from repro.linalg.algebra import Semiring, get_algebra

#: Sentinel for "no predecessor/successor": unreachable pairs and the
#: diagonal (a path from a vertex to itself is empty).
NO_VERTEX = np.int32(-1)


def _as_witness_index(array: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    arr = np.asarray(array, dtype=np.int32)
    if arr.shape != shape:
        raise ValidationError(
            f"witness plane has shape {arr.shape}, expected {shape}")
    return arr


class WitnessBlock:
    """A matrix block paired with its parent/successor witness planes.

    ``values`` is the ordinary distance block; ``parents`` and ``succs`` are
    ``int32`` arrays of the same shape holding global vertex ids (see the
    module docstring for their exact meaning).  Like
    :class:`~repro.linalg.bitset.PackedBlock`, this is deliberately *not* an
    ndarray subclass: the dispatch points (``semiring_product``,
    ``elementwise_combine``, ``floyd_warshall_inplace``, ``fw_rank1_update``,
    ``extract_col``, result assembly) check for it explicitly, and no NumPy
    kernel can silently drop the witness planes.  Instances pickle by their
    three arrays, so they travel through shuffles, the ``processes``
    backend's IPC and the shared file system like any other block payload —
    at roughly 1.5-2x the bytes of a bare value block, which is the traffic
    overhead ``SolveRequest(paths=True)`` pays.
    """

    __slots__ = ("values", "parents", "succs")

    def __init__(self, values: np.ndarray, parents: np.ndarray,
                 succs: np.ndarray | None) -> None:
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValidationError(
                f"witnessed block values must be 2-D, got ndim={values.ndim}")
        self.values = values
        self.parents = _as_witness_index(parents, values.shape)
        # succs=None is the *single-plane* witness of the full-grid directed
        # layout: with no mirror-transpose reads there is nothing for a
        # successor plane to serve, so it is simply not carried.
        self.succs = (None if succs is None
                      else _as_witness_index(succs, values.shape))

    @property
    def single_plane(self) -> bool:
        """True when this block carries parents only (full-grid layout)."""
        return self.succs is None

    # -- ndarray-flavoured surface the solvers rely on ---------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical (rows, cols) of the block."""
        return self.values.shape

    @property
    def dtype(self) -> np.dtype:
        """The element dtype of the *values* plane."""
        return self.values.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes across the value and witness planes."""
        succs_bytes = 0 if self.succs is None else self.succs.nbytes
        return int(self.values.nbytes + self.parents.nbytes + succs_bytes)

    @property
    def T(self) -> "WitnessBlock":
        """Transposed role ``A_JI`` of a stored block ``A_IJ``.

        Swaps the witness planes (see the module docstring): the transposed
        block's predecessors are the stored successors and vice versa.
        Returns cheap views, mirroring ``ndarray.T``.  Single-plane blocks
        cannot transpose — the successor plane the mirror's parents would
        come from does not exist (and the full-grid layout never mirrors).
        """
        if self.succs is None:
            raise ValidationError(
                "single-plane witness blocks have no successor plane and "
                "cannot be transposed; the full-grid layout never mirrors")
        return WitnessBlock(self.values.T, self.succs.T, self.parents.T)

    def copy(self) -> "WitnessBlock":
        """Deep copy of all planes."""
        return WitnessBlock(self.values.copy(), self.parents.copy(),
                            None if self.succs is None else self.succs.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WitnessBlock):
            return NotImplemented
        if (self.succs is None) != (other.succs is None):
            return False
        succs_equal = (self.succs is None
                       or bool(np.array_equal(self.succs, other.succs)))
        return (bool(np.array_equal(self.values, other.values))
                and bool(np.array_equal(self.parents, other.parents))
                and succs_equal)

    def __hash__(self) -> None:  # pragma: no cover - mutable container
        raise TypeError("WitnessBlock is unhashable")

    def __reduce__(self):
        """Pickle by plane arrays (``__slots__`` classes need an explicit reducer)."""
        return (WitnessBlock, (self.values, self.parents, self.succs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WitnessBlock(shape={self.shape}, dtype={self.dtype})"


class WitnessVector:
    """A witnessed pivot-column slice for the 2D Floyd-Warshall broadcast.

    ``values[v]`` is the distance between vertex ``v`` and the pivot vertex
    ``k``; ``toward[v]`` is ``v``'s neighbour on that optimal path, on
    ``v``'s side.  By symmetry that single plane serves both operand roles of
    the rank-1 update: it is simultaneously the *successor* of ``v`` on
    ``v -> k`` (row role) and the *predecessor* of ``v`` on ``k -> v``
    (column role), which is why the broadcast column needs only one witness
    plane where blocks need two.
    """

    __slots__ = ("values", "toward")

    def __init__(self, values: np.ndarray, toward: np.ndarray) -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValidationError(
                f"witnessed column must be 1-D, got ndim={values.ndim}")
        self.values = values
        self.toward = _as_witness_index(toward, values.shape)

    @property
    def shape(self) -> tuple[int]:
        """Length of the column as a 1-tuple (ndarray-compatible)."""
        return self.values.shape

    @property
    def dtype(self) -> np.dtype:
        """The element dtype of the values plane."""
        return self.values.dtype

    def __getitem__(self, index: slice) -> "WitnessVector":
        """Slice both planes together (the per-block windowing of the update)."""
        if not isinstance(index, slice):
            raise ValidationError("witnessed columns only support slice indexing")
        return WitnessVector(self.values[index], self.toward[index])

    def __reduce__(self):
        """Pickle by plane arrays (for the broadcast under ``processes``)."""
        return (WitnessVector, (self.values, self.toward))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WitnessVector(n={self.values.shape[0]}, dtype={self.dtype})"


def is_witnessed(block) -> bool:
    """True when ``block`` is a :class:`WitnessBlock`."""
    return isinstance(block, WitnessBlock)


def is_witness_vector(piece) -> bool:
    """True when ``piece`` is a :class:`WitnessVector`."""
    return isinstance(piece, WitnessVector)


def require_witness(algebra: Semiring, op: str) -> Semiring:
    """Resolve ``algebra`` and fail fast when it cannot track witnesses."""
    algebra = get_algebra(algebra)
    if not algebra.supports_witness:
        raise ValidationError(
            f"{op} received witnessed operands but algebra {algebra.name!r} "
            "declares no witness policy (witness_select is None)")
    return algebra


# ---------------------------------------------------------------------------
# Construction / destruction
# ---------------------------------------------------------------------------
def witness_block(values: np.ndarray, row_start: int, col_start: int,
                  algebra: Semiring | str | None = None, *,
                  single_plane: bool = False) -> WitnessBlock:
    """Stamp initial witnesses onto a *prepared* adjacency block.

    ``values`` must already live in the algebra's domain (missing edges are
    ``zero``, the diagonal is ``one``); ``row_start``/``col_start`` are the
    global indices of the block's first row/column.  A direct edge
    ``i -> j`` starts with ``parents = i`` and ``succs = j`` (the path is the
    edge itself); everything else, including the diagonal, starts at
    :data:`NO_VERTEX`.  ``single_plane=True`` (the full-grid directed
    layout) stamps parents only.
    """
    algebra = require_witness(get_algebra(algebra), "witness_block")
    vals = np.array(values, copy=True)
    if vals.ndim != 2:
        raise ValidationError(f"block must be 2-D, got ndim={vals.ndim}")
    r, c = vals.shape
    rows_g = np.arange(row_start, row_start + r, dtype=np.int32)
    cols_g = np.arange(col_start, col_start + c, dtype=np.int32)
    edge = vals != algebra.zero_like(vals.dtype)
    edge &= rows_g[:, None] != cols_g[None, :]
    parents = np.where(edge, rows_g[:, None], NO_VERTEX).astype(np.int32)
    if single_plane:
        return WitnessBlock(vals, parents, None)
    succs = np.where(edge, cols_g[None, :], NO_VERTEX).astype(np.int32)
    return WitnessBlock(vals, parents, succs)


def witness_matrix(prepared: np.ndarray,
                   algebra: Semiring | str | None = None) -> WitnessBlock:
    """Stamp a full prepared ``n x n`` matrix (the sequential solvers' entry)."""
    return witness_block(prepared, 0, 0, algebra)


def witness_blocks_to_matrices(blocks, n: int, block_size: int, *,
                               symmetric: bool = True,
                               fill, dtype=None):
    """Assemble witnessed block records into ``(distances, parents)`` matrices.

    The witnessed counterpart of
    :func:`~repro.linalg.blocks.blocks_to_matrix`: missing lower-triangular
    blocks are reconstructed from their stored mirror — values by transpose,
    parents from the mirror's *successor* plane (the transpose rule).  The
    returned ``parents`` is the full ``n x n`` predecessor matrix
    (``parents[i, j]`` = predecessor of ``j`` on an optimal ``i -> j`` path,
    :data:`NO_VERTEX` for unreachable pairs and the diagonal).
    """
    from repro.common.validation import check_block_size
    from repro.linalg.blocks import block_range, num_blocks
    b = check_block_size(block_size, n)
    records = {}
    for key, blk in blocks:
        if not is_witnessed(blk):
            raise ValidationError(
                f"block {key} is not witnessed; paths=True solves must keep "
                "witness planes attached end-to-end")
        records[tuple(key)] = blk
    if dtype is None:
        first = next(iter(records.values()), None)
        dtype = first.dtype if first is not None else np.dtype(np.float64)
    distances = np.full((n, n), fill, dtype=dtype)
    parents = np.full((n, n), NO_VERTEX, dtype=np.int32)
    for (i, j), blk in records.items():
        ri, rj = block_range(i, b, n), block_range(j, b, n)
        expected = (ri.stop - ri.start, rj.stop - rj.start)
        if blk.shape != expected:
            raise ValidationError(
                f"block {(i, j)} has shape {blk.shape}, expected {expected}")
        distances[ri, rj] = blk.values
        parents[ri, rj] = blk.parents
    if symmetric:
        q = num_blocks(n, b)
        for i in range(q):
            for j in range(q):
                if (i, j) not in records and (j, i) in records:
                    mirror = records[(j, i)].T
                    ri, rj = block_range(i, b, n), block_range(j, b, n)
                    distances[ri, rj] = mirror.values
                    parents[ri, rj] = mirror.parents
    return distances, parents


# ---------------------------------------------------------------------------
# Paired value+witness kernels
# ---------------------------------------------------------------------------
def _check_same_planes(a: WitnessBlock, b: WitnessBlock, op: str) -> None:
    """Reject mixing single-plane and two-plane operands in one kernel.

    A solve runs entirely in one layout, so mixed plane-ness only happens on
    a bug — and silently dropping (or inventing) a successor plane would be
    far worse than failing here.
    """
    if (a.succs is None) != (b.succs is None):
        raise ValidationError(
            f"{op} cannot mix single-plane and two-plane witness blocks; "
            "a solve runs entirely in one block layout")


def witness_combine(a: WitnessBlock, b: WitnessBlock,
                    algebra: Semiring | str | None = None) -> WitnessBlock:
    """Elementwise ⊕ of two witnessed blocks: the winner keeps its pointers.

    ``take_b`` requires *strict* improvement (``⊕(a, b) == b`` and ``!= a``),
    so ties keep the first operand's witnesses — the property the
    Floyd-Warshall updates rely on to discard degenerate pivot candidates.
    """
    algebra = require_witness(algebra, "witnessed MatMin")
    if a.shape != b.shape:
        raise ValidationError(
            f"MatMin requires equal shapes, got {a.shape} and {b.shape}")
    _check_same_planes(a, b, "MatMin")
    av, bv = a.values, b.values
    combined = algebra.add(av, bv)
    take_b = (combined == bv) & (combined != av)
    succs = (None if a.succs is None
             else np.where(take_b, b.succs, a.succs))
    return WitnessBlock(
        combined,
        np.where(take_b, b.parents, a.parents),
        succs,
    )


def witness_product(a: WitnessBlock, b: WitnessBlock,
                    algebra: Semiring | str | None = None, *,
                    chunk: int) -> WitnessBlock:
    """Semiring product with witness composition (``MatProd`` + argmin).

    For every output cell the winning inner index ``k*`` is selected with
    the algebra's ``witness_select`` arg-reduction over the same broadcast
    temporary the value kernel streams, and the planes compose as
    ``P_C[i, j] = P_B[k*, j]`` / ``R_C[i, j] = R_A[i, k*]`` with the
    empty-subpath fallbacks described in the module docstring.
    """
    algebra = require_witness(algebra, "witnessed MatProd")
    _check_same_planes(a, b, "MatProd")
    av = np.asarray(a.values)
    bv = np.asarray(b.values)
    if av.shape[1] != bv.shape[0]:
        raise ValidationError(
            f"MatProd inner dimensions must agree, got {av.shape} and {bv.shape}")
    dtype = algebra.result_dtype(av, bv)
    av = np.asarray(av, dtype=dtype)
    bv = np.asarray(bv, dtype=dtype)
    m, _ = av.shape
    n = bv.shape[1]
    if chunk <= 0:
        raise ValidationError("chunk must be positive")
    single_plane = a.succs is None
    values = np.empty((m, n), dtype=dtype)
    parents = np.empty((m, n), dtype=np.int32)
    succs = None if single_plane else np.empty((m, n), dtype=np.int32)
    rows = np.arange(m)[:, None]
    for j0 in range(0, n, chunk):
        j1 = min(j0 + chunk, n)
        cols = np.arange(j0, j1)[None, :]
        # (m, k, j1-j0) — the same broadcast the value-only kernel streams.
        combined = algebra.mul(av[:, :, None], bv[None, :, j0:j1])
        ks = algebra.arg_select(combined, axis=1)              # (m, j1-j0)
        values[:, j0:j1] = combined[rows, ks, cols - j0]
        p = b.parents[ks, cols]                 # tail pointers from B
        p_fallback = a.parents[rows, ks]        # k* == j: B-subpath empty
        parents[:, j0:j1] = np.where(p == NO_VERTEX, p_fallback, p)
        if single_plane:
            continue
        r = a.succs[rows, ks]                   # head pointers from A
        r_fallback = b.succs[ks, cols]          # k* == i: A-subpath empty
        succs[:, j0:j1] = np.where(r == NO_VERTEX, r_fallback, r)
    no_path = values == algebra.zero_like(dtype)
    parents[no_path] = NO_VERTEX
    if succs is not None:
        succs[no_path] = NO_VERTEX
    return WitnessBlock(values, parents, succs)


def witness_floyd_warshall_inplace(block: WitnessBlock,
                                   algebra: Semiring | str | None = None,
                                   ) -> WitnessBlock:
    """In-place Floyd-Warshall on a witnessed (square) block.

    Each pivot relaxation ``V[i, j] = V[i, j] ⊕ (V[i, k] ⊗ V[k, j])``
    carries ``P[i, j] = P[k, j]`` and ``R[i, j] = R[i, k]`` on strict
    improvement.  The degenerate cells (``i == k`` or ``j == k``) can only
    tie — ``one ⊗ x = x`` — so the pivot row/column, and with them the
    pointers being read, are stable within an iteration.
    """
    algebra = require_witness(algebra, "witnessed Floyd-Warshall")
    values, parents, succs = block.values, block.parents, block.succs
    if values.shape[0] != values.shape[1]:
        raise ValidationError(
            f"Floyd-Warshall needs a square block, got {block.shape}")
    if values.dtype.name not in algebra.dtypes:
        raise ValidationError(
            f"witnessed Floyd-Warshall cannot mutate a {values.dtype.name} "
            f"array in place under algebra {algebra.name!r}")
    n = values.shape[0]
    for k in range(n):
        candidate = algebra.mul(values[:, k, None], values[None, k, :])
        relaxed = algebra.add(values, candidate)
        improved = relaxed != values
        parents[improved] = np.broadcast_to(
            parents[k, :][None, :], parents.shape)[improved]
        if succs is not None:
            succs[improved] = np.broadcast_to(
                succs[:, k][:, None], succs.shape)[improved]
        values[...] = relaxed
    return block


def witness_rank1_update(block: WitnessBlock, col_i: WitnessVector,
                         row_j: WitnessVector,
                         algebra: Semiring | str | None = None) -> WitnessBlock:
    """Witnessed ``FloydWarshallUpdate``: rank-1 relaxation through pivot ``k``.

    The candidate path ``i -> k -> j`` wins a cell only on strict
    improvement, in which case ``parents`` takes ``row_j.toward[j]`` (the
    predecessor of ``j`` on ``k -> j``) and ``succs`` takes
    ``col_i.toward[i]`` (the successor of ``i`` on ``i -> k``).  Degenerate
    candidates through the pivot's own row/column tie and are discarded.

    Single-plane blocks only compose parents, so their column operand needs
    no witness plane: ``col_i`` may then be a plain values vector.
    """
    algebra = require_witness(algebra, "witnessed FloydWarshallUpdate")
    single_plane = block.succs is None
    if not is_witness_vector(row_j) or not (single_plane
                                            or is_witness_vector(col_i)):
        raise ValidationError(
            "witnessed rank-1 update needs witnessed pivot slices; "
            "extract_col emits them for witnessed blocks")
    bv = block.values
    cv = (np.asarray(col_i).reshape(-1) if not is_witness_vector(col_i)
          else col_i.values.reshape(-1))
    rv = row_j.values.reshape(-1)
    if cv.shape[0] != bv.shape[0] or rv.shape[0] != bv.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {cv.shape[0]}/{rv.shape[0]} "
            f"but block is {block.shape}")
    candidate = algebra.mul(cv[:, None], rv[None, :])
    relaxed = algebra.add(bv, candidate)
    improved = relaxed != bv
    parents = np.where(improved, row_j.toward[None, :], block.parents)
    succs = (None if single_plane
             else np.where(improved, col_i.toward[:, None], block.succs))
    return WitnessBlock(relaxed, parents, succs)


def witness_rank1_update_inplace(block: WitnessBlock, col_i, row_j: WitnessVector,
                                 algebra: Semiring | str | None = None,
                                 ) -> np.ndarray:
    """In-place witnessed rank-1 update returning the changed-row mask.

    The dynamic-update sibling of :func:`witness_rank1_update`: mutates all
    planes of ``block`` directly (values relaxed, parents/succs rewritten on
    strict improvement) and reports which rows improved, so the caller can
    invalidate exactly the serving-cache rows a batched edge update touched.
    Single-plane blocks accept a plain values vector for ``col_i``, exactly
    as the immutable variant does.
    """
    algebra = require_witness(algebra, "witnessed FloydWarshallUpdate")
    single_plane = block.succs is None
    if not is_witness_vector(row_j) or not (single_plane
                                            or is_witness_vector(col_i)):
        raise ValidationError(
            "witnessed rank-1 update needs witnessed pivot slices; "
            "extract_col emits them for witnessed blocks")
    bv = block.values
    cv = (np.asarray(col_i).reshape(-1) if not is_witness_vector(col_i)
          else col_i.values.reshape(-1))
    rv = row_j.values.reshape(-1)
    if cv.shape[0] != bv.shape[0] or rv.shape[0] != bv.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {cv.shape[0]}/{rv.shape[0]} "
            f"but block is {block.shape}")
    candidate = algebra.mul(cv[:, None], rv[None, :])
    relaxed = algebra.add(bv, candidate)
    improved = relaxed != bv
    changed = improved.any(axis=1)
    if changed.any():
        block.parents[improved] = np.broadcast_to(
            row_j.toward[None, :], block.parents.shape)[improved]
        if not single_plane:
            block.succs[improved] = np.broadcast_to(
                col_i.toward[:, None], block.succs.shape)[improved]
        bv[...] = relaxed
    return changed


def blocked_witness_floyd_warshall(block: WitnessBlock, block_size: int,
                                   algebra: Semiring | str | None = None,
                                   ) -> WitnessBlock:
    """Cache-blocked witnessed Floyd-Warshall on one full-matrix block.

    The sequential analogue of the distributed blocked solvers under
    ``paths=True`` (and the ground-truth harness for the witnessed product /
    combine kernels): the same three phases as
    :func:`~repro.linalg.kernels.blocked_floyd_warshall_inplace`, operating
    on witnessed sub-views and writing all three planes back.
    """
    from repro.common.validation import check_block_size
    from repro.linalg.semiring import elementwise_combine, semiring_product
    algebra = require_witness(algebra, "witnessed blocked Floyd-Warshall")
    n = block.shape[0]
    if block.shape[0] != block.shape[1]:
        raise ValidationError(
            f"Floyd-Warshall needs a square matrix, got {block.shape}")
    b = check_block_size(block_size, n)
    q = (n + b - 1) // b

    def _rng(t: int) -> slice:
        return slice(t * b, min((t + 1) * b, n))

    def _view(rows: slice, cols: slice) -> WitnessBlock:
        return WitnessBlock(block.values[rows, cols],
                            block.parents[rows, cols],
                            block.succs[rows, cols])

    def _store(rows: slice, cols: slice, updated: WitnessBlock) -> None:
        block.values[rows, cols] = updated.values
        block.parents[rows, cols] = updated.parents
        block.succs[rows, cols] = updated.succs

    for t in range(q):
        pivot = _rng(t)
        witness_floyd_warshall_inplace(_view(pivot, pivot), algebra)
        pivot_block = _view(pivot, pivot)
        for j in range(q):
            if j == t:
                continue
            cols = _rng(j)
            row_block = _view(pivot, cols)
            _store(pivot, cols, elementwise_combine(
                row_block, semiring_product(pivot_block, row_block, algebra),
                algebra))
            col_block = _view(cols, pivot)
            _store(cols, pivot, elementwise_combine(
                col_block, semiring_product(col_block, pivot_block, algebra),
                algebra))
        for i in range(q):
            if i == t:
                continue
            rows = _rng(i)
            left = _view(rows, pivot).copy()
            for j in range(q):
                if j == t:
                    continue
                cols = _rng(j)
                base = _view(rows, cols)
                _store(rows, cols, elementwise_combine(
                    base, semiring_product(left, _view(pivot, cols), algebra),
                    algebra))
    return block


# ---------------------------------------------------------------------------
# Global consistency: detection + tight-edge repair
# ---------------------------------------------------------------------------
def _tight_rtol(dtype: np.dtype) -> float:
    """Relative tolerance for the tight-edge test, matched to the dtype.

    Closure values are composed in solver-dependent association orders, so
    the last-edge identity ``D[i, p] ⊗ E[p, j] == D[i, j]`` holds only up to
    rounding for float algebras (and exactly for bool).
    """
    if dtype == np.bool_:
        return 0.0
    return 1e-4 if np.dtype(dtype).itemsize < 8 else 1e-9


def consistent_parent_rows(parents: np.ndarray) -> np.ndarray:
    """Boolean mask of source rows whose pointer chains all reach the source.

    Row ``i`` of a predecessor matrix is *consistent* when following
    ``j -> parents[i, j]`` from every assigned ``j`` terminates at ``i`` —
    the property :func:`reconstruct_path` walks rely on.  Checked for all
    rows at once by pointer doubling (O(n² log n), no Python-level loops
    over cells).
    """
    parents = np.asarray(parents)
    n = parents.shape[0]
    if n == 0:
        return np.zeros((0,), dtype=bool)
    sentinel = n  # virtual absorbing node for "-1" (unassigned / dead end)
    chase = np.where(parents == NO_VERTEX, sentinel, parents).astype(np.int64)
    rows = np.arange(n)
    # The source is a root: absorb chains that reach it.
    chase[rows, rows] = rows
    padded = np.empty((n, n + 1), dtype=np.int64)
    doublings = max(1, int(np.ceil(np.log2(max(2, n)))) + 1)
    for _ in range(doublings):
        padded[:, :n] = chase
        padded[:, n] = sentinel
        chase = np.take_along_axis(padded, chase, axis=1)
    reached_root = chase == rows[:, None]
    unassigned = parents == NO_VERTEX
    return np.all(reached_root | unassigned, axis=1)


def _adjacency_row_values(adjacency, rows: np.ndarray, algebra: Semiring,
                          dtype: np.dtype) -> np.ndarray:
    """Materialize adjacency rows in the algebra's domain (dense or CSR).

    For CSR inputs, unstored cells become the algebra's ``zero`` (a plain
    ``toarray`` would yield numeric 0, which is *not* "no edge" under
    (min, +)).
    """
    from repro.graph import sparse as sparse_mod
    if not sparse_mod.is_sparse(adjacency):
        return np.asarray(adjacency)[rows]
    sub = adjacency[rows]
    out = np.full((rows.shape[0], adjacency.shape[1]),
                  algebra.zero_like(dtype), dtype=dtype)
    indptr = sub.indptr
    data = np.asarray(sub.data, dtype=dtype)
    for local in range(rows.shape[0]):
        lo, hi = indptr[local], indptr[local + 1]
        out[local, sub.indices[lo:hi]] = data[lo:hi]
    return out


def rebuild_parent_row(source: int, distances: np.ndarray, adjacency,
                       algebra: Semiring, *, rtol: float | None = None,
                       ) -> np.ndarray:
    """Recompute one source row of the predecessor matrix from the closure.

    Tight-edge BFS layering: starting from the source, a vertex ``j`` joins
    the tree once some already-layered vertex ``p`` has an edge to ``j``
    that *extends optimally* (``D[i, p] ⊗ E[p, j] == D[i, j]``, within a
    dtype-matched tolerance for floats).  In an absorptive selective
    semiring such a layering reaches every vertex with a finite closure
    entry, and the resulting pointers strictly decrease the BFS layer —
    walks cannot cycle.  This is the consistency backstop for plateau-heavy
    algebras (reachability, bottleneck ties) where independently-chosen
    per-cell witnesses can disagree across cells.
    """
    d_row = np.asarray(distances)[source]
    n = d_row.shape[0]
    dtype = d_row.dtype
    zero = algebra.zero_like(dtype)
    if rtol is None:
        rtol = _tight_rtol(dtype)
    parents_row = np.full(n, NO_VERTEX, dtype=np.int32)
    reachable = d_row != zero
    reachable[source] = False
    assigned = np.zeros(n, dtype=bool)
    assigned[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        edge_vals = _adjacency_row_values(adjacency, frontier, algebra, dtype)
        candidate = algebra.mul(d_row[frontier][:, None], edge_vals)
        if dtype == np.bool_:
            tight = candidate & (edge_vals != zero)
        else:
            close = np.isclose(candidate, d_row[None, :], rtol=rtol,
                               atol=rtol) | (np.isinf(candidate)
                                             & np.isinf(d_row[None, :]))
            tight = close & (edge_vals != zero) & (candidate != zero)
        tight &= (reachable & ~assigned)[None, :]
        covered = tight.any(axis=0)
        new_vertices = np.flatnonzero(covered)
        if new_vertices.size == 0:
            break
        first_hit = np.argmax(tight[:, new_vertices], axis=0)
        parents_row[new_vertices] = frontier[first_hit].astype(np.int32)
        assigned[new_vertices] = True
        frontier = new_vertices
    missing = reachable & ~assigned
    if missing.any():
        raise SolverError(
            f"path repair could not layer {int(missing.sum())} vertices for "
            f"source {source}; closure and adjacency are inconsistent")
    return parents_row


def consistent_parent_row(parents_row: np.ndarray, source: int, *,
                          reachable: np.ndarray | None = None) -> bool:
    """Single-row counterpart of :func:`consistent_parent_rows`.

    True when every assigned pointer chain of ``parents_row`` terminates at
    ``source`` (checked by pointer doubling, O(n log n)).  With ``reachable``
    given (a boolean mask of vertices the closure says the source reaches),
    additionally require that every reachable vertex *is* assigned — the
    property a route cache needs before trusting a row for arbitrary
    destinations.
    """
    row = np.asarray(parents_row)
    n = row.shape[0]
    if n == 0:
        return True
    unassigned = row == NO_VERTEX
    if reachable is not None:
        must_assign = np.asarray(reachable, dtype=bool).copy()
        must_assign[source] = False
        if bool(np.any(must_assign & unassigned)):
            return False
    sentinel = n  # virtual absorbing node for "-1" (unassigned / dead end)
    chase = np.where(unassigned, sentinel, row).astype(np.int64)
    chase[source] = source
    padded = np.empty(n + 1, dtype=np.int64)
    doublings = max(1, int(np.ceil(np.log2(max(2, n)))) + 1)
    for _ in range(doublings):
        padded[:n] = chase
        padded[n] = sentinel
        chase = padded[chase]
    return bool(np.all((chase == source) | unassigned))


def solve_parent_row(source: int, distances: np.ndarray, adjacency,
                     algebra: Semiring, *, rtol: float | None = None,
                     ) -> np.ndarray:
    """One-shot vectorized parent row for ``source`` from the cached closure.

    For every vertex ``j`` the row picks *some* tight predecessor ``p``
    (``D[s, p] ⊗ E[p, j] == D[s, j]`` with ``E[p, j]`` a real edge) in a
    single vectorized pass — O(n²) for dense adjacency, O(nnz) for CSR,
    with no BFS layering.  Every pointer is locally valid (a genuine edge on
    an optimal path), but on equal-value plateaus (boolean reachability,
    bottleneck ties) independently chosen pointers can form cycles; callers
    must check the row with :func:`consistent_parent_row` and fall back to
    :func:`rebuild_parent_row` when it fails.  This fast-path/repair split is
    the serving layer's per-row analogue of the solver-side
    :func:`repair_parents` pass.
    """
    from repro.graph import sparse as sparse_mod
    d_row = np.asarray(distances)[source]
    n = d_row.shape[0]
    dtype = d_row.dtype
    zero = algebra.zero_like(dtype)
    if rtol is None:
        rtol = _tight_rtol(dtype)
    parents_row = np.full(n, NO_VERTEX, dtype=np.int32)
    reachable = d_row != zero
    reachable[source] = False
    if not reachable.any():
        return parents_row
    if sparse_mod.is_sparse(adjacency):
        coo = adjacency.tocoo()
        p_idx = np.asarray(coo.row, dtype=np.int64)
        j_idx = np.asarray(coo.col, dtype=np.int64)
        vals = np.asarray(coo.data, dtype=dtype)
        candidate = algebra.mul(d_row[p_idx], vals)
        target = d_row[j_idx]
    else:
        edge_vals = np.asarray(adjacency, dtype=dtype)
        candidate = algebra.mul(d_row[:, None], edge_vals)
        target = d_row[None, :]
        vals = edge_vals
    if dtype == np.bool_:
        tight = candidate & (vals != zero)
    else:
        close = np.isclose(candidate, target, rtol=rtol, atol=rtol) \
            | (np.isinf(candidate) & np.isinf(target))
        tight = close & (vals != zero) & (candidate != zero)
    if sparse_mod.is_sparse(adjacency):
        tight &= reachable[j_idx] & (p_idx != j_idx)
        hit = np.flatnonzero(tight)
        # Later writers win — any tight predecessor is locally valid.
        parents_row[j_idx[hit]] = p_idx[hit].astype(np.int32)
    else:
        tight &= reachable[None, :]
        np.fill_diagonal(tight, False)
        covered = tight.any(axis=0)
        parents_row[covered] = np.argmax(tight[:, covered], axis=0).astype(np.int32)
    return parents_row


def repair_parents(distances: np.ndarray, parents: np.ndarray, adjacency,
                   algebra: Semiring | str | None = None, *,
                   rtol: float | None = None) -> tuple[np.ndarray, int]:
    """Make a predecessor matrix globally walk-consistent, row by row.

    The distributed solvers produce *locally* valid witnesses — every
    pointer is a genuine edge-predecessor of an optimal path — but on
    equal-value plateaus (boolean reachability, shared bottlenecks)
    independently-updated cells can point at each other, leaving a source
    row whose walk cycles.  This pass detects such rows with
    :func:`consistent_parent_rows` and rebuilds only those via
    :func:`rebuild_parent_row`; consistent rows keep the solver's witnesses
    untouched.  Returns ``(parents, repaired_row_count)`` (``parents`` is
    modified in place).
    """
    algebra = get_algebra(algebra)
    parents = np.asarray(parents)
    ok = consistent_parent_rows(parents)
    bad_rows = np.flatnonzero(~ok)
    for source in bad_rows:
        parents[source] = rebuild_parent_row(int(source), distances, adjacency,
                                             algebra, rtol=rtol)
    return parents, int(bad_rows.size)


# ---------------------------------------------------------------------------
# Path reconstruction
# ---------------------------------------------------------------------------
def walk_parent_row(parents_row: np.ndarray, src: int, dst: int) -> list[int]:
    """Walk a single source row of a predecessor matrix back from ``dst``.

    ``parents_row[j]`` is the predecessor of ``j`` on an optimal path from
    ``src`` (the row's source) to ``j``.  Returns the vertex list
    ``[src, ..., dst]`` (``[src]`` when ``src == dst``).  Raises
    :class:`~repro.common.errors.SolverError` when no path exists or the row
    is inconsistent (a walk that fails to reach ``src`` within ``n`` steps).
    This is the per-row primitive both :func:`reconstruct_path` (full
    matrix) and the serving layer's row cache walk.
    """
    row = np.asarray(parents_row)
    n = row.shape[0]
    if not (0 <= src < n and 0 <= dst < n):
        raise ValidationError(
            f"route endpoints ({src}, {dst}) out of range for n={n}")
    if src == dst:
        return [int(src)]
    if row[dst] == NO_VERTEX:
        raise SolverError(f"no path from {src} to {dst}")
    path = [int(dst)]
    cur = int(dst)
    for _ in range(n):
        cur = int(row[cur])
        if cur == NO_VERTEX:
            raise SolverError(
                f"parent matrix is inconsistent: walk from {dst} hit a dead "
                f"end before reaching {src}")
        path.append(cur)
        if cur == src:
            return path[::-1]
    raise SolverError(
        f"parent matrix is inconsistent: walk from {dst} did not reach "
        f"{src} within {n} steps")


def reconstruct_path(parents: np.ndarray, src: int, dst: int) -> list[int]:
    """Walk a predecessor matrix back from ``dst`` to ``src``.

    Returns the vertex list ``[src, ..., dst]`` (``[src]`` when
    ``src == dst``).  Raises :class:`~repro.common.errors.SolverError` when
    no path exists or the matrix is inconsistent (a walk that fails to reach
    ``src`` within ``n`` steps).
    """
    parents = np.asarray(parents)
    n = parents.shape[0]
    if not (0 <= src < n):
        raise ValidationError(
            f"route endpoints ({src}, {dst}) out of range for n={n}")
    return walk_parent_row(parents[src], src, dst)


def path_weight(prepared: np.ndarray, path: list[int],
                algebra: Semiring | str | None = None):
    """Fold a path's edge weights under the algebra's ⊗.

    ``prepared`` must be the adjacency in the algebra's domain (missing
    edges are ``zero``).  Raises when the path traverses a missing edge —
    the check the route validation in tests and the CLI relies on.  A
    single-vertex path folds to the algebra's ``one``.
    """
    algebra = get_algebra(algebra)
    arr = np.asarray(prepared)
    fold = algebra.one_like(arr.dtype)
    zero = algebra.zero_like(arr.dtype)
    for u, v in zip(path[:-1], path[1:]):
        weight = arr[u, v]
        if weight == zero:
            raise SolverError(f"path step {u} -> {v} is not an edge")
        fold = algebra.mul(fold, weight)
    return fold

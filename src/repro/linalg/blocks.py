"""2D block decomposition of adjacency/distance matrices.

The paper decomposes the adjacency matrix ``A`` into ``q x q`` dense blocks
with ``q = ceil(n / b)`` and stores them as ``((I, J), A_IJ)`` key-value
tuples in an RDD, keeping only the upper-triangular blocks and generating the
lower-triangular ones by transposition on demand (Section 4).  This module
implements that decomposition independent of the execution engine, so the
same code serves the sequential solvers, the Spark solvers, and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_block_size, check_square_matrix
from repro.linalg import bitset, witness as witness_mod

#: A block key: (block-row index I, block-column index J).
BlockId = tuple[int, int]

#: Valid block-storage policies for the decomposition helpers.
STORAGES = ("dense", "packed")

#: Valid block grid layouts: ``"triangular"`` stores the upper block triangle
#: and serves mirror blocks by transposition (symmetric matrices only);
#: ``"full"`` stores all q² blocks and represents directed (asymmetric)
#: matrices exactly.
LAYOUTS = ("triangular", "full")


def check_storage(storage: str) -> str:
    """Validate a block-storage policy name."""
    if storage not in STORAGES:
        raise ValidationError(
            f"unknown block storage {storage!r}; expected one of {', '.join(STORAGES)}")
    return storage


def check_layout(layout: str) -> str:
    """Validate a block grid layout name (``auto`` must already be resolved)."""
    if layout not in LAYOUTS:
        raise ValidationError(
            f"unknown block layout {layout!r}; expected one of {', '.join(LAYOUTS)}")
    return layout


def encode_block(block: np.ndarray, storage: str):
    """Encode a dense block into the requested storage representation."""
    if check_storage(storage) == "packed":
        return bitset.as_packed(block)
    return block


def block_payload_shape(block) -> tuple[int, int]:
    """Logical (rows, cols) of a block payload, dense or packed."""
    return tuple(block.shape)


def num_blocks(n: int, block_size: int) -> int:
    """Return ``q = ceil(n / b)``, the number of block rows/columns."""
    b = check_block_size(block_size, n)
    return (n + b - 1) // b


def block_range(index: int, block_size: int, n: int) -> slice:
    """Return the slice of global indices covered by block row/column ``index``."""
    if index < 0:
        raise ValidationError("block index must be non-negative")
    start = index * block_size
    if start >= n:
        raise ValidationError(f"block index {index} out of range for n={n}, b={block_size}")
    return slice(start, min(start + block_size, n))


def block_of_index(i: int, block_size: int) -> int:
    """Return the block index containing global row/column ``i``."""
    if i < 0:
        raise ValidationError("index must be non-negative")
    return i // block_size


def block_shape(block_id: BlockId, block_size: int, n: int) -> tuple[int, int]:
    """Return the shape of block ``(I, J)`` (edge blocks may be smaller than b)."""
    ri = block_range(block_id[0], block_size, n)
    rj = block_range(block_id[1], block_size, n)
    return (ri.stop - ri.start, rj.stop - rj.start)


def upper_triangular_block_ids(q: int) -> Iterator[BlockId]:
    """Yield all block keys (I, J) with I <= J in row-major order."""
    for i in range(q):
        for j in range(i, q):
            yield (i, j)


def all_block_ids(q: int) -> Iterator[BlockId]:
    """Yield all q*q block keys in row-major order."""
    for i in range(q):
        for j in range(q):
            yield (i, j)


def matrix_to_blocks(matrix: np.ndarray, block_size: int, *,
                     upper_only: bool = True,
                     storage: str = "dense",
                     witness: bool = False,
                     single_plane: bool = False,
                     algebra=None) -> Iterator[tuple[BlockId, np.ndarray]]:
    """Decompose a square matrix into ``((I, J), block)`` tuples.

    With ``upper_only=True`` (the paper's symmetric storage) only blocks with
    ``I <= J`` are produced; the caller is expected to reconstruct ``A_JI`` as
    ``A_IJ.T`` when needed.  ``upper_only=False`` is the full-grid layout:
    all q² blocks are emitted, no mirroring.  The input's floating/boolean
    dtype is preserved (``float32`` pipelines stay ``float32``); anything
    else is upcast to ``float64``.  With ``storage="packed"`` each (boolean)
    block is emitted as a :class:`~repro.linalg.bitset.PackedBlock` — 64
    cells per word.  With ``witness=True`` (a ``paths=True`` solve) each
    block is emitted as a :class:`~repro.linalg.witness.WitnessBlock` whose
    planes are stamped with the block's *global* vertex ids under
    ``algebra``; the matrix must then already be in the algebra's domain.
    ``single_plane=True`` (full-grid witnesses) stamps parents only —
    successor planes exist solely to serve mirrored reads.
    """
    check_storage(storage)
    if witness and storage == "packed":
        raise ValidationError(
            "witness tracking has no packed-bitset kernels; "
            "use storage='dense' for paths=True solves")
    if single_plane and upper_only:
        raise ValidationError(
            "single-plane witnesses cannot serve mirrored reads; "
            "they require the full-grid layout (upper_only=False)")
    arr = check_square_matrix(matrix, dtype=None)
    n = arr.shape[0]
    b = check_block_size(block_size, n)
    q = num_blocks(n, b)
    ids = upper_triangular_block_ids(q) if upper_only else all_block_ids(q)
    for (i, j) in ids:
        view = arr[block_range(i, b, n), block_range(j, b, n)]
        if witness:
            # witness_block copies, so the record never aliases the input.
            yield (i, j), witness_mod.witness_block(view, i * b, j * b, algebra,
                                                    single_plane=single_plane)
            continue
        # Packing copies implicitly; the dense path must not alias the input.
        block = view if storage == "packed" else np.array(view, copy=True)
        yield (i, j), encode_block(block, storage)


def blocks_to_matrix(blocks: Iterable[tuple[BlockId, np.ndarray]], n: int,
                     block_size: int, *, symmetric: bool = True,
                     fill: float | bool = np.inf,
                     dtype: np.dtype | str | None = None) -> np.ndarray:
    """Assemble ``((I, J), block)`` tuples back into a dense ``n x n`` matrix.

    With ``symmetric=True`` missing lower-triangular blocks are filled from the
    transpose of their upper-triangular counterpart.  ``fill`` is the value
    for never-seen cells (the algebra's "no path" element; ``inf`` matches the
    historical (min, +) behaviour) and ``dtype`` the output dtype (``None``
    preserves the first block's floating/boolean dtype, else ``float64``).
    Witnessed blocks contribute their *values* plane only — use
    :func:`repro.linalg.witness.witness_blocks_to_matrices` to assemble the
    parent matrix alongside.
    """
    b = check_block_size(block_size, n)
    blocks = [(key, blk.values if witness_mod.is_witnessed(blk) else blk)
              for key, blk in blocks]
    blocks = [(key, bitset.as_dense_bool(blk) if bitset.is_packed(blk) else blk)
              for key, blk in blocks]
    if dtype is None:
        first = blocks[0][1] if blocks else None
        inferred = np.asarray(first).dtype if first is not None else np.dtype(np.float64)
        dtype = inferred if inferred.kind in ("f", "b") else np.dtype(np.float64)
    out = np.full((n, n), fill, dtype=dtype)
    seen: set[BlockId] = set()
    for (i, j), block in blocks:
        ri, rj = block_range(i, b, n), block_range(j, b, n)
        expected = (ri.stop - ri.start, rj.stop - rj.start)
        block = np.asarray(block, dtype=dtype)
        if block.shape != expected:
            raise ValidationError(
                f"block {(i, j)} has shape {block.shape}, expected {expected}")
        out[ri, rj] = block
        seen.add((i, j))
    if symmetric:
        q = num_blocks(n, b)
        for i in range(q):
            for j in range(q):
                if (i, j) not in seen and (j, i) in seen:
                    ri, rj = block_range(i, b, n), block_range(j, b, n)
                    out[ri, rj] = out[rj, ri].T
    return out


@dataclass
class BlockedMatrix:
    """A dictionary-backed blocked matrix with optional symmetric storage.

    This is the in-memory (non-RDD) counterpart of the paper's blocked
    representation; the Spark solvers use plain ``((I, J), block)`` records in
    RDDs but share the decomposition helpers above.
    """

    n: int
    block_size: int
    blocks: dict[BlockId, np.ndarray]
    symmetric: bool = True
    storage: str = "dense"
    #: True when the stored payloads are witnessed (value + parent planes).
    witness: bool = False

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, block_size: int, *,
                    symmetric: bool = True,
                    storage: str = "dense",
                    witness: bool = False,
                    single_plane: bool = False,
                    algebra=None) -> "BlockedMatrix":
        """Cut a dense matrix into a dictionary-backed blocked matrix.

        With ``witness=True`` every stored payload is a
        :class:`~repro.linalg.witness.WitnessBlock` carrying parent/successor
        planes alongside the values (the matrix must already be in the
        algebra's domain); ``single_plane=True`` stamps parents only (the
        full-grid directed layout, which never mirrors).
        """
        arr = check_square_matrix(matrix, dtype=None)
        return cls(
            n=arr.shape[0],
            block_size=check_block_size(block_size, arr.shape[0]),
            blocks=dict(matrix_to_blocks(arr, block_size, upper_only=symmetric,
                                         storage=storage, witness=witness,
                                         single_plane=single_plane,
                                         algebra=algebra)),
            symmetric=symmetric,
            storage=check_storage(storage),
            witness=witness,
        )

    @property
    def q(self) -> int:
        """Number of block rows/columns."""
        return num_blocks(self.n, self.block_size)

    def get_block(self, i: int, j: int) -> np.ndarray:
        """Return block ``(i, j)``, transposing the stored ``(j, i)`` block if needed.

        Lower-triangular lookups under symmetric storage return a *read-only*
        transposed view of the stored mirror block: the data is shared (no
        copy), but writing through it would silently corrupt block ``(j, i)``,
        so mutation raises instead — call :meth:`set_block` to update.

        Under the full-grid layout (``symmetric=False``) there is no
        mirroring: asking for a missing block whose transpose *is* stored
        raises a :class:`ValidationError` rather than silently answering
        with the (wrong, transposed) mirror data.
        """
        if (i, j) in self.blocks:
            return self.blocks[(i, j)]
        if not self.symmetric and (j, i) in self.blocks:
            raise ValidationError(
                f"block {(i, j)} is not stored and the full-grid layout has "
                f"no mirror-transpose lookups; block {(j, i)} is a distinct "
                "block of an asymmetric matrix, not this block's transpose")
        if self.symmetric and (j, i) in self.blocks:
            stored = self.blocks[(j, i)]
            if bitset.is_packed(stored):
                # Packed transposes are fresh repacks, not views: no aliasing.
                return stored.T
            if witness_mod.is_witnessed(stored):
                # Witnessed transpose swaps the parent/successor planes and
                # returns views; freeze them like the dense mirror below.
                mirror = stored.T
                for plane in (mirror.values, mirror.parents, mirror.succs):
                    plane.flags.writeable = False
                return mirror
            mirror = stored.T
            mirror.flags.writeable = False
            return mirror
        raise KeyError((i, j))

    def set_block(self, i: int, j: int, value: np.ndarray) -> None:
        """Store block ``(i, j)`` (normalized to the upper triangle when symmetric).

        Dense values are stored as-is under dense storage and packed under
        packed storage; :class:`~repro.linalg.bitset.PackedBlock` values are
        accepted directly.
        """
        expected = block_shape((i, j), self.block_size, self.n)
        if witness_mod.is_witnessed(value):
            if not self.witness:
                raise ValidationError(
                    "cannot store a witnessed block in a non-witnessed "
                    "BlockedMatrix")
            if value.shape != expected:
                raise ValidationError(
                    f"block {(i, j)} has shape {value.shape}, expected {expected}")
            if self.symmetric and i > j:
                self.blocks[(j, i)] = value.T.copy()
            else:
                self.blocks[(i, j)] = value.copy()
            return
        if self.witness:
            raise ValidationError(
                "witnessed BlockedMatrix requires WitnessBlock payloads")
        if not bitset.is_packed(value):
            value = np.asarray(value)
            if value.dtype.kind not in ("f", "b"):
                value = np.asarray(value, dtype=np.float64)
        if block_payload_shape(value) != expected:
            raise ValidationError(
                f"block {(i, j)} has shape {block_payload_shape(value)}, "
                f"expected {expected}")
        if self.storage == "packed":
            value = bitset.as_packed(value)
        elif bitset.is_packed(value):
            value = value.to_dense()
        if self.symmetric and i > j:
            self.blocks[(j, i)] = value.T.copy() if not bitset.is_packed(value) else value.T
        else:
            self.blocks[(i, j)] = value.copy()

    def to_matrix(self) -> np.ndarray:
        """Assemble the dense (values) matrix."""
        return blocks_to_matrix(self.blocks.items(), self.n, self.block_size,
                                symmetric=self.symmetric)

    def to_matrices(self, *, fill, dtype=None):
        """Assemble ``(values, parents)`` from a witnessed blocked matrix."""
        if not self.witness:
            raise ValidationError(
                "to_matrices requires a witnessed BlockedMatrix; "
                "use to_matrix for plain blocks")
        return witness_mod.witness_blocks_to_matrices(
            self.blocks.items(), self.n, self.block_size,
            symmetric=self.symmetric, fill=fill, dtype=dtype)

    def block_ids(self) -> list[BlockId]:
        """Return the stored block keys, sorted row-major."""
        return sorted(self.blocks.keys())

    def nbytes(self) -> int:
        """Total bytes held by the stored blocks."""
        return int(sum(b.nbytes for b in self.blocks.values()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockedMatrix):
            return NotImplemented
        if (self.n, self.block_size, self.symmetric) != (other.n, other.block_size, other.symmetric):
            return False
        if set(self.blocks) != set(other.blocks):
            return False

        def block_equal(a, b) -> bool:
            """Compare two block payloads across representations."""
            if witness_mod.is_witnessed(a) or witness_mod.is_witnessed(b):
                return a == b
            if bitset.is_packed(a) or bitset.is_packed(b):
                return bool(np.array_equal(bitset.as_dense_bool(a),
                                           bitset.as_dense_bool(b)))
            return bool(np.array_equal(a, b))

        return all(block_equal(self.blocks[k], other.blocks[k]) for k in self.blocks)

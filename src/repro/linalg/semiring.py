"""Semiring matrix operations on dense matrices.

APSP can be posed as computing the closure of the adjacency matrix under the
(min, +) semiring: ``C[i, j] = min_k (A[i, k] + B[k, j])`` replaces the inner
product of ordinary matrix multiplication (paper Section 2 and the ``MatProd``
/ ``MatMin`` building blocks of Table 1).  The same kernels, parameterized by
a :class:`~repro.linalg.algebra.Semiring`, compute the closure under any
registered path algebra (widest path, most-reliable path, transitive
closure, ...).

The product kernel is vectorized over column chunks so the temporary
``A ⊗ B[:, j]`` broadcast stays in cache instead of materializing an
``m x k x n`` cube.  The algebra's operations are plain NumPy ufuncs, so the
generic kernel runs the (min, +) case through exactly the same vectorized
instructions as the original hand-written version — and dtype is preserved
(``float32`` operands stay ``float32``, halving memory traffic).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError
from repro.linalg import bitset, witness
from repro.linalg.algebra import Semiring, get_algebra

#: Default number of output columns processed per chunk in the product kernel
#: for 8-byte elements.  Chosen so the (m x k x chunk) temporary plus the
#: chunk fits comfortably in L2/L3 for the block sizes the paper sweeps
#: (256-4096).  Narrower dtypes scale the chunk up so the temporary keeps the
#: same *byte* footprint — see :func:`chunk_for_dtype`.
DEFAULT_CHUNK = 64

#: Element width the historical chunk constant was sized for.
_CHUNK_REFERENCE_ITEMSIZE = 8

#: Ceiling for the ``(m, k, chunk)`` product temporary when the chunk is
#: chosen automatically.  Measured sweet spot on the reference machine: the
#: broadcast temporary degrades sharply past a couple hundred MiB (it stops
#: being re-streamable from LLC), and 128 MiB is at or near the optimum for
#: every (dtype, block-size) pair benchmarked (64-4096, bool-float64).
_AUTO_CHUNK_TEMP_BYTES = 128 * 1024 * 1024


def chunk_for_dtype(dtype: np.dtype | str) -> int:
    """Column-chunk size keeping the product temporary's byte footprint constant.

    ``DEFAULT_CHUNK`` (64) was tuned for float64 temporaries; a float32 solve
    gets 128 columns per chunk and a boolean one 512, so every dtype streams
    the same number of *bytes* through cache per vectorized step rather than
    the same number of elements.
    """
    itemsize = max(1, np.dtype(dtype).itemsize)
    return max(1, DEFAULT_CHUNK * _CHUNK_REFERENCE_ITEMSIZE // itemsize)


def auto_chunk(dtype: np.dtype | str, m: int, k: int) -> int:
    """Resolve the automatic column chunk for an ``(m, k) ⊗ (k, n)`` product.

    The dtype-scaled chunk (:func:`chunk_for_dtype`) is additionally capped
    so the ``(m, k, chunk)`` broadcast temporary stays under
    :data:`_AUTO_CHUNK_TEMP_BYTES` — for float64 the cap only binds for
    blocks larger than 512 (where it is a measured improvement over the
    historical fixed 64), so the paper-scale defaults are unchanged.
    """
    itemsize = max(1, np.dtype(dtype).itemsize)
    cap = max(1, _AUTO_CHUNK_TEMP_BYTES // max(1, m * k * itemsize))
    return max(1, min(chunk_for_dtype(dtype), cap))


def _require_reachability(algebra: Semiring, op: str) -> None:
    if "packed" not in algebra.storages:
        raise ValidationError(
            f"{op} received packed-bitset operands but algebra {algebra.name!r} "
            "has no packed kernels (only the boolean reachability algebra does)")


def _require_both_witnessed(a, b, op: str) -> None:
    if not (witness.is_witnessed(a) and witness.is_witnessed(b)):
        raise ValidationError(
            f"{op} cannot mix witnessed and plain operands; a paths=True "
            "solve must carry witness planes on every block")


def elementwise_combine(a, b, algebra: Semiring | str | None = None):
    """Elementwise ⊕ of two equally-shaped matrices (``MatMin`` generalized).

    Packed-bitset operands (:class:`~repro.linalg.bitset.PackedBlock`) take
    the word-parallel OR kernel — 64 cells per machine word.  Witnessed
    operands (:class:`~repro.linalg.witness.WitnessBlock`) take the paired
    value+parent kernel: the ⊕ winner keeps its pointers.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(a) or witness.is_witnessed(b):
        _require_both_witnessed(a, b, "MatMin")
        return witness.witness_combine(a, b, algebra)
    if bitset.is_packed(a) or bitset.is_packed(b):
        _require_reachability(algebra, "MatMin")
        return bitset.packed_or(bitset.as_packed(a), bitset.as_packed(b))
    dtype = algebra.result_dtype(np.asarray(a), np.asarray(b))
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    if a.shape != b.shape:
        raise ValidationError(f"MatMin requires equal shapes, got {a.shape} and {b.shape}")
    return algebra.add(a, b)


def elementwise_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise minimum of two equally-shaped matrices (``MatMin`` of Table 1)."""
    return elementwise_combine(a, b, None)


def semiring_product(a, b,
                     algebra: Semiring | str | None = None, *,
                     chunk: int | None = None,
                     out: np.ndarray | None = None):
    """Semiring matrix product ``C[i, j] = ⊕_k A[i, k] ⊗ B[k, j]``.

    This is the ``MatProd`` building block of Table 1, generalized over the
    algebra.  ``a`` has shape ``(m, k)``, ``b`` has shape ``(k, n)``; the
    result has shape ``(m, n)``.  Under (min, +), ``inf`` entries represent
    missing edges and propagate correctly (``inf + x = inf``,
    ``min(inf, x) = x``); other algebras use their own ``zero``.  Packed
    boolean operands are routed to the word-parallel bitset product.

    Parameters
    ----------
    chunk:
        Number of output columns computed per vectorized step; ``None``
        scales :data:`DEFAULT_CHUNK` by the dtype width and caps the
        broadcast temporary (see :func:`auto_chunk`).
    out:
        Optional pre-allocated output array of shape ``(m, n)``.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(a) or witness.is_witnessed(b):
        _require_both_witnessed(a, b, "MatProd")
        if out is not None:
            raise ValidationError(
                "MatProd does not support out= for witnessed operands")
        av = np.asarray(a.values)
        bv = np.asarray(b.values)
        if chunk is None:
            chunk = auto_chunk(algebra.result_dtype(av, bv),
                               av.shape[0], av.shape[1])
        return witness.witness_product(a, b, algebra, chunk=chunk)
    if bitset.is_packed(a) or bitset.is_packed(b):
        _require_reachability(algebra, "MatProd")
        if out is not None:
            # Match the dense kernel's out= contract (overwrite, don't
            # accumulate): packed_product itself ORs into out.
            out.words[:] = 0
        return bitset.packed_product(bitset.as_packed(a), bitset.as_packed(b),
                                     out=out)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValidationError("MatProd requires 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"MatProd inner dimensions must agree, got {a.shape} and {b.shape}")
    dtype = algebra.result_dtype(a, b)
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    m, k = a.shape
    n = b.shape[1]
    if chunk is None:
        chunk = auto_chunk(dtype, m, k)
    if chunk <= 0:
        raise ValidationError("chunk must be positive")
    if out is None:
        out = np.empty((m, n), dtype=dtype)
    elif out.shape != (m, n):
        raise ValidationError(f"out has shape {out.shape}, expected {(m, n)}")
    # Process output columns in chunks: for each chunk J we broadcast
    # a[:, :, None] ⊗ b[None, :, J] -> (m, k, |J|) and ⊕-reduce over k.
    for j0 in range(0, n, chunk):
        j1 = min(j0 + chunk, n)
        # (m, k, j1-j0)
        combined = algebra.mul(a[:, :, None], b[None, :, j0:j1])
        algebra.add_reduce(combined, axis=1, out=out[:, j0:j1])
    return out


def minplus_product(a: np.ndarray, b: np.ndarray, *, chunk: int | None = None,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Min-plus matrix product ``C[i, j] = min_k A[i, k] + B[k, j]`` (``MatProd``)."""
    return semiring_product(a, b, None, chunk=chunk, out=out)


def semiring_square(a: np.ndarray, algebra: Semiring | str | None = None, *,
                    chunk: int | None = None) -> np.ndarray:
    """Semiring square ``A ⊗ A`` combined elementwise (⊕) with ``A``.

    Squaring in a path closure must keep existing (shorter-or-equal) paths,
    which the diagonal ``one`` already guarantees; the explicit ⊕ with ``a``
    makes the kernel robust to inputs whose diagonal is not exactly ``one``.
    Witnessed operands route both steps through the paired kernels.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(a):
        return elementwise_combine(a, semiring_product(a, a, algebra, chunk=chunk),
                                   algebra)
    return algebra.add(np.asarray(a), semiring_product(a, a, algebra, chunk=chunk))


def minplus_square(a: np.ndarray, *, chunk: int | None = None) -> np.ndarray:
    """Min-plus square ``A ⊗ A`` combined with element-wise minimum against ``A``."""
    return semiring_square(a, None, chunk=chunk)


def semiring_power(a: np.ndarray, exponent: int,
                   algebra: Semiring | str | None = None, *,
                   chunk: int | None = None) -> np.ndarray:
    """Semiring matrix power ``A^exponent`` computed by repeated squaring.

    With ``exponent >= n - 1`` this yields the full closure for a graph with
    ``n`` vertices (assuming the diagonal holds the algebra's ``one``).
    """
    if exponent < 1:
        raise ValidationError("exponent must be >= 1")
    algebra = get_algebra(algebra)
    a = np.asarray(a)
    result = np.array(a, dtype=algebra.result_dtype(a), copy=True)
    e = 1
    while e < exponent:
        result = semiring_square(result, algebra, chunk=chunk)
        e *= 2
    return result


def minplus_power(a: np.ndarray, exponent: int, *, chunk: int | None = None) -> np.ndarray:
    """Min-plus matrix power ``A^exponent`` computed by repeated squaring."""
    return semiring_power(a, exponent, None, chunk=chunk)


def closure_iterations(n: int) -> int:
    """Number of squarings needed so that ``A^(2^k) = A^*`` for an n-vertex graph.

    Optimal paths in an absorptive semiring are simple (at most ``n - 1``
    edges), so ``ceil(log2(n - 1))`` squarings suffice (0 for n <= 2) — the
    same bound for every registered algebra.
    """
    if n <= 0:
        raise ValidationError("n must be positive")
    if n <= 2:
        return 1 if n == 2 else 0
    return int(math.ceil(math.log2(n - 1)))


#: Backward-compatible alias (the bound is algebra-independent).
minplus_closure_iterations = closure_iterations

"""Min-plus (tropical) semiring operations on dense matrices.

APSP can be posed as computing the closure of the adjacency matrix under the
(min, +) semiring: ``C[i, j] = min_k (A[i, k] + B[k, j])`` replaces the inner
product of ordinary matrix multiplication (paper Section 2 and the ``MatProd``
/ ``MatMin`` building blocks of Table 1).

The product kernel is vectorized over column chunks so the temporary
``A + B[:, j]`` broadcast stays in cache instead of materializing an
``m x k x n`` cube.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError

#: Default number of output columns processed per chunk in the product kernel.
#: Chosen so the (m x k) temporary plus the chunk fits comfortably in L2/L3
#: for the block sizes the paper sweeps (256-4096).
DEFAULT_CHUNK = 64


def elementwise_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise minimum of two equally-shaped matrices (``MatMin`` of Table 1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"MatMin requires equal shapes, got {a.shape} and {b.shape}")
    return np.minimum(a, b)


def minplus_product(a: np.ndarray, b: np.ndarray, *, chunk: int = DEFAULT_CHUNK,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Min-plus matrix product ``C[i, j] = min_k A[i, k] + B[k, j]``.

    This is the ``MatProd`` building block of Table 1.  ``a`` has shape
    ``(m, k)``, ``b`` has shape ``(k, n)``; the result has shape ``(m, n)``.
    ``inf`` entries represent missing edges and propagate correctly
    (``inf + x = inf``, ``min(inf, x) = x``).

    Parameters
    ----------
    chunk:
        Number of output columns computed per vectorized step.
    out:
        Optional pre-allocated output array of shape ``(m, n)``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValidationError("MatProd requires 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"MatProd inner dimensions must agree, got {a.shape} and {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    if chunk <= 0:
        raise ValidationError("chunk must be positive")
    if out is None:
        out = np.empty((m, n), dtype=np.float64)
    elif out.shape != (m, n):
        raise ValidationError(f"out has shape {out.shape}, expected {(m, n)}")
    # Process output columns in chunks: for each chunk J we broadcast
    # a[:, :, None] + b[None, :, J] -> (m, k, |J|) and reduce over k.
    for j0 in range(0, n, chunk):
        j1 = min(j0 + chunk, n)
        # (m, k, j1-j0)
        summed = a[:, :, None] + b[None, :, j0:j1]
        np.min(summed, axis=1, out=out[:, j0:j1])
    return out


def minplus_square(a: np.ndarray, *, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Min-plus square ``A ⊗ A`` combined with element-wise minimum against ``A``.

    Squaring in APSP must keep existing (shorter-or-equal) paths, which the
    diagonal zeros already guarantee; the explicit ``min`` with ``a`` makes the
    kernel robust to inputs whose diagonal is not exactly zero.
    """
    return np.minimum(a, minplus_product(a, a, chunk=chunk))


def minplus_power(a: np.ndarray, exponent: int, *, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Min-plus matrix power ``A^exponent`` computed by repeated squaring.

    With ``exponent >= n - 1`` this yields the full APSP distance matrix for a
    graph with ``n`` vertices (assuming zero diagonal).
    """
    if exponent < 1:
        raise ValidationError("exponent must be >= 1")
    a = np.asarray(a, dtype=np.float64)
    result = a.copy()
    e = 1
    while e < exponent:
        result = minplus_square(result, chunk=chunk)
        e *= 2
    return result


def minplus_closure_iterations(n: int) -> int:
    """Number of squarings needed so that ``A^(2^k) = A^*`` for an n-vertex graph.

    Shortest paths have at most ``n - 1`` edges, so ``ceil(log2(n - 1))``
    squarings suffice (0 for n <= 2).
    """
    if n <= 0:
        raise ValidationError("n must be positive")
    if n <= 2:
        return 1 if n == 2 else 0
    return int(math.ceil(math.log2(n - 1)))

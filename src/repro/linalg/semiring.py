"""Semiring matrix operations on dense matrices.

APSP can be posed as computing the closure of the adjacency matrix under the
(min, +) semiring: ``C[i, j] = min_k (A[i, k] + B[k, j])`` replaces the inner
product of ordinary matrix multiplication (paper Section 2 and the ``MatProd``
/ ``MatMin`` building blocks of Table 1).  The same kernels, parameterized by
a :class:`~repro.linalg.algebra.Semiring`, compute the closure under any
registered path algebra (widest path, most-reliable path, transitive
closure, ...).

The product kernel is vectorized over column chunks so the temporary
``A ⊗ B[:, j]`` broadcast stays in cache instead of materializing an
``m x k x n`` cube.  The algebra's operations are plain NumPy ufuncs, so the
generic kernel runs the (min, +) case through exactly the same vectorized
instructions as the original hand-written version — and dtype is preserved
(``float32`` operands stay ``float32``, halving memory traffic).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ValidationError
from repro.linalg.algebra import Semiring, get_algebra

#: Default number of output columns processed per chunk in the product kernel.
#: Chosen so the (m x k) temporary plus the chunk fits comfortably in L2/L3
#: for the block sizes the paper sweeps (256-4096).
DEFAULT_CHUNK = 64


def elementwise_combine(a: np.ndarray, b: np.ndarray,
                        algebra: Semiring | str | None = None) -> np.ndarray:
    """Elementwise ⊕ of two equally-shaped matrices (``MatMin`` generalized)."""
    algebra = get_algebra(algebra)
    dtype = algebra.result_dtype(np.asarray(a), np.asarray(b))
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    if a.shape != b.shape:
        raise ValidationError(f"MatMin requires equal shapes, got {a.shape} and {b.shape}")
    return algebra.add(a, b)


def elementwise_min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise minimum of two equally-shaped matrices (``MatMin`` of Table 1)."""
    return elementwise_combine(a, b, None)


def semiring_product(a: np.ndarray, b: np.ndarray,
                     algebra: Semiring | str | None = None, *,
                     chunk: int = DEFAULT_CHUNK,
                     out: np.ndarray | None = None) -> np.ndarray:
    """Semiring matrix product ``C[i, j] = ⊕_k A[i, k] ⊗ B[k, j]``.

    This is the ``MatProd`` building block of Table 1, generalized over the
    algebra.  ``a`` has shape ``(m, k)``, ``b`` has shape ``(k, n)``; the
    result has shape ``(m, n)``.  Under (min, +), ``inf`` entries represent
    missing edges and propagate correctly (``inf + x = inf``,
    ``min(inf, x) = x``); other algebras use their own ``zero``.

    Parameters
    ----------
    chunk:
        Number of output columns computed per vectorized step.
    out:
        Optional pre-allocated output array of shape ``(m, n)``.
    """
    algebra = get_algebra(algebra)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValidationError("MatProd requires 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"MatProd inner dimensions must agree, got {a.shape} and {b.shape}")
    dtype = algebra.result_dtype(a, b)
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    m, k = a.shape
    n = b.shape[1]
    if chunk <= 0:
        raise ValidationError("chunk must be positive")
    if out is None:
        out = np.empty((m, n), dtype=dtype)
    elif out.shape != (m, n):
        raise ValidationError(f"out has shape {out.shape}, expected {(m, n)}")
    # Process output columns in chunks: for each chunk J we broadcast
    # a[:, :, None] ⊗ b[None, :, J] -> (m, k, |J|) and ⊕-reduce over k.
    for j0 in range(0, n, chunk):
        j1 = min(j0 + chunk, n)
        # (m, k, j1-j0)
        combined = algebra.mul(a[:, :, None], b[None, :, j0:j1])
        algebra.add_reduce(combined, axis=1, out=out[:, j0:j1])
    return out


def minplus_product(a: np.ndarray, b: np.ndarray, *, chunk: int = DEFAULT_CHUNK,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Min-plus matrix product ``C[i, j] = min_k A[i, k] + B[k, j]`` (``MatProd``)."""
    return semiring_product(a, b, None, chunk=chunk, out=out)


def semiring_square(a: np.ndarray, algebra: Semiring | str | None = None, *,
                    chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Semiring square ``A ⊗ A`` combined elementwise (⊕) with ``A``.

    Squaring in a path closure must keep existing (shorter-or-equal) paths,
    which the diagonal ``one`` already guarantees; the explicit ⊕ with ``a``
    makes the kernel robust to inputs whose diagonal is not exactly ``one``.
    """
    algebra = get_algebra(algebra)
    return algebra.add(np.asarray(a), semiring_product(a, a, algebra, chunk=chunk))


def minplus_square(a: np.ndarray, *, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Min-plus square ``A ⊗ A`` combined with element-wise minimum against ``A``."""
    return semiring_square(a, None, chunk=chunk)


def semiring_power(a: np.ndarray, exponent: int,
                   algebra: Semiring | str | None = None, *,
                   chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Semiring matrix power ``A^exponent`` computed by repeated squaring.

    With ``exponent >= n - 1`` this yields the full closure for a graph with
    ``n`` vertices (assuming the diagonal holds the algebra's ``one``).
    """
    if exponent < 1:
        raise ValidationError("exponent must be >= 1")
    algebra = get_algebra(algebra)
    a = np.asarray(a)
    result = np.array(a, dtype=algebra.result_dtype(a), copy=True)
    e = 1
    while e < exponent:
        result = semiring_square(result, algebra, chunk=chunk)
        e *= 2
    return result


def minplus_power(a: np.ndarray, exponent: int, *, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Min-plus matrix power ``A^exponent`` computed by repeated squaring."""
    return semiring_power(a, exponent, None, chunk=chunk)


def closure_iterations(n: int) -> int:
    """Number of squarings needed so that ``A^(2^k) = A^*`` for an n-vertex graph.

    Optimal paths in an absorptive semiring are simple (at most ``n - 1``
    edges), so ``ceil(log2(n - 1))`` squarings suffice (0 for n <= 2) — the
    same bound for every registered algebra.
    """
    if n <= 0:
        raise ValidationError("n must be positive")
    if n <= 2:
        return 1 if n == 2 else 0
    return int(math.ceil(math.log2(n - 1)))


#: Backward-compatible alias (the bound is algebra-independent).
minplus_closure_iterations = closure_iterations

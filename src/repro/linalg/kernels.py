"""Floyd-Warshall kernels: full, rank-1 update, and cache-blocked variants.

These functions correspond to the ``FloydWarshall`` and ``FloydWarshallUpdate``
building blocks in Table 1 of the paper.  They operate on dense distance
matrices where ``inf`` encodes "no path" and the diagonal is expected to be 0.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_square_matrix, check_block_size
from repro.linalg.semiring import minplus_product, elementwise_min

try:  # SciPy is a hard dependency of the package, but keep the import local.
    from scipy.sparse.csgraph import floyd_warshall as _scipy_floyd_warshall
    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without SciPy
    _HAVE_SCIPY = False


def floyd_warshall_inplace(dist: np.ndarray) -> np.ndarray:
    """Run the classic Floyd-Warshall algorithm in place and return ``dist``.

    The k-loop is sequential; the inner two loops are vectorized as a rank-1
    (outer-sum) update, which is how the paper's 2D decomposition also
    parallelizes the algorithm.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    n = dist.shape[0]
    for k in range(n):
        # dist[i, j] = min(dist[i, j], dist[i, k] + dist[k, j])
        np.minimum(dist, dist[:, k, None] + dist[None, k, :], out=dist)
    return dist


def floyd_warshall(matrix: np.ndarray) -> np.ndarray:
    """Return the APSP distance matrix of ``matrix`` without modifying the input."""
    arr = check_square_matrix(matrix)
    return floyd_warshall_inplace(arr.copy())


def floyd_warshall_scipy(matrix: np.ndarray) -> np.ndarray:
    """Floyd-Warshall via :func:`scipy.sparse.csgraph.floyd_warshall`.

    This is the paper's "bare metal" sequential solver (SciPy + MKL); it is the
    reference ``T1`` measurement of Section 5.4.  Falls back to the NumPy
    kernel when SciPy is unavailable.
    """
    arr = check_square_matrix(matrix)
    if not _HAVE_SCIPY:  # pragma: no cover
        return floyd_warshall(arr)
    work = arr.copy()
    np.fill_diagonal(work, 0.0)
    return np.asarray(_scipy_floyd_warshall(work, directed=True), dtype=np.float64)


def fw_rank1_update(block: np.ndarray, col_i: np.ndarray, row_j: np.ndarray) -> np.ndarray:
    """The ``FloydWarshallUpdate`` building block (Table 1).

    Given block ``A_IJ`` and the slices of the pivot column restricted to the
    block's rows (``col_i = B_Ik``, length = block rows) and columns
    (``row_j = B_Jk``, length = block cols), compute

        ``C = col_i · 1^T + 1 · row_j^T``  and return  ``min(A_IJ, C)``.

    For an undirected graph the pivot row equals the pivot column, which is
    why both arguments can be extracted from the same broadcast column.
    """
    block = np.asarray(block, dtype=np.float64)
    col_i = np.asarray(col_i, dtype=np.float64).reshape(-1)
    row_j = np.asarray(row_j, dtype=np.float64).reshape(-1)
    if block.ndim != 2:
        raise ValidationError("block must be 2-D")
    if col_i.shape[0] != block.shape[0] or row_j.shape[0] != block.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {col_i.shape[0]}/{row_j.shape[0]} but block is {block.shape}")
    candidate = col_i[:, None] + row_j[None, :]
    return np.minimum(block, candidate)


def min_plus_then_min(block: np.ndarray, other: np.ndarray) -> np.ndarray:
    """The ``MinPlus`` building block: ``min(A_IJ ⊗ B, B-fallback)``.

    Computes the min-plus product of ``block`` with ``other`` and then the
    element-wise minimum with ``block`` itself (keeping already-known shorter
    paths).  Used by the Blocked Collect/Broadcast solver's phase 2/3 updates.
    """
    prod = minplus_product(block, other)
    return elementwise_min(block, prod)


def blocked_floyd_warshall_inplace(dist: np.ndarray, block_size: int) -> np.ndarray:
    """Cache-blocked Floyd-Warshall (Venkataraman et al. [23]) on a single array.

    This is the sequential analogue of the paper's Blocked In-Memory /
    Collect-Broadcast solvers: for each diagonal block ``(t, t)`` run
    Floyd-Warshall on the block (phase 1), update row/column blocks of the
    pivot block-row/column (phase 2), and finally all remaining blocks
    (phase 3).  Used for ground-truth testing and the cache-behaviour
    benchmarks of Figure 2.
    """
    dist = np.asarray(dist, dtype=np.float64)
    n = dist.shape[0]
    b = check_block_size(block_size, n)
    q = (n + b - 1) // b

    def _rng(t: int) -> slice:
        return slice(t * b, min((t + 1) * b, n))

    for t in range(q):
        pivot = _rng(t)
        # Phase 1: pivot diagonal block.
        floyd_warshall_inplace(dist[pivot, pivot])
        pivot_block = dist[pivot, pivot]
        # Phase 2: pivot block-row and block-column.
        for j in range(q):
            if j == t:
                continue
            cols = _rng(j)
            dist[pivot, cols] = elementwise_min(
                dist[pivot, cols], minplus_product(pivot_block, dist[pivot, cols]))
            dist[cols, pivot] = elementwise_min(
                dist[cols, pivot], minplus_product(dist[cols, pivot], pivot_block))
        # Phase 3: remaining blocks.
        for i in range(q):
            if i == t:
                continue
            rows = _rng(i)
            left = dist[rows, pivot]
            for j in range(q):
                if j == t:
                    continue
                cols = _rng(j)
                dist[rows, cols] = elementwise_min(
                    dist[rows, cols], minplus_product(left, dist[pivot, cols]))
    return dist

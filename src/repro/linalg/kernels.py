"""Floyd-Warshall kernels: full, rank-1 update, and cache-blocked variants.

These functions correspond to the ``FloydWarshall`` and ``FloydWarshallUpdate``
building blocks in Table 1 of the paper, generalized over a pluggable
:class:`~repro.linalg.algebra.Semiring`.  Under the default (min, +) algebra
they operate on dense distance matrices where ``inf`` encodes "no path" and
the diagonal is expected to be 0; other algebras substitute their own
``zero``/``one``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_square_matrix, check_block_size
from repro.linalg import bitset, witness
from repro.linalg.algebra import Semiring, get_algebra
from repro.linalg.semiring import semiring_product, elementwise_combine

try:  # SciPy is a hard dependency of the package, but keep the import local.
    from scipy.sparse.csgraph import floyd_warshall as _scipy_floyd_warshall
    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without SciPy
    _HAVE_SCIPY = False


def floyd_warshall_inplace(dist: np.ndarray,
                           algebra: Semiring | str | None = None) -> np.ndarray:
    """Run the classic Floyd-Warshall algorithm in place and return ``dist``.

    The k-loop is sequential; the inner two loops are vectorized as a rank-1
    (outer-⊗) update, which is how the paper's 2D decomposition also
    parallelizes the algorithm.

    ``dist`` must already be an ndarray in one of the algebra's supported
    dtypes: a silent conversion would operate on a *copy*, leaving callers
    that rely on in-place mutation with a stale array, so unsupported dtypes
    raise :class:`~repro.common.errors.ValidationError` instead.  Non-array
    inputs (nested lists) are converted — the mutated array is returned.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(dist):
        return witness.witness_floyd_warshall_inplace(dist, algebra)
    if bitset.is_packed(dist):
        if "packed" not in algebra.storages:
            raise ValidationError(
                f"algebra {algebra.name!r} has no packed Floyd-Warshall kernel")
        return bitset.packed_floyd_warshall_inplace(dist)
    if isinstance(dist, np.ndarray):
        if dist.dtype.name not in algebra.dtypes:
            raise ValidationError(
                f"floyd_warshall_inplace cannot mutate a {dist.dtype.name} array "
                f"in place under algebra {algebra.name!r} (supported dtypes: "
                f"{', '.join(algebra.dtypes)}); convert the input first, e.g. "
                f"arr.astype(np.{algebra.default_dtype})")
    else:
        dist = np.asarray(dist, dtype=algebra.resolve_dtype(None))
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    n = dist.shape[0]
    for k in range(n):
        # dist[i, j] = dist[i, j] ⊕ (dist[i, k] ⊗ dist[k, j])
        algebra.add(dist, algebra.mul(dist[:, k, None], dist[None, k, :]), out=dist)
    return dist


def floyd_warshall(matrix: np.ndarray,
                   algebra: Semiring | str | None = None) -> np.ndarray:
    """Return the closure of ``matrix`` under ``algebra`` without modifying the input."""
    algebra = get_algebra(algebra)
    arr = check_square_matrix(matrix, dtype=None)
    work = np.array(arr, dtype=algebra.result_dtype(arr), copy=True)
    return floyd_warshall_inplace(work, algebra)


def semiring_closure(weights: np.ndarray, algebra: Semiring | str | None = None, *,
                     dtype: str | np.dtype | None = None) -> np.ndarray:
    """Dense reference closure: validate + coerce weights, then Floyd-Warshall.

    This is the ground truth the cross-solver equivalence tests and the
    benchmark verifier compare against: canonical edge weights (non-finite =
    missing edge) are checked against the algebra's precondition, mapped into
    its domain (diagonal = ``one``, missing = ``zero``) and closed.
    """
    algebra = get_algebra(algebra)
    algebra.validate_input(weights)
    prepared = algebra.prepare_adjacency(weights, dtype=dtype)
    return floyd_warshall_inplace(prepared, algebra)


def floyd_warshall_scipy(matrix: np.ndarray) -> np.ndarray:
    """Floyd-Warshall via :func:`scipy.sparse.csgraph.floyd_warshall`.

    This is the paper's "bare metal" sequential solver (SciPy + MKL); it is the
    reference ``T1`` measurement of Section 5.4.  (min, +)-only — SciPy has no
    algebra parameter.  Falls back to the NumPy kernel when SciPy is
    unavailable.
    """
    arr = check_square_matrix(matrix)
    if not _HAVE_SCIPY:  # pragma: no cover
        return floyd_warshall(arr)
    work = arr.copy()
    np.fill_diagonal(work, 0.0)
    return np.asarray(_scipy_floyd_warshall(work, directed=True), dtype=np.float64)


def fw_rank1_update(block: np.ndarray, col_i: np.ndarray, row_j: np.ndarray,
                    algebra: Semiring | str | None = None) -> np.ndarray:
    """The ``FloydWarshallUpdate`` building block (Table 1).

    Given block ``A_IJ`` and the slices of the pivot column restricted to the
    block's rows (``col_i = B_Ik``, length = block rows) and columns
    (``row_j = B_Jk``, length = block cols), compute

        ``C = col_i ⊗ 1^T  ⊕ ... `` i.e. the outer-⊗ ``col_i[:, None] ⊗ row_j[None, :]``

    and return ``A_IJ ⊕ C``.  For an undirected graph the pivot row equals
    the pivot column, which is why both arguments can be extracted from the
    same broadcast column.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(block):
        return witness.witness_rank1_update(block, col_i, row_j, algebra)
    if bitset.is_packed(block):
        if "packed" not in algebra.storages:
            raise ValidationError(
                f"algebra {algebra.name!r} has no packed rank-1 update kernel")
        return bitset.packed_rank1_update(block, col_i, row_j)
    dtype = algebra.result_dtype(np.asarray(block), np.asarray(col_i), np.asarray(row_j))
    block = np.asarray(block, dtype=dtype)
    col_i = np.asarray(col_i, dtype=dtype).reshape(-1)
    row_j = np.asarray(row_j, dtype=dtype).reshape(-1)
    if block.ndim != 2:
        raise ValidationError("block must be 2-D")
    if col_i.shape[0] != block.shape[0] or row_j.shape[0] != block.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {col_i.shape[0]}/{row_j.shape[0]} but block is {block.shape}")
    candidate = algebra.mul(col_i[:, None], row_j[None, :])
    return algebra.add(block, candidate)


def fw_rank1_update_inplace(block, col_i, row_j,
                            algebra: Semiring | str | None = None) -> np.ndarray:
    """In-place ``FloydWarshallUpdate`` returning the changed-row mask.

    The dynamic-update sibling of :func:`fw_rank1_update`: mutates ``block``
    (dense ndarray, :class:`~repro.linalg.bitset.PackedBlock` or
    :class:`~repro.linalg.witness.WitnessBlock`) directly and reports which
    rows improved, so the caller can invalidate exactly the serving-cache
    rows a batched edge update touched.  Dense blocks must already be in one
    of the algebra's dtypes — a silent conversion would mutate a copy.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(block):
        return witness.witness_rank1_update_inplace(block, col_i, row_j, algebra)
    if bitset.is_packed(block):
        if "packed" not in algebra.storages:
            raise ValidationError(
                f"algebra {algebra.name!r} has no packed rank-1 update kernel")
        return bitset.packed_rank1_update_inplace(block, col_i, row_j)
    if not isinstance(block, np.ndarray) or block.dtype.name not in algebra.dtypes:
        raise ValidationError(
            f"fw_rank1_update_inplace cannot mutate a "
            f"{np.asarray(block).dtype.name} array in place under algebra "
            f"{algebra.name!r} (supported dtypes: {', '.join(algebra.dtypes)})")
    if block.ndim != 2:
        raise ValidationError("block must be 2-D")
    col = np.asarray(col_i, dtype=block.dtype).reshape(-1)
    row = np.asarray(row_j, dtype=block.dtype).reshape(-1)
    if col.shape[0] != block.shape[0] or row.shape[0] != block.shape[1]:
        raise ValidationError(
            f"pivot slices have lengths {col.shape[0]}/{row.shape[0]} "
            f"but block is {block.shape}")
    candidate = algebra.mul(col[:, None], row[None, :])
    relaxed = algebra.add(block, candidate)
    changed = np.any(relaxed != block, axis=1)
    if changed.any():
        block[...] = relaxed
    return changed


def min_plus_then_min(block: np.ndarray, other: np.ndarray,
                      algebra: Semiring | str | None = None) -> np.ndarray:
    """The ``MinPlus`` building block: ``(A_IJ ⊗ B) ⊕ A_IJ``.

    Computes the semiring product of ``block`` with ``other`` and then the
    elementwise ⊕ with ``block`` itself (keeping already-known optimal
    paths).  Used by the Blocked Collect/Broadcast solver's phase 2/3 updates.
    """
    prod = semiring_product(block, other, algebra)
    return elementwise_combine(block, prod, algebra)


def blocked_floyd_warshall_inplace(dist: np.ndarray, block_size: int,
                                   algebra: Semiring | str | None = None) -> np.ndarray:
    """Cache-blocked Floyd-Warshall (Venkataraman et al. [23]) on a single array.

    This is the sequential analogue of the paper's Blocked In-Memory /
    Collect-Broadcast solvers: for each diagonal block ``(t, t)`` run
    Floyd-Warshall on the block (phase 1), update row/column blocks of the
    pivot block-row/column (phase 2), and finally all remaining blocks
    (phase 3).  Used for ground-truth testing and the cache-behaviour
    benchmarks of Figure 2.
    """
    algebra = get_algebra(algebra)
    if witness.is_witnessed(dist):
        return witness.blocked_witness_floyd_warshall(dist, block_size, algebra)
    if not isinstance(dist, np.ndarray) or dist.dtype.name not in algebra.dtypes:
        dist = np.asarray(dist, dtype=algebra.result_dtype(np.asarray(dist)))
    n = dist.shape[0]
    b = check_block_size(block_size, n)
    q = (n + b - 1) // b

    def _rng(t: int) -> slice:
        return slice(t * b, min((t + 1) * b, n))

    for t in range(q):
        pivot = _rng(t)
        # Phase 1: pivot diagonal block.
        floyd_warshall_inplace(dist[pivot, pivot], algebra)
        pivot_block = dist[pivot, pivot]
        # Phase 2: pivot block-row and block-column.
        for j in range(q):
            if j == t:
                continue
            cols = _rng(j)
            dist[pivot, cols] = elementwise_combine(
                dist[pivot, cols],
                semiring_product(pivot_block, dist[pivot, cols], algebra), algebra)
            dist[cols, pivot] = elementwise_combine(
                dist[cols, pivot],
                semiring_product(dist[cols, pivot], pivot_block, algebra), algebra)
        # Phase 3: remaining blocks.
        for i in range(q):
            if i == t:
                continue
            rows = _rng(i)
            left = dist[rows, pivot]
            for j in range(q):
                if j == t:
                    continue
                cols = _rng(j)
                dist[rows, cols] = elementwise_combine(
                    dist[rows, cols],
                    semiring_product(left, dist[pivot, cols], algebra), algebra)
    return dist

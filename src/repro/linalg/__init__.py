"""Dense linear algebra over pluggable path algebras and blocked matrices.

These are the "bare metal" kernels of the paper (Section 4.1): semiring
matrix product (min-plus by default), elementwise ⊕, the Floyd-Warshall
block kernel and the rank-1 Floyd-Warshall update.  In the paper they are
dispatched to NumPy/SciPy/Numba; here they are vectorized NumPy (BLAS-free
but cache-aware, processed in column chunks), parameterized by a
:class:`~repro.linalg.algebra.Semiring` so the same kernels also compute
widest paths, most-reliable paths, DAG longest paths and transitive closure.
"""

from repro.linalg.algebra import (
    Semiring,
    get_algebra,
    register_algebra,
    resolve_algebra_name,
    available_algebras,
    algebra_catalog,
    SHORTEST_PATH,
    WIDEST_PATH,
    MOST_RELIABLE,
    LONGEST_PATH,
    REACHABILITY,
)
from repro.linalg.bitset import (
    PackedBlock,
    pack_bits,
    unpack_bits,
    packed_closure,
    packed_product,
    packed_or,
    packed_floyd_warshall_inplace,
)
from repro.linalg.semiring import (
    chunk_for_dtype,
    auto_chunk,
    semiring_product,
    semiring_power,
    semiring_square,
    elementwise_combine,
    closure_iterations,
    minplus_product,
    minplus_power,
    elementwise_min,
    minplus_closure_iterations,
)
from repro.linalg.kernels import (
    floyd_warshall_inplace,
    floyd_warshall,
    floyd_warshall_scipy,
    fw_rank1_update,
    blocked_floyd_warshall_inplace,
    semiring_closure,
)
from repro.linalg.blocks import (
    BlockId,
    num_blocks,
    block_range,
    block_of_index,
    matrix_to_blocks,
    blocks_to_matrix,
    BlockedMatrix,
)

__all__ = [
    "PackedBlock",
    "pack_bits",
    "unpack_bits",
    "packed_closure",
    "packed_product",
    "packed_or",
    "packed_floyd_warshall_inplace",
    "chunk_for_dtype",
    "auto_chunk",
    "Semiring",
    "get_algebra",
    "register_algebra",
    "resolve_algebra_name",
    "available_algebras",
    "algebra_catalog",
    "SHORTEST_PATH",
    "WIDEST_PATH",
    "MOST_RELIABLE",
    "LONGEST_PATH",
    "REACHABILITY",
    "semiring_product",
    "semiring_power",
    "semiring_square",
    "elementwise_combine",
    "closure_iterations",
    "semiring_closure",
    "minplus_product",
    "minplus_power",
    "elementwise_min",
    "minplus_closure_iterations",
    "floyd_warshall_inplace",
    "floyd_warshall",
    "floyd_warshall_scipy",
    "fw_rank1_update",
    "blocked_floyd_warshall_inplace",
    "BlockId",
    "num_blocks",
    "block_range",
    "block_of_index",
    "matrix_to_blocks",
    "blocks_to_matrix",
    "BlockedMatrix",
]

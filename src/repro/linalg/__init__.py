"""Dense linear algebra over the (min, +) semiring and blocked matrices.

These are the "bare metal" kernels of the paper (Section 4.1): min-plus
matrix product, element-wise minimum, the Floyd-Warshall block kernel and
the rank-1 Floyd-Warshall update.  In the paper they are dispatched to
NumPy/SciPy/Numba; here they are vectorized NumPy (BLAS-free but cache-aware,
processed in column chunks).
"""

from repro.linalg.semiring import (
    minplus_product,
    minplus_power,
    elementwise_min,
    minplus_closure_iterations,
)
from repro.linalg.kernels import (
    floyd_warshall_inplace,
    floyd_warshall,
    floyd_warshall_scipy,
    fw_rank1_update,
    blocked_floyd_warshall_inplace,
)
from repro.linalg.blocks import (
    BlockId,
    num_blocks,
    block_range,
    block_of_index,
    matrix_to_blocks,
    blocks_to_matrix,
    BlockedMatrix,
)

__all__ = [
    "minplus_product",
    "minplus_power",
    "elementwise_min",
    "minplus_closure_iterations",
    "floyd_warshall_inplace",
    "floyd_warshall",
    "floyd_warshall_scipy",
    "fw_rank1_update",
    "blocked_floyd_warshall_inplace",
    "BlockId",
    "num_blocks",
    "block_range",
    "block_of_index",
    "matrix_to_blocks",
    "blocks_to_matrix",
    "BlockedMatrix",
]

"""Setuptools packaging for environments without PEP-517 build isolation (offline installs)."""
from setuptools import find_packages, setup

setup(
    name="apspark-repro",
    version="1.0.0",
    description="Reproduction of 'Solving All-Pairs Shortest-Paths Problem in "
                "Large Graphs Using Apache Spark' (ICPP 2019)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "apspark = repro.experiments.cli:main",
        ],
    },
)

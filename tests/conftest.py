"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.graph.generators import erdos_renyi_adjacency, grid_adjacency, path_adjacency
from repro.sequential.floyd_warshall import floyd_warshall_reference
from repro.spark.context import SparkContext


@pytest.fixture
def engine_config() -> EngineConfig:
    """Small deterministic engine configuration used by most engine tests."""
    return EngineConfig(backend="serial", num_executors=4, cores_per_executor=2)


@pytest.fixture
def threaded_config() -> EngineConfig:
    """Thread-pool backend configuration (exercises concurrent task execution)."""
    return EngineConfig(backend="threads", num_executors=2, cores_per_executor=2)


@pytest.fixture
def spark_context(engine_config):
    """A SparkContext that is stopped at the end of the test."""
    sc = SparkContext(engine_config)
    yield sc
    sc.stop()


@pytest.fixture(scope="session")
def small_er_graph() -> np.ndarray:
    """A 48-vertex Erdős–Rényi adjacency matrix shared across tests."""
    return erdos_renyi_adjacency(48, seed=7)


@pytest.fixture(scope="session")
def small_er_reference(small_er_graph) -> np.ndarray:
    """Ground-truth APSP distances for :func:`small_er_graph`."""
    return floyd_warshall_reference(small_er_graph)


@pytest.fixture(scope="session")
def medium_er_graph() -> np.ndarray:
    """A 96-vertex Erdős–Rényi adjacency matrix for solver integration tests."""
    return erdos_renyi_adjacency(96, seed=19)


@pytest.fixture(scope="session")
def medium_er_reference(medium_er_graph) -> np.ndarray:
    return floyd_warshall_reference(medium_er_graph)


@pytest.fixture(scope="session")
def grid_graph() -> np.ndarray:
    """A 6x8 grid graph whose shortest paths are Manhattan distances."""
    return grid_adjacency(6, 8)


@pytest.fixture(scope="session")
def path_graph() -> np.ndarray:
    """A 12-vertex path graph with unit weights."""
    return path_adjacency(12)

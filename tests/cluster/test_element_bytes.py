"""Dtype/storage-aware element sizing of the cluster cost model."""

import pytest

from repro.cluster.costmodel import CostModel, element_bytes
from repro.common.errors import ConfigurationError


def test_element_bytes_matrix():
    assert element_bytes() == 8.0                                   # float64
    assert element_bytes(dtype="float32") == 4.0
    assert element_bytes("reachability", storage="dense") == 1.0    # bool
    assert element_bytes("reachability") == 0.125                   # packed default
    assert element_bytes("reachability", storage="auto") == 0.125
    assert element_bytes("widest-path", dtype="float32") == 4.0
    with pytest.raises(ConfigurationError):
        element_bytes("shortest-path", dtype="bool")
    with pytest.raises(ConfigurationError):   # packed needs a boolean algebra
        element_bytes("shortest-path", storage="packed")
    with pytest.raises(ConfigurationError):   # typos raise, never mis-size
        element_bytes("reachability", storage="pakced")


def test_default_projection_unchanged():
    """With no algebra/dtype the model keeps its historical float64 terms."""
    model = CostModel()
    base = model.project("blocked-cb", 65536, 2048, 256)
    explicit = model.project("blocked-cb", 65536, 2048, 256,
                             algebra="shortest-path", dtype="float64",
                             storage="dense")
    assert base.projected_total_seconds == explicit.projected_total_seconds


@pytest.mark.parametrize("solver", ["repeated-squaring", "blocked-im", "blocked-cb"])
def test_narrower_elements_shrink_data_terms(solver):
    model = CostModel()
    f64 = model.estimate_iteration(solver, 65536, 2048, 256)
    f32 = model.estimate_iteration(solver, 65536, 2048, 256, dtype="float32")
    packed = model.estimate_iteration(solver, 65536, 2048, 256,
                                      algebra="reachability", storage="packed")
    data = lambda e: (e.shuffle_seconds + e.driver_seconds + e.sharedfs_seconds)  # noqa: E731
    assert data(f32) == pytest.approx(data(f64) / 2.0)
    assert data(packed) == pytest.approx(data(f64) / 64.0)
    # The block kernels are memory-bandwidth-bound, so the distributed
    # compute term scales with element width too (phase-2 granularity
    # ceilings keep it from being exactly proportional for the blocked
    # methods, hence the inequality bounds).
    assert f64.compute_seconds / 2.5 <= f32.compute_seconds <= f64.compute_seconds / 1.5
    assert packed.compute_seconds < f64.compute_seconds / 16.0


def test_fw2d_broadcast_column_scales_with_dtype():
    model = CostModel()
    f64 = model.estimate_iteration("fw-2d", 65536, 2048, 256)
    f32 = model.estimate_iteration("fw-2d", 65536, 2048, 256, dtype="float32")
    packed = model.estimate_iteration("fw-2d", 65536, 2048, 256,
                                      algebra="reachability", storage="packed")
    assert f32.driver_seconds == pytest.approx(f64.driver_seconds / 2.0)
    # The broadcast column stays a dense vector under packed block storage:
    # it is floored at one byte per element, not 1/8.
    assert packed.driver_seconds == pytest.approx(f64.driver_seconds / 8.0)


def test_packed_spill_defers_blocked_im_infeasibility():
    """The Blocked-IM spill wall moves out by ~64x for packed reachability."""
    model = CostModel()
    f64 = model.project("blocked-im", 262144, 2048, 1024)
    packed = model.project("blocked-im", 262144, 2048, 1024,
                           algebra="reachability", storage="packed")
    spill_f64 = model.spill_per_node_bytes("blocked-im", 262144, 2048, 1024)
    spill_packed = model.spill_per_node_bytes("blocked-im", 262144, 2048, 1024,
                                              algebra="reachability",
                                              storage="packed")
    assert spill_packed == pytest.approx(spill_f64 / 64.0)
    assert (not f64.feasible) and packed.feasible


def test_mpi_baselines_default_unchanged():
    """The MPI formulas keep their historical 8-byte defaults bit-for-bit."""
    model = CostModel()
    assert model.mpi_fw2d_seconds(65536, 256) == \
        model.mpi_fw2d_seconds(65536, 256, algebra="shortest-path",
                               dtype="float64", storage="dense")
    assert model.mpi_dc_seconds(65536, 256) == \
        model.mpi_dc_seconds(65536, 256, algebra="shortest-path",
                             dtype="float64", storage="dense")


def test_mpi_fw2d_bandwidth_scales_with_element_bytes():
    """Only the broadcast bandwidth term shrinks: isolate it by latency=0 diff."""
    model = CostModel()
    f64 = model.mpi_fw2d_seconds(65536, 256)
    f32 = model.mpi_fw2d_seconds(65536, 256, dtype="float32")
    packed = model.mpi_fw2d_seconds(65536, 256, algebra="reachability",
                                    storage="packed")
    # Latency and compute are element-size independent, so the f64-f32 gap
    # is exactly half the f64 bandwidth term, and f64-packed is (1 - 1/64).
    bandwidth_gap_f32 = f64 - f32
    bandwidth_gap_packed = f64 - packed
    assert bandwidth_gap_f32 > 0
    assert bandwidth_gap_packed == pytest.approx(
        bandwidth_gap_f32 * (1.0 - 1.0 / 64.0) / 0.5)


def test_mpi_dc_bandwidth_scales_with_element_bytes():
    model = CostModel()
    f64 = model.mpi_dc_seconds(65536, 256)
    f32 = model.mpi_dc_seconds(65536, 256, dtype="float32")
    boolean = model.mpi_dc_seconds(65536, 256, algebra="reachability",
                                   storage="dense")
    gap_f32 = f64 - f32          # half the f64 bandwidth term
    gap_bool = f64 - boolean     # 7/8 of the f64 bandwidth term
    assert gap_f32 > 0
    assert gap_bool == pytest.approx(gap_f32 * (7.0 / 8.0) / 0.5)


def test_mpi_formulas_validate_like_solve_requests():
    model = CostModel()
    with pytest.raises(ConfigurationError):
        model.mpi_fw2d_seconds(65536, 256, algebra="shortest-path",
                               storage="packed")
    with pytest.raises(ConfigurationError):
        model.mpi_dc_seconds(65536, 256, dtype="bool")


def test_best_block_size_threads_element_size():
    model = CostModel()
    result = model.best_block_size("blocked-cb", 65536, 256,
                                   algebra="reachability", storage="packed")
    assert result.feasible

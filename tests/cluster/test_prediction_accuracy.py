"""Prediction-accuracy harness: the calibrated model vs the measured archives.

Every committed baseline scenario's predicted wall must land within its
suite's relative-error threshold.  Known offenders can be exempted via
``benchmarks/prediction_warnlist.json``, but the warn-list is itself under
test: an exemption whose scenario now passes its suite gate is *stale* and
fails the suite — exemptions cannot silently outlive the problem they
documented.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import discover_archives, load_report
from repro.cluster import fitting

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")
CALIBRATION_PATH = os.path.join(REPO_ROOT, "benchmarks", "calibration.json")
WARNLIST_PATH = os.path.join(REPO_ROOT, "benchmarks", "prediction_warnlist.json")

#: Per-suite relative-error gates.  Short-wall suites (faults, dynamic) get
#: looser gates: their scenarios sit in the tens of milliseconds where pool
#: warmup and scheduler jitter are a visible fraction of the measurement.
SUITE_THRESHOLDS = {
    "algebras": 0.30,
    "directed": 0.30,
    "dynamic": 0.35,
    "faults": 0.30,
    "reachability": 0.20,
    "serve": 0.15,
    "smoke": 0.30,
}
DEFAULT_THRESHOLD = 0.35

#: The acceptance-level gate across every baseline scenario.
MEDIAN_GATE = 0.35


def _suite_threshold(suite: str) -> float:
    return SUITE_THRESHOLDS.get(suite, DEFAULT_THRESHOLD)


@pytest.fixture(scope="module")
def accuracy():
    reports = [load_report(path)
               for path in discover_archives([BASELINE_DIR])]
    observations = fitting.extract_observations(reports)
    constants = fitting.load_calibration(CALIBRATION_PATH)["constants"]
    return fitting.accuracy_report(observations, constants)


@pytest.fixture(scope="module")
def per_scenario(accuracy):
    return {(row["suite"], row["id"]): row
            for row in accuracy["per_scenario"]}


@pytest.fixture(scope="module")
def warnlist():
    with open(WARNLIST_PATH, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc.get("schema_version") == 1
    return {(entry["suite"], entry["id"]): entry
            for entry in doc.get("exemptions", [])}


class TestPredictionAccuracy:
    def test_global_median_under_acceptance_gate(self, accuracy):
        assert accuracy["median_rel_error"] <= MEDIAN_GATE, (
            f"median relative prediction error "
            f"{accuracy['median_rel_error']:.1%} exceeds the "
            f"{MEDIAN_GATE:.0%} acceptance gate")

    def test_every_suite_is_covered(self, accuracy):
        assert set(accuracy["per_suite"]) == set(SUITE_THRESHOLDS)

    def test_per_scenario_error_under_suite_threshold(self, per_scenario,
                                                      warnlist):
        failures = []
        for key, row in per_scenario.items():
            gate = _suite_threshold(row["suite"])
            exemption = warnlist.get(key)
            if exemption is not None:
                gate = float(exemption["max_rel_error"])
            if row["rel_error"] > gate:
                failures.append(
                    f"{row['suite']}/{row['id']}: rel error "
                    f"{row['rel_error']:.1%} > {gate:.0%}"
                    f"{' (exempt ceiling)' if exemption else ''}")
        assert not failures, "\n".join(failures)


class TestWarnlistHygiene:
    def test_exemptions_refer_to_real_scenarios(self, per_scenario, warnlist):
        unknown = [key for key in warnlist if key not in per_scenario]
        assert not unknown, (
            f"warn-list exempts scenarios absent from the baselines: "
            f"{unknown}")

    def test_no_stale_exemptions(self, per_scenario, warnlist):
        """An exemption whose scenario now passes its suite gate must go."""
        stale = []
        for key, entry in warnlist.items():
            row = per_scenario[key]
            if row["rel_error"] <= _suite_threshold(row["suite"]):
                stale.append(
                    f"{key[0]}/{key[1]}: rel error {row['rel_error']:.1%} "
                    f"is within the {_suite_threshold(row['suite']):.0%} "
                    f"suite gate — remove the exemption")
        assert not stale, "\n".join(stale)

    def test_exemptions_document_themselves(self, warnlist):
        for key, entry in warnlist.items():
            assert entry.get("reason"), f"{key}: exemption needs a reason"
            ceiling = float(entry["max_rel_error"])
            assert ceiling > _suite_threshold(entry["suite"]), (
                f"{key}: exemption ceiling {ceiling} must exceed the suite "
                f"gate it overrides")
            assert ceiling < 1.0, (
                f"{key}: an error ceiling of {ceiling:.0%} exempts the "
                f"scenario from prediction entirely — fix the model instead")

"""Tests for the cluster machine model and the kernel calibration."""

import pytest

from repro.cluster.calibration import KernelCalibration, measure_kernel_times
from repro.cluster.model import (
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    SharedStorageSpec,
    SparkOverheadSpec,
    paper_cluster,
    small_test_cluster,
    GIB,
)
from repro.common.errors import ConfigurationError


class TestClusterSpec:
    def test_paper_cluster_dimensions(self):
        cluster = paper_cluster()
        assert cluster.num_nodes == 32
        assert cluster.node.cores == 32
        assert cluster.total_cores == 1024
        assert cluster.node.local_storage_bytes == 1024 * GIB
        assert cluster.total_memory_bytes == 32 * 192 * GIB

    def test_small_test_cluster(self):
        cluster = small_test_cluster()
        assert cluster.total_cores == 16

    def test_with_cores_scales_node_count(self):
        cluster = paper_cluster().with_cores(256)
        assert cluster.num_nodes == 8
        assert cluster.total_cores == 256

    def test_with_cores_rounds_up(self):
        cluster = paper_cluster().with_cores(100)
        assert cluster.num_nodes == 4

    def test_with_cores_invalid(self):
        with pytest.raises(ConfigurationError):
            paper_cluster().with_cores(0)

    def test_invalid_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=0)

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(cores=0)

    def test_defaults_are_gbe_and_gpfs(self):
        assert NetworkSpec().bandwidth_per_node == 125 * 1024 ** 2
        assert SharedStorageSpec().write_bandwidth > 0
        assert SparkOverheadSpec().task_overhead > 0


class TestKernelCalibration:
    def test_paper_rates(self):
        cal = KernelCalibration.paper()
        assert cal.floyd_warshall_rate == pytest.approx(0.762e9)
        assert cal.source == "paper"

    def test_sequential_reference_t1(self):
        # The paper reports T1 = 0.022 s for n = 256 (0.762 Gop/s).
        cal = KernelCalibration.paper()
        assert cal.sequential_apsp_seconds(256) == pytest.approx(0.022, rel=0.01)

    def test_cubic_scaling(self):
        cal = KernelCalibration.paper()
        assert cal.floyd_warshall_seconds(2000) == pytest.approx(
            8 * cal.floyd_warshall_seconds(1000))
        assert cal.minplus_seconds(512) > cal.minplus_seconds(256)

    def test_measure_kernel_times_rows(self):
        rows = measure_kernel_times(block_sizes=(32, 48), repeats=1)
        assert len(rows) == 2
        for row in rows:
            assert row["minplus_seconds"] > 0
            assert row["floyd_warshall_seconds"] > 0

    def test_measured_calibration(self):
        cal = KernelCalibration.measure(block_sizes=(48, 64), repeats=1)
        assert cal.source == "measured"
        assert cal.floyd_warshall_rate > 0
        assert cal.minplus_rate > 0
        assert cal.dc_optimized_rate >= cal.floyd_warshall_rate

"""Calibration fitting: golden-file reproducibility, schema, CLI error paths.

The golden test is the contract that makes ``benchmarks/calibration.json``
reviewable: re-fitting from the committed baseline archives must reproduce
the committed constants bit-for-bit (NNLS via Lawson-Hanson is
deterministic, observation order is fixed by ``discover_archives`` sorting,
and constants are rounded to 12 significant digits before serialisation).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import discover_archives, load_report
from repro.cluster import fitting
from repro.common.errors import ValidationError
from repro.experiments.cli import main

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")
CALIBRATION_PATH = os.path.join(REPO_ROOT, "benchmarks", "calibration.json")


@pytest.fixture(scope="module")
def baseline_reports():
    paths = discover_archives([BASELINE_DIR])
    assert paths, "no committed baseline archives found"
    return paths, [load_report(path) for path in paths]


@pytest.fixture(scope="module")
def committed_calibration():
    return fitting.load_calibration(CALIBRATION_PATH)


class TestGoldenCalibration:
    def test_refit_reproduces_committed_constants(self, baseline_reports,
                                                  committed_calibration):
        """Calibrating over the committed baselines is bit-stable."""
        paths, reports = baseline_reports
        rebuilt = fitting.build_calibration(reports, source_paths=paths)
        # Volatile metadata (created_unix, git, host, sources) legitimately
        # differs; the deterministic subtrees must match exactly.
        assert rebuilt["constants"] == committed_calibration["constants"]
        assert rebuilt["accuracy"] == committed_calibration["accuracy"]
        assert (rebuilt["schema_version"]
                == committed_calibration["schema_version"])

    def test_double_fit_is_deterministic(self, baseline_reports):
        _, reports = baseline_reports
        first = fitting.build_calibration(reports)
        second = fitting.build_calibration(reports)
        assert first["constants"] == second["constants"]
        assert first["accuracy"] == second["accuracy"]

    def test_committed_constants_are_rounded(self, committed_calibration):
        """Serialised constants survive a JSON round-trip unchanged."""
        rates = committed_calibration["constants"]["seconds_per_unit"]
        assert rates, "committed calibration has no fitted constants"
        for key, value in rates.items():
            assert value == json.loads(json.dumps(value)), key
            assert value >= 0.0, key  # NNLS: rates are non-negative

    def test_committed_accuracy_meets_acceptance(self, committed_calibration):
        accuracy = committed_calibration["accuracy"]
        assert accuracy["median_rel_error"] <= 0.35
        assert accuracy["scenarios"] >= 50


class TestSchema:
    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValidationError, match="missing"):
            fitting.validate_calibration({"schema_version": 1})

    def test_validate_rejects_wrong_version(self, committed_calibration):
        doc = dict(committed_calibration)
        doc["schema_version"] = 99
        with pytest.raises(ValidationError, match="version"):
            fitting.validate_calibration(doc)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            fitting.load_calibration(str(tmp_path / "nope.json"))

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            fitting.load_calibration(str(path))

    def test_write_load_round_trip(self, baseline_reports, tmp_path):
        _, reports = baseline_reports
        doc = fitting.build_calibration(reports)
        path = str(tmp_path / "calibration.json")
        fitting.write_calibration(doc, path)
        assert fitting.load_calibration(path) == json.loads(
            json.dumps(doc))


class TestCalibrateCli:
    def test_malformed_archive_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"schema_version": 1}')
        assert main(["bench", "calibrate", "--archive", str(bad),
                     "--dry-run"]) == 2
        assert "missing keys" in capsys.readouterr().err

    def test_invalid_json_archive_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{truncated")
        assert main(["bench", "calibrate", "--archive", str(bad),
                     "--dry-run"]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_missing_location_exits_nonzero(self, tmp_path, capsys):
        assert main(["bench", "calibrate",
                     "--archive", str(tmp_path / "absent"),
                     "--dry-run"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_no_archives_exits_nonzero(self, tmp_path, capsys):
        assert main(["bench", "calibrate", "--archive", str(tmp_path),
                     "--dry-run"]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_calibrate_writes_output_and_report(self, tmp_path, capsys):
        out = tmp_path / "calibration.json"
        report = tmp_path / "accuracy.json"
        assert main(["bench", "calibrate", "--archive", BASELINE_DIR,
                     "--output", str(out), "--report", str(report)]) == 0
        doc = fitting.load_calibration(str(out))
        assert doc["constants"]["seconds_per_unit"]
        accuracy = json.loads(report.read_text())
        assert accuracy["median_rel_error"] <= 0.35
        assert "prediction accuracy" in capsys.readouterr().out

    def test_drift_compare_is_warn_only(self, tmp_path, capsys):
        """A heavily drifted baseline must not change the exit code."""
        drifted = fitting.load_calibration(CALIBRATION_PATH)
        drifted = json.loads(json.dumps(drifted))
        for key in drifted["constants"]["seconds_per_unit"]:
            drifted["constants"]["seconds_per_unit"][key] *= 100.0
        baseline = tmp_path / "old.json"
        baseline.write_text(json.dumps(drifted))
        assert main(["bench", "calibrate", "--archive", BASELINE_DIR,
                     "--dry-run", "--drift-baseline", str(baseline)]) == 0
        assert "drift" in capsys.readouterr().out

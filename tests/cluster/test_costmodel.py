"""Tests for the analytic cost model: iteration counts, shapes, and paper anchors."""

import pytest

from repro.cluster.costmodel import CostModel, SOLVER_NAMES
from repro.common.errors import ConfigurationError

HOUR = 3600.0
DAY = 24 * HOUR


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel()


class TestIterationCounts:
    """Iteration counts must match the 'Iterations' column of Table 2 exactly."""

    @pytest.mark.parametrize("solver,b,expected", [
        ("repeated-squaring", 256, 18432),
        ("repeated-squaring", 1024, 4608),
        ("repeated-squaring", 4096, 1152),
        ("fw-2d", 256, 262144),
        ("fw-2d", 4096, 262144),
        ("blocked-im", 256, 1024),
        ("blocked-im", 1024, 256),
        ("blocked-im", 4096, 64),
        ("blocked-cb", 2048, 128),
    ])
    def test_table2_iteration_column(self, model, solver, b, expected):
        assert model.iteration_count(solver, 262144, b) == expected

    def test_unknown_solver_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.iteration_count("dijkstra", 1024, 64)


class TestProjectionShapes:
    """The qualitative findings of Table 2 / Figure 3 / Table 3."""

    def test_squaring_and_fw2d_projected_in_days(self, model):
        rs = model.project("repeated-squaring", 262144, 1024, 1024)
        fw = model.project("fw-2d", 262144, 1024, 1024)
        assert rs.projected_total_seconds > 5 * DAY
        assert fw.projected_total_seconds > 20 * DAY

    def test_blocked_methods_projected_in_hours(self, model):
        cb = model.project("blocked-cb", 262144, 1024, 1024)
        im = model.project("blocked-im", 262144, 1024, 1024)
        assert 4 * HOUR < cb.projected_total_seconds < 16 * HOUR
        assert 4 * HOUR < im.projected_total_seconds < 16 * HOUR

    def test_blocked_methods_dominate_naive_methods(self, model):
        cb = model.project("blocked-cb", 262144, 1024, 1024)
        for slow in ("repeated-squaring", "fw-2d"):
            assert model.project(slow, 262144, 1024, 1024).projected_total_seconds > \
                5 * cb.projected_total_seconds

    def test_cb_beats_im_per_iteration(self, model):
        cb = model.project("blocked-cb", 262144, 1024, 1024)
        im = model.project("blocked-im", 262144, 1024, 1024)
        assert cb.single_iteration_seconds < im.single_iteration_seconds

    def test_paper_anchor_blocked_cb_b1024(self, model):
        # Paper: single iteration ~1m40s, projected 7h08m.  Accept a 2x band.
        proj = model.project("blocked-cb", 262144, 1024, 1024)
        assert 50 < proj.single_iteration_seconds < 200
        assert 3.5 * HOUR < proj.projected_total_seconds < 14 * HOUR

    def test_paper_anchor_blocked_im_b2048(self, model):
        # Paper: single iteration 3m44s, projected 7h59m.
        proj = model.project("blocked-im", 262144, 2048, 1024)
        assert 110 < proj.single_iteration_seconds < 450
        assert 4 * HOUR < proj.projected_total_seconds < 16 * HOUR

    def test_paper_anchor_fw2d_iteration(self, model):
        # Paper: ~16-21 s per iteration, essentially independent of b.
        for b in (256, 1024, 4096):
            single = model.project("fw-2d", 262144, b, 1024).single_iteration_seconds
            assert 8 < single < 40

    def test_fw2d_iteration_time_flat_in_block_size(self, model):
        times = [model.project("fw-2d", 262144, b, 1024).single_iteration_seconds
                 for b in (256, 1024, 4096)]
        assert max(times) / min(times) < 1.2

    def test_block_size_sweet_spot(self, model):
        # Figure 3: totals first drop then rise as b grows (n=131072, p=1024).
        totals = {b: model.project("blocked-cb", 131072, b, 1024).projected_total_seconds
                  for b in (512, 1536, 4096)}
        assert totals[1536] < totals[512]
        assert totals[1536] < totals[4096]

    def test_ph_partitioner_never_beats_md(self, model):
        for b in (1024, 2048):
            md = model.project("blocked-im", 131072, b, 1024, partitioner="MD")
            ph = model.project("blocked-im", 131072, b, 1024, partitioner="PH")
            assert ph.projected_total_seconds >= md.projected_total_seconds

    def test_ph_skew_worst_with_one_partition_per_core(self, model):
        b1 = model.imbalance_factor("PH", 131072, 1024, 1024, partitions_per_core=1)
        b2 = model.imbalance_factor("PH", 131072, 1024, 1024, partitions_per_core=2)
        assert b1 > b2
        assert model.imbalance_factor("MD", 131072, 1024, 1024, 2) == pytest.approx(1.0, abs=0.2)


class TestStorageFeasibility:
    def test_blocked_im_infeasible_for_small_blocks_at_figure3_scale(self, model):
        # Figure 3: IM fails for b < 1024 at n = 131072 on the 32-node cluster.
        assert not model.project("blocked-im", 131072, 512, 1024).feasible
        assert not model.project("blocked-im", 131072, 768, 1024).feasible
        assert model.project("blocked-im", 131072, 1024, 1024).feasible

    def test_blocked_im_infeasible_at_largest_problem(self, model):
        # Table 3: IM cannot finish the n = 262144 / p = 1024 configuration.
        best = model.best_block_size("blocked-im", 262144, 1024)
        assert not best.feasible
        assert best.infeasibility_reason is not None

    def test_blocked_cb_always_feasible(self, model):
        for b in (256, 1024, 4096):
            assert model.project("blocked-cb", 262144, b, 1024).feasible

    def test_spill_grows_with_iteration_count(self, model):
        small_blocks = model.spill_per_node_bytes("blocked-im", 131072, 512, 1024)
        large_blocks = model.spill_per_node_bytes("blocked-im", 131072, 2048, 1024)
        assert small_blocks > large_blocks

    def test_cb_has_no_spill_constraint(self, model):
        assert model.spill_per_node_bytes("blocked-cb", 131072, 512, 1024) == 0.0


class TestWeakScaling:
    """Table 3 / Figure 5 shapes."""

    @pytest.fixture(scope="class")
    def rows(self):
        return CostModel().weak_scaling()

    def test_row_structure(self, rows):
        assert [row["p"] for row in rows] == [64, 128, 256, 512, 1024]
        assert [row["n"] for row in rows] == [16384, 32768, 65536, 131072, 262144]

    def test_cb_faster_than_im_everywhere(self, rows):
        for row in rows:
            if row["blocked-im"].feasible:
                assert row["blocked-cb"].projected_total_seconds <= \
                    row["blocked-im"].projected_total_seconds

    def test_im_fails_only_at_largest_scale(self, rows):
        feasibility = [row["blocked-im"].feasible for row in rows]
        assert feasibility == [True, True, True, True, False]

    def test_spark_beats_naive_mpi_at_scale_but_not_small(self, rows):
        # Paper: FW-2D-GbE wins at p=64 but loses to Blocked-CB at p=1024.
        first, last = rows[0], rows[-1]
        assert first["fw-2d-mpi_seconds"] < first["blocked-cb"].projected_total_seconds
        assert last["fw-2d-mpi_seconds"] > last["blocked-cb"].projected_total_seconds

    def test_optimized_dc_always_fastest(self, rows):
        for row in rows:
            assert row["dc-mpi_seconds"] < row["blocked-cb"].projected_total_seconds
            assert row["dc-mpi_seconds"] < row["fw-2d-mpi_seconds"]

    def test_dc_speedup_over_cb_roughly_paper_factor(self, rows):
        # Paper: ~2.8x at p = 1024.
        last = rows[-1]
        ratio = last["blocked-cb"].projected_total_seconds / last["dc-mpi_seconds"]
        assert 1.5 < ratio < 5.0

    def test_gops_per_core_in_paper_range(self, rows):
        last = rows[-1]
        cm = CostModel()
        gops = cm.gops_per_core(last["n"], last["p"],
                                last["blocked-cb"].projected_total_seconds)
        # Paper: ~0.6 Gop/s/core (78% of the 0.762 sequential reference).
        assert 0.3 < gops < 1.2

    def test_gops_per_core_zero_for_invalid_time(self):
        assert CostModel().gops_per_core(1024, 64, 0.0) == 0.0


class TestBestBlockSize:
    def test_best_block_size_returns_feasible_minimum(self, model):
        best = model.best_block_size("blocked-cb", 131072, 1024)
        assert best.feasible
        candidates = [model.project("blocked-cb", 131072, b, 1024).projected_total_seconds
                      for b in (512, 1024, 1536, 2048)]
        assert best.projected_total_seconds <= min(candidates) + 1e-6

    def test_best_block_size_respects_feasibility(self, model):
        best = model.best_block_size("blocked-im", 131072, 1024)
        assert best.feasible
        assert best.block_size >= 1024

    def test_solver_names_constant(self):
        assert set(SOLVER_NAMES) == {"repeated-squaring", "fw-2d", "blocked-im", "blocked-cb"}


class TestStorageAwareBlockSize:
    """best_block_size prices candidates under the requested storage policy.

    Pins the packed-vs-dense crossover at the paper's largest scale: a dense
    boolean Blocked-IM sweep hits the local-storage spill wall at small
    blocks and has to retreat to a mid-sized block, while the packed-bitset
    sweep (8x smaller elements) stays feasible everywhere and is free to take
    the largest candidate.  Before storage/layout were threaded through the
    per-candidate estimates, both sweeps priced identically and this
    difference was invisible.
    """

    N = 262144
    P = 1024

    def _best(self, model, storage):
        return model.best_block_size("blocked-im", self.N, self.P,
                                     algebra="reachability", dtype="bool",
                                     storage=storage)

    def test_dense_small_blocks_hit_spill_wall(self, model):
        dense = model.project("blocked-im", self.N, 512, self.P,
                              algebra="reachability", dtype="bool",
                              storage="dense")
        packed = model.project("blocked-im", self.N, 512, self.P,
                               algebra="reachability", dtype="bool",
                               storage="packed")
        assert not dense.feasible
        assert packed.feasible

    def test_crossover_picks_different_blocks(self, model):
        dense = self._best(model, "dense")
        packed = self._best(model, "packed")
        assert dense.feasible and packed.feasible
        assert packed.block_size > dense.block_size
        assert (packed.projected_total_seconds
                < dense.projected_total_seconds)

    def test_packed_layout_threads_through_projection(self, model):
        packed = self._best(model, "packed")
        assert packed.layout == "triangular"
        full = model.best_block_size("blocked-im", self.N, self.P,
                                     algebra="reachability", dtype="bool",
                                     storage="packed", layout="full")
        # A full grid stores ~2x the blocks of the triangular one (partly
        # offset by its better load balance); the projection must get
        # slower, not silently price the same work.
        assert full.layout == "full"
        assert (full.projected_total_seconds
                > packed.projected_total_seconds)

"""Tests for the benchmark scenario grids and their environment scaling."""

import pytest

from repro.bench import (BENCH_N_ENV, BenchScenario, BenchSuite, available_suites,
                         bench_scale_n, get_suite)
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError


class TestBenchScaleN:
    def test_default_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(BENCH_N_ENV, raising=False)
        assert bench_scale_n(128) == 128

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BENCH_N_ENV, "24")
        assert bench_scale_n(128) == 24

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(BENCH_N_ENV, "large")
        with pytest.raises(ConfigurationError):
            bench_scale_n(128)

    def test_env_must_be_sane(self, monkeypatch):
        monkeypatch.setenv(BENCH_N_ENV, "2")
        with pytest.raises(ConfigurationError):
            bench_scale_n(128)


class TestScenario:
    def test_engine_config_and_request(self):
        scenario = BenchScenario(name="s", solver="cb", n=64, block_size=16,
                                 backend="threads")
        config = scenario.engine_config()
        assert isinstance(config, EngineConfig)
        assert config.backend == "threads"
        request = scenario.request()
        assert request.solver == "blocked-cb"  # alias resolved eagerly
        assert request.tag == "s"

    def test_invalid_grid_point_fails_at_definition(self):
        with pytest.raises(ConfigurationError):
            BenchScenario(name="bad", solver="no-such-solver")
        with pytest.raises(ConfigurationError):
            BenchScenario(name="bad", backend="gpu")
        with pytest.raises(ConfigurationError):
            BenchScenario(name="bad", slowdown_threshold=0.9)
        with pytest.raises(ConfigurationError):
            BenchScenario(name="")

    def test_with_n_clamps_block_size(self):
        scenario = BenchScenario(name="s", n=128, block_size=64)
        small = scenario.with_n(16)
        assert small.n == 16
        assert small.block_size <= 16

    def test_params_round_trip(self):
        scenario = BenchScenario(name="s", n=64)
        params = scenario.params()
        assert params["n"] == 64
        assert params["solver"] == "blocked-cb"


class TestSuites:
    def test_registry_names(self):
        names = available_suites()
        assert "smoke" in names
        assert "backends" in names

    def test_unknown_suite_raises(self):
        with pytest.raises(ConfigurationError):
            get_suite("nope")

    @pytest.mark.parametrize("name", available_suites())
    def test_every_suite_builds_with_unique_scenarios(self, name):
        suite = get_suite(name)
        ids = [s.name for s in suite.scenarios]
        assert len(ids) == len(set(ids))
        assert suite.scenarios  # non-empty

    def test_duplicate_scenario_names_rejected(self):
        scenario = BenchScenario(name="dup", n=32)
        with pytest.raises(ConfigurationError):
            BenchSuite(name="x", description="", scenarios=(scenario, scenario))

    def test_env_scales_suites(self, monkeypatch):
        monkeypatch.setenv(BENCH_N_ENV, "24")
        suite = get_suite("smoke")
        assert all(s.n == 24 for s in suite.scenarios)

    def test_with_n_rescales_whole_suite(self):
        suite = get_suite("backends").with_n(32)
        assert all(s.n == 32 for s in suite.scenarios)

    def test_suite_scenario_lookup(self):
        suite = get_suite("smoke")
        assert suite.scenario("blocked-cb-serial").solver == "blocked-cb"
        with pytest.raises(ConfigurationError):
            suite.scenario("nope")

    def test_smoke_covers_all_backends_and_solvers(self):
        suite = get_suite("smoke")
        backends = {s.backend for s in suite.scenarios}
        solvers = {s.solver for s in suite.scenarios}
        assert backends == {"serial", "threads", "processes"}
        assert solvers == {"blocked-cb", "blocked-im", "repeated-squaring", "fw-2d"}

    def test_smoke_has_paths_twin(self):
        """The paths=True twin mirrors blocked-cb-serial except for witnesses."""
        suite = get_suite("smoke")
        base = suite.scenario("blocked-cb-serial")
        twin = suite.scenario("blocked-cb-paths")
        assert twin.paths and not base.paths
        assert twin.request().paths
        assert twin.params()["paths"] is True
        assert (twin.solver, twin.n, twin.block_size, twin.backend) == \
            (base.solver, base.n, base.block_size, base.backend)

"""Tests for the benchmark runner, the BENCH_*.json schema, and the comparator."""

import copy
import json

import pytest

from repro.bench import (SCHEMA_VERSION, BenchScenario, BenchSuite, build_report,
                         compare_reports, has_regressions, load_report, regressions,
                         run_suite, summarize, write_report)
from repro.common.errors import ValidationError


@pytest.fixture(scope="module")
def micro_suite():
    return BenchSuite(
        name="micro",
        description="two tiny scenarios for unit tests",
        scenarios=(
            BenchScenario(name="cb", solver="blocked-cb", n=24, block_size=8,
                          num_executors=2, cores_per_executor=1),
            BenchScenario(name="im", solver="blocked-im", n=24, block_size=8,
                          num_executors=2, cores_per_executor=1),
        ),
    )


@pytest.fixture(scope="module")
def micro_results(micro_suite):
    return run_suite(micro_suite, verify=True)


@pytest.fixture(scope="module")
def micro_report(micro_suite, micro_results):
    return build_report(micro_suite, micro_results)


class TestRunner:
    def test_results_in_scenario_order(self, micro_suite, micro_results):
        assert [r.scenario.name for r in micro_results] == ["cb", "im"]

    def test_measurements_recorded(self, micro_results):
        for result in micro_results:
            assert result.wall_seconds > 0
            assert result.all_seconds and min(result.all_seconds) == result.wall_seconds
            assert result.phase_seconds            # per-stage timings
            assert "tasks_launched" in result.metrics   # engine metric delta
            assert result.metrics["tasks_launched"] > 0
            assert result.solve["q"] == 3          # 24 / 8
            assert result.verified is True

    def test_repeats_override(self, micro_suite):
        results = run_suite(micro_suite, repeats=2)
        assert all(len(r.all_seconds) == 2 for r in results)
        assert all(r.verified is None for r in results)

    def test_invalid_repeats_rejected(self, micro_suite):
        from repro.common.errors import ConfigurationError
        for bad in (0, -1):
            with pytest.raises(ConfigurationError):
                run_suite(micro_suite, repeats=bad)

    def test_progress_lines(self, micro_suite):
        lines = []
        run_suite(micro_suite, progress=lines.append)
        assert len(lines) == 2 and lines[0].startswith("cb:")


class TestReportSchema:
    def test_report_structure(self, micro_report):
        assert micro_report["schema_version"] == SCHEMA_VERSION
        assert micro_report["suite"] == "micro"
        assert {"sha", "branch", "dirty"} <= set(micro_report["git"])
        host = micro_report["host"]
        assert {"platform", "python", "numpy", "cpu_count", "hostname"} <= set(host)
        entry = micro_report["scenarios"][0]
        assert entry["id"] == "cb"
        assert entry["wall_seconds"] > 0
        assert entry["params"]["solver"] == "blocked-cb"
        assert entry["verified"] is True
        assert entry["slowdown_threshold"] == pytest.approx(1.5)

    def test_spill_keys_stringified_for_json(self, micro_report):
        spills = micro_report["scenarios"][1]["metrics"]["spilled_bytes_per_executor"]
        assert all(isinstance(k, str) for k in spills)

    def test_write_load_round_trip(self, micro_report, tmp_path):
        path = write_report(micro_report, str(tmp_path / "BENCH_micro.json"))
        loaded = load_report(path)
        assert loaded["suite"] == "micro"
        assert json.dumps(loaded, sort_keys=True) == \
            json.dumps(json.loads(json.dumps(micro_report)), sort_keys=True)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_report(str(tmp_path / "nope.json"))

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_report(str(path))

    def test_load_rejects_wrong_schema_version(self, micro_report, tmp_path):
        doctored = copy.deepcopy(micro_report)
        doctored["schema_version"] = SCHEMA_VERSION + 1
        path = write_report(doctored, str(tmp_path / "BENCH_v2.json"))
        with pytest.raises(ValidationError):
            load_report(path)

    def test_load_rejects_malformed_scenarios(self, micro_report, tmp_path):
        doctored = copy.deepcopy(micro_report)
        doctored["scenarios"] = [{"name": "missing-fields"}]
        path = write_report(doctored, str(tmp_path / "BENCH_bad.json"))
        with pytest.raises(ValidationError):
            load_report(path)


class TestCompare:
    def _scaled(self, report, factor):
        doctored = copy.deepcopy(report)
        for entry in doctored["scenarios"]:
            entry["wall_seconds"] *= factor
        return doctored

    def test_identical_reports_pass(self, micro_report):
        rows = compare_reports(micro_report, micro_report, min_seconds=0.0)
        assert not has_regressions(rows)
        assert all(row.status in ("ok", "faster") for row in rows)
        assert "ok:" in summarize(rows)

    def test_slowdown_detected(self, micro_report):
        baseline = self._scaled(micro_report, 0.1)
        rows = compare_reports(baseline, micro_report, min_seconds=0.0)
        assert has_regressions(rows)
        assert {row.scenario_id for row in regressions(rows)} == {"cb", "im"}
        assert "REGRESSION" in summarize(rows)

    def test_speedup_not_a_regression(self, micro_report):
        baseline = self._scaled(micro_report, 10.0)
        rows = compare_reports(baseline, micro_report, min_seconds=0.0)
        assert not has_regressions(rows)
        assert all(row.status == "faster" for row in rows)

    def test_threshold_override(self, micro_report):
        slower = self._scaled(micro_report, 1.7)
        assert has_regressions(compare_reports(micro_report, slower, min_seconds=0.0))
        rows = compare_reports(micro_report, slower, threshold=2.0, min_seconds=0.0)
        assert not has_regressions(rows)

    def test_noise_floor_suppresses_micro_timings(self, micro_report):
        slower = self._scaled(micro_report, 100.0)
        rows = compare_reports(micro_report, slower, min_seconds=1e9)
        assert all(row.status == "below-floor" for row in rows)
        assert not has_regressions(rows)

    def test_missing_and_new_scenarios(self, micro_report):
        current = copy.deepcopy(micro_report)
        removed = current["scenarios"].pop()
        current["scenarios"].append({**removed, "id": "brand-new"})
        rows = {row.scenario_id: row for row in
                compare_reports(micro_report, current, min_seconds=0.0)}
        assert rows[removed["id"]].status == "missing"
        assert rows["brand-new"].status == "new"
        assert not has_regressions(list(rows.values()))

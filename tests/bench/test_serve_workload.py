"""Tests for the serve benchmark workload: scenarios, query streams, metrics."""

import pytest

from repro.bench import BenchScenario, available_suites, get_suite
from repro.bench.runner import scenario_queries, solve_scenario
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.engine import APSPEngine
from repro.serve import STAGES


def serve_scenario(**overrides):
    kwargs = dict(name="s", solver="cb", n=32, block_size=16,
                  workload="serve", queries=64, query_sources=4, cache_rows=3)
    kwargs.update(overrides)
    return BenchScenario(**kwargs)


class TestServeScenarioValidation:
    def test_serve_fields_survive_and_appear_in_params(self):
        params = serve_scenario().params()
        assert params["workload"] == "serve"
        assert params["queries"] == 64
        assert params["query_sources"] == 4
        assert params["cache_rows"] == 3

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="workload"):
            serve_scenario(workload="stream")

    def test_serve_needs_queries(self):
        with pytest.raises(ConfigurationError, match="queries"):
            serve_scenario(queries=0)

    def test_serve_rejects_paths(self):
        with pytest.raises(ConfigurationError, match="lazily"):
            serve_scenario(paths=True)

    def test_negative_query_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            serve_scenario(query_sources=-1)

    def test_cache_rows_must_be_positive_or_none(self):
        with pytest.raises(ConfigurationError):
            serve_scenario(cache_rows=0)
        assert serve_scenario(cache_rows=None).cache_rows is None

    def test_solve_scenarios_ignore_serve_knobs(self):
        scenario = BenchScenario(name="s", solver="cb", n=32, block_size=16)
        assert scenario.workload == "solve"
        assert scenario.queries == 0


class TestWithNScaling:
    def test_serve_knobs_scale_with_n(self):
        scaled = serve_scenario(n=32, queries=128, query_sources=8,
                                cache_rows=4).with_n(64)
        assert scaled.n == 64
        assert scaled.queries == 256
        assert scaled.query_sources == 16
        assert scaled.cache_rows == 8

    def test_scaling_down_never_hits_zero(self):
        scaled = serve_scenario(n=64, queries=4, query_sources=1,
                                cache_rows=1, block_size=16).with_n(8)
        assert scaled.queries >= 1
        assert scaled.query_sources >= 1
        assert scaled.cache_rows >= 1

    def test_solve_scenarios_do_not_scale_serve_knobs(self):
        scenario = BenchScenario(name="s", solver="cb", n=32, block_size=16)
        assert scenario.with_n(64).queries == 0


class TestServeSuite:
    def test_registered(self):
        assert "serve" in available_suites()

    def test_suite_shape(self, monkeypatch):
        monkeypatch.delenv("APSPARK_BENCH_N", raising=False)
        suite = get_suite("serve")
        names = [s.name for s in suite.scenarios]
        assert names == ["serve-warm", "serve-tight-cache", "serve-cold-scan",
                         "serve-reachability"]
        for scenario in suite.scenarios:
            assert scenario.workload == "serve"
            assert scenario.queries == 4 * scenario.n
        tight = suite.scenarios[1]
        assert tight.cache_rows is not None
        assert tight.cache_rows < tight.query_sources   # guarantees churn
        assert suite.scenarios[3].algebra == "reachability"


class TestScenarioQueries:
    def test_deterministic_across_calls(self):
        scenario = serve_scenario()
        assert scenario_queries(scenario, 32) == scenario_queries(scenario, 32)

    def test_seed_changes_the_stream(self):
        a = scenario_queries(serve_scenario(seed=1), 32)
        b = scenario_queries(serve_scenario(seed=2), 32)
        assert a != b

    def test_source_pool_is_respected(self):
        pairs = scenario_queries(serve_scenario(queries=200, query_sources=4), 32)
        assert len(pairs) == 200
        assert len({src for src, _ in pairs}) <= 4
        assert all(0 <= s < 32 and 0 <= d < 32 for s, d in pairs)

    def test_zero_sources_means_the_whole_vertex_set(self):
        pairs = scenario_queries(serve_scenario(queries=500, query_sources=0), 32)
        assert len({src for src, _ in pairs}) > 4


class TestSolveScenarioServe:
    @pytest.fixture(scope="class")
    def engine(self):
        config = EngineConfig(backend="serial", num_executors=2,
                              cores_per_executor=2)
        eng = APSPEngine(config).start()
        yield eng
        eng.stop()

    def test_serve_metrics_folded_into_the_result(self, engine):
        scenario = serve_scenario(n=24, queries=48, query_sources=3,
                                  cache_rows=2, block_size=8)
        result = solve_scenario(scenario, engine)
        assert "serve" in result.phase_seconds
        assert result.metrics["serve_queries"] == 48
        assert result.metrics["serve_cache_max_rows"] == 2
        assert result.metrics["serve_cache_hits"] + \
            result.metrics["serve_cache_misses"] >= 1
        for stage in STAGES:
            assert f"serve_stage_{stage}_s" in result.metrics
            assert f"serve_stage_{stage}_count" in result.metrics
        for key in ("serve_latency_p50_s", "serve_latency_p95_s",
                    "serve_latency_p99_s", "serve_cache_hit_rate",
                    "serve_cache_evictions"):
            assert key in result.metrics
        # stats() sub-dicts must not leak into the flat metrics namespace.
        assert "serve_stage_seconds" not in result.metrics
        assert "serve_algebra" not in result.metrics

    def test_tight_cache_actually_evicts(self, engine):
        scenario = serve_scenario(n=24, queries=96, query_sources=12,
                                  cache_rows=2, block_size=8)
        result = solve_scenario(scenario, engine)
        assert result.metrics["serve_cache_evictions"] > 0
        assert result.metrics["serve_cache_rows"] <= 2

    def test_solve_workload_has_no_serve_metrics(self, engine):
        scenario = BenchScenario(name="s", solver="cb", n=24, block_size=8)
        result = solve_scenario(scenario, engine)
        assert "serve" not in result.phase_seconds
        assert not any(k.startswith("serve_") for k in result.metrics)

"""End-to-end tests of the ``apspark bench`` CLI subcommands."""

import json

import pytest

from repro.bench import BENCH_N_ENV
from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv(BENCH_N_ENV, "24")


class TestBenchList:
    def test_lists_suites(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "backends" in out

    def test_lists_one_suite_grid(self, capsys):
        assert main(["bench", "list", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "blocked-cb-processes" in out

    def test_csv_mode(self, capsys):
        assert main(["bench", "list", "--csv"]) == 0
        assert "suite,scenarios,description" in capsys.readouterr().out


class TestBenchRun:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "run", "--suite", "smoke", "--verify",
                     "--output", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["schema_version"] == 1
        assert report["suite"] == "smoke"
        assert report["host"]["bench_n_env"] == "24"
        assert len(report["scenarios"]) == 7
        ids = {entry["id"] for entry in report["scenarios"]}
        assert "blocked-cb-processes" in ids
        for entry in report["scenarios"]:
            assert entry["wall_seconds"] > 0
            assert entry["phase_seconds"]
            assert entry["metrics"]["tasks_launched"] > 0
            assert entry["verified"] is True
        assert "wrote" in capsys.readouterr().out

    def test_n_override_flag(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_backends.json"
        assert main(["bench", "run", "--suite", "backends", "--n", "16",
                     "--quiet", "--output", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert all(e["params"]["n"] == 16 for e in report["scenarios"])


class TestBenchCompare:
    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
        # One serial-only run (suite rescaled tiny) shared by the compare tests.
        assert main(["bench", "run", "--suite", "blocksize", "--n", "16",
                     "--quiet", "--output", str(path)]) == 0
        return str(path)

    def test_equal_reports_exit_zero(self, report_path, capsys):
        assert main(["bench", "compare", "--baseline", report_path,
                     "--current", report_path]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_csv_output_keeps_summary_off_stdout(self, report_path, capsys):
        assert main(["bench", "compare", "--baseline", report_path,
                     "--current", report_path, "--csv"]) == 0
        captured = capsys.readouterr()
        assert "ok:" not in captured.out       # stdout is pure CSV
        assert "ok:" in captured.err

    def test_regression_exits_nonzero(self, report_path, tmp_path, capsys):
        report = json.loads(open(report_path).read())
        for entry in report["scenarios"]:
            entry["wall_seconds"] /= 10.0
        fast_baseline = tmp_path / "BENCH_fast.json"
        fast_baseline.write_text(json.dumps(report))
        assert main(["bench", "compare", "--baseline", str(fast_baseline),
                     "--current", report_path, "--min-seconds", "0"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_override_relaxes_gate(self, report_path, tmp_path):
        report = json.loads(open(report_path).read())
        for entry in report["scenarios"]:
            entry["wall_seconds"] /= 1.8
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(report))
        args = ["bench", "compare", "--baseline", str(baseline),
                "--current", report_path, "--min-seconds", "0"]
        assert main(args) == 1
        assert main(args + ["--threshold", "3.0"]) == 0

    def test_missing_baseline_errors(self, report_path):
        from repro.common.errors import ValidationError
        with pytest.raises(ValidationError):
            main(["bench", "compare", "--baseline", "/nonexistent.json",
                  "--current", report_path])

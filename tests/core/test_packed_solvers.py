"""Cross-solver / cross-backend equivalence of the packed reachability path.

Acceptance gate of the packed-bitset storage: every distributed solver, on
every scheduler backend, must produce a closure *bit-identical* to the dense
boolean ``semiring_closure`` reference — packing is a storage change, not an
algorithm change.
"""

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.algebra import get_algebra
from repro.linalg.bitset import is_packed
from repro.linalg.kernels import semiring_closure

SOLVERS = ("blocked-cb", "blocked-im", "repeated-squaring", "fw-2d")

N = 72
BLOCK = 20  # ragged: 72 % 20 != 0 and 20 % 64 != 0 exercise edge blocks


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_adjacency(N, seed=1234)


@pytest.fixture(scope="module")
def reference(graph):
    return semiring_closure(graph, "reachability")


@pytest.fixture(scope="module")
def engine():
    with APSPEngine(EngineConfig(backend="serial", num_executors=2,
                                 cores_per_executor=2)) as eng:
        yield eng


@pytest.mark.parametrize("solver", SOLVERS)
def test_packed_closure_bit_identical_per_solver(engine, graph, reference, solver):
    packed = engine.solve(graph, SolveRequest(
        solver=solver, block_size=BLOCK, algebra="reachability", storage="packed"))
    dense = engine.solve(graph, SolveRequest(
        solver=solver, block_size=BLOCK, algebra="reachability", storage="dense"))
    assert packed.storage == "packed" and dense.storage == "dense"
    assert packed.distances.dtype == np.bool_
    assert np.array_equal(packed.distances, reference)
    assert np.array_equal(dense.distances, reference)


@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_packed_closure_across_backends(graph, reference, backend):
    config = EngineConfig(backend=backend, num_executors=2, cores_per_executor=2)
    with APSPEngine(config) as eng:
        result = eng.solve(graph, SolveRequest(
            solver="blocked-cb", block_size=BLOCK, algebra="reachability",
            storage="packed"))
    assert np.array_equal(result.distances, reference)


def test_reachability_defaults_to_packed_storage(engine, graph, reference):
    request = SolveRequest(solver="blocked-cb", algebra="reachability")
    assert request.storage == "packed"  # resolved from the algebra's default
    result = engine.solve(graph, SolveRequest(
        solver="blocked-cb", block_size=BLOCK, algebra="reachability"))
    assert result.storage == "packed"
    assert np.array_equal(result.distances, reference)


def test_plan_carries_packed_records(engine, graph):
    plan = engine.plan(graph, SolveRequest(
        solver="blocked-cb", block_size=BLOCK, algebra="reachability"))
    assert plan.storage == "packed"
    assert plan.describe()["storage"] == "packed"
    records = list(plan.block_records())
    assert records and all(is_packed(block) for _, block in records)
    # ~8x denser than the bool blocks (modulo word padding on ragged blocks).
    packed_bytes = sum(block.nbytes for _, block in records)
    dense_bytes = sum(block.shape[0] * block.shape[1] for _, block in records)
    assert packed_bytes < dense_bytes / 2


def test_validate_result_accepts_packed_run(engine, graph):
    result = engine.solve(graph, SolveRequest(
        solver="blocked-im", block_size=BLOCK, algebra="reachability",
        storage="packed", validate=True))
    assert result.storage == "packed"


def test_packed_storage_rejected_for_numeric_algebras():
    with pytest.raises(ConfigurationError):
        SolveRequest(solver="blocked-cb", algebra="shortest-path", storage="packed")
    with pytest.raises(ConfigurationError):
        get_algebra("widest-path").resolve_storage("packed")
    assert get_algebra("shortest-path").resolve_storage(None) == "dense"
    assert get_algebra("reachability").resolve_storage("auto") == "packed"
    assert get_algebra("reachability").resolve_storage("dense") == "dense"

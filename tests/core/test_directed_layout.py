"""Full-grid (directed) layout: correctness, bit-identity, and fail-fast.

The layout redesign's contract, end to end:

* symmetric inputs solved under ``layout="full"`` are **bit-identical** to
  the triangular result across solver × backend × algebra;
* asymmetric (directed) inputs solve correctly against the dense
  :func:`semiring_closure` reference on every solver and backend, including
  CSR ingestion, ``paths=True`` route folds and the serving layer;
* ``layout="auto"`` never picks triangular for an asymmetric matrix
  (property-tested);
* full-grid mirror lookups fail loudly instead of answering with transposed
  (wrong) data.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import EngineConfig
from repro.common.errors import ValidationError
from repro.core.engine import APSPEngine
from repro.core.registry import solver_catalog
from repro.core.request import SolveRequest
from repro.graph.generators import (directed_erdos_renyi_adjacency,
                                    erdos_renyi_adjacency)
from repro.linalg.algebra import get_algebra
from repro.linalg.blocks import BlockedMatrix, matrix_to_blocks
from repro.linalg.kernels import semiring_closure

SOLVERS = tuple(info.name for info in solver_catalog())
N = 24


def directed_graph(n: int = N, seed: int = 7) -> np.ndarray:
    adj = directed_erdos_renyi_adjacency(n, seed=seed)
    assert not np.array_equal(adj, adj.T), "test input must be asymmetric"
    return adj


def directed_csr(n: int = N, seed: int = 7):
    """A directed graph as canonical CSR plus its dense expansion."""
    import scipy.sparse as sp
    dense = directed_graph(n, seed)
    mask = np.isfinite(dense) & ~np.eye(n, dtype=bool)
    rows, cols = np.nonzero(mask)
    csr = sp.csr_matrix((dense[rows, cols], (rows, cols)), shape=(n, n))
    return csr, dense


@pytest.fixture(scope="module")
def engine():
    with APSPEngine(EngineConfig(num_executors=2, cores_per_executor=2)) as eng:
        yield eng


class TestSymmetricBitIdentity:
    """layout="full" on a symmetric input reproduces triangular bit-for-bit."""

    @pytest.mark.parametrize("algebra", ("shortest-path", "widest-path",
                                         "most-reliable", "reachability"))
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_full_matches_triangular_per_solver_and_algebra(
            self, engine, solver, algebra):
        adj = (erdos_renyi_adjacency(N, seed=5, weight_low=0.1, weight_high=0.9)
               if algebra == "most-reliable"
               else erdos_renyi_adjacency(N, seed=5))
        tri = engine.solve(adj, SolveRequest(solver=solver, block_size=8,
                                             algebra=algebra,
                                             layout="triangular"))
        full = engine.solve(adj, SolveRequest(solver=solver, block_size=8,
                                              algebra=algebra, layout="full"))
        assert tri.layout == "triangular" and full.layout == "full"
        assert np.array_equal(tri.distances, full.distances)

    @pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
    def test_full_matches_triangular_per_backend(self, backend):
        adj = erdos_renyi_adjacency(N, seed=5)
        config = EngineConfig(backend=backend, num_executors=2,
                              cores_per_executor=2)
        with APSPEngine(config) as eng:
            tri = eng.solve(adj, SolveRequest(solver="blocked-cb", block_size=8,
                                              layout="triangular"))
            full = eng.solve(adj, SolveRequest(solver="blocked-cb", block_size=8,
                                               layout="full"))
        assert np.array_equal(tri.distances, full.distances)

    def test_auto_on_symmetric_input_stays_triangular(self, engine):
        adj = erdos_renyi_adjacency(N, seed=5)
        result = engine.solve(adj, SolveRequest(solver="blocked-cb",
                                                block_size=8))
        assert result.layout == "triangular"


class TestDirectedCorrectness:
    """Asymmetric inputs against the dense sequential reference closure."""

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_directed_closure_per_solver(self, engine, solver):
        adj = directed_graph()
        reference = semiring_closure(adj, "shortest-path")
        result = engine.solve(adj, SolveRequest(solver=solver, block_size=8,
                                                directed=True, validate=True))
        assert result.layout == "full" and result.directed
        assert np.allclose(result.distances, reference)

    @pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_directed_closure_per_backend(self, backend, solver):
        adj = directed_graph()
        reference = semiring_closure(adj, "shortest-path")
        config = EngineConfig(backend=backend, num_executors=2,
                              cores_per_executor=2)
        with APSPEngine(config) as eng:
            result = eng.solve(adj, SolveRequest(solver=solver, block_size=8,
                                                 directed=True))
        assert np.allclose(result.distances, reference)

    @pytest.mark.parametrize("algebra", ("widest-path", "reachability"))
    def test_directed_closure_other_algebras(self, engine, algebra):
        adj = directed_graph()
        reference = semiring_closure(adj, algebra)
        result = engine.solve(adj, SolveRequest(solver="blocked-cb",
                                                block_size=8, algebra=algebra,
                                                directed=True, validate=True))
        assert get_algebra(algebra).allclose(result.distances, reference)

    def test_auto_layout_detects_asymmetry(self, engine):
        adj = directed_graph()
        result = engine.solve(adj, SolveRequest(solver="blocked-cb",
                                                block_size=8))
        assert result.layout == "full"
        assert np.allclose(result.distances,
                           semiring_closure(adj, "shortest-path"))

    def test_directed_csr_ingestion(self, engine):
        csr, dense = directed_csr()
        reference = semiring_closure(dense, "shortest-path")
        result = engine.solve(csr, SolveRequest(solver="blocked-cb",
                                                block_size=8, directed=True))
        assert np.allclose(result.distances, reference)

    def test_longest_path_dag_on_distributed_solvers(self, engine):
        dag = directed_erdos_renyi_adjacency(N, seed=11, acyclic=True)
        reference = semiring_closure(dag, "longest-path")
        for solver in SOLVERS:
            result = engine.solve(dag, SolveRequest(solver=solver, block_size=8,
                                                    algebra="longest-path"))
            assert result.layout == "full"
            assert np.allclose(result.distances, reference)


class TestDirectedPaths:
    """paths=True on the full grid: single-plane witness, route folds."""

    def _fold(self, adj, path):
        return sum(adj[u, v] for u, v in zip(path, path[1:]))

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_route_folds_match_distances(self, engine, solver):
        adj = directed_graph()
        result = engine.solve(adj, SolveRequest(solver=solver, block_size=8,
                                                directed=True, paths=True))
        assert result.parents is not None
        checked = 0
        for src in range(0, N, 5):
            for dst in range(N):
                if src == dst or not np.isfinite(result.distances[src, dst]):
                    continue
                path = result.reconstruct_path(src, dst)
                assert path[0] == src and path[-1] == dst
                assert np.isclose(self._fold(adj, path),
                                  result.distances[src, dst])
                checked += 1
        assert checked > 0

    def test_directed_csr_paths(self, engine):
        csr, dense = directed_csr()
        result = engine.solve(csr, SolveRequest(solver="blocked-cb",
                                                block_size=8, directed=True,
                                                paths=True))
        reference = semiring_closure(dense, "shortest-path")
        assert np.allclose(result.distances, reference)
        src, dst = next(
            (s, d) for s in range(N) for d in range(N)
            if s != d and np.isfinite(result.distances[s, d]))
        path = result.reconstruct_path(src, dst)
        assert np.isclose(self._fold(dense, path), result.distances[src, dst])

    def test_directed_serve_route_end_to_end(self, engine):
        from repro import serve as serve_mod
        adj = directed_graph()
        service = engine.serve(adj, SolveRequest(solver="blocked-cb",
                                                 block_size=8, directed=True))
        reference = semiring_closure(adj, "shortest-path")
        for src in range(0, N, 3):
            for dst in range(0, N, 3):
                answer = service.route(src, dst)
                assert np.isclose(answer.distance, reference[src, dst]) \
                    or (not np.isfinite(answer.distance)
                        and not np.isfinite(reference[src, dst]))
                _, verdict = serve_mod.format_route(
                    src, dst, answer.path, answer.distance, service.adjacency,
                    service.algebra)
                assert verdict in (serve_mod.ROUTE_OK,
                                   serve_mod.ROUTE_UNREACHABLE)


class TestAutoLayoutProperty:
    """layout="auto" must never pick triangular for an asymmetric matrix."""

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=4, max_value=20),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_auto_never_triangular_for_asymmetric(self, n, seed):
        adj = directed_erdos_renyi_adjacency(n, seed=seed)
        if np.array_equal(adj, adj.T):  # vanishingly rare at these sizes
            adj[0, 1] = 1.0
            adj[1, 0] = np.inf
        with APSPEngine(EngineConfig(num_executors=1,
                                     cores_per_executor=1)) as eng:
            plan = eng.plan(adj, SolveRequest(solver="blocked-cb",
                                              block_size=max(4, n // 2)))
        assert plan.layout == "full"


class TestFullGridBlockedMatrix:
    """No mirror-transpose lookups exist under the full-grid layout."""

    def test_missing_mirror_block_raises(self):
        adj = directed_graph(8, seed=3)
        blocks = dict(matrix_to_blocks(adj, 4, upper_only=False))
        del blocks[(1, 0)]
        bm = BlockedMatrix(n=8, block_size=4, blocks=blocks, symmetric=False)
        with pytest.raises(ValidationError, match="mirror"):
            bm.get_block(1, 0)
        # The stored orientation still answers.
        assert np.array_equal(bm.get_block(0, 1), adj[0:4, 4:8])

    def test_full_layout_stores_all_blocks(self):
        adj = directed_graph(16, seed=3)
        bm = BlockedMatrix.from_matrix(adj, 4, symmetric=False)
        assert len(bm.blocks) == bm.q * bm.q
        for i in range(bm.q):
            for j in range(bm.q):
                assert np.array_equal(
                    bm.get_block(i, j),
                    adj[i * 4:(i + 1) * 4, j * 4:(j + 1) * 4])


class TestResultMetadata:
    def test_summary_mentions_layout_and_direction(self, engine):
        adj = directed_graph()
        result = engine.solve(adj, SolveRequest(solver="blocked-cb",
                                                block_size=8, directed=True))
        assert "full-grid" in result.summary()
        assert "directed" in result.summary()

    def test_describe_carries_layout_and_directed(self):
        request = SolveRequest(solver="blocked-cb", directed=True)
        assert "directed" in request.describe()
        assert request.layout == "full"

"""Cross-solver / cross-backend equivalence per path algebra.

Every distributed solver that declares support for an algebra must agree
with the dense sequential reference closure; the algebra must round-trip
through the engine, the CLI and the bench runner; and unsupported
combinations must fail fast at request construction.
"""

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.api import solve_apsp
from repro.core.engine import APSPEngine
from repro.core.registry import solver_catalog, solver_supports_algebra
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.algebra import available_algebras, get_algebra
from repro.linalg.kernels import semiring_closure
from repro.sequential.floyd_warshall import floyd_warshall_blocked, floyd_warshall_numpy
from repro.sequential.repeated_squaring import repeated_squaring_apsp

#: Absorptive algebras every distributed solver supports on symmetric inputs
#: (longest-path is also distributed now, but DAG-only — full layout — so it
#: is exercised separately on acyclic graphs).
DISTRIBUTED_ALGEBRAS = ("shortest-path", "widest-path", "most-reliable",
                        "reachability")
SOLVERS = tuple(info.name for info in solver_catalog())

N = 24


def graph_for(algebra_name: str, n: int = N, seed: int = 33) -> np.ndarray:
    if get_algebra(algebra_name).name == "most-reliable":
        return erdos_renyi_adjacency(n, seed=seed, weight_low=0.1, weight_high=0.9)
    return erdos_renyi_adjacency(n, seed=seed)


@pytest.fixture(scope="module")
def engine():
    with APSPEngine(EngineConfig(num_executors=2, cores_per_executor=2)) as eng:
        yield eng


class TestCrossSolverEquivalence:
    @pytest.mark.parametrize("algebra", DISTRIBUTED_ALGEBRAS)
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_solver_matches_dense_reference(self, engine, solver, algebra):
        adj = graph_for(algebra)
        reference = semiring_closure(adj, algebra)
        result = engine.solve(adj, SolveRequest(solver=solver, block_size=8,
                                                algebra=algebra, validate=True))
        assert result.algebra == algebra
        assert get_algebra(algebra).allclose(result.distances, reference)

    @pytest.mark.parametrize("algebra", ("shortest-path", "widest-path"))
    def test_float32_matches_float64_within_tolerance(self, engine, algebra):
        adj = graph_for(algebra)
        ref64 = semiring_closure(adj, algebra)
        result = engine.solve(adj, SolveRequest(solver="blocked-cb", block_size=8,
                                                algebra=algebra, dtype="float32"))
        assert result.distances.dtype == np.float32
        assert result.dtype == "float32"
        assert np.allclose(result.distances, ref64, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
    @pytest.mark.parametrize("algebra", ("widest-path", "reachability"))
    def test_cross_backend_equivalence(self, backend, algebra):
        adj = graph_for(algebra)
        reference = semiring_closure(adj, algebra)
        config = EngineConfig(backend=backend, num_executors=2, cores_per_executor=2)
        with APSPEngine(config) as eng:
            result = eng.solve(adj, SolveRequest(solver="blocked-cb", block_size=8,
                                                 algebra=algebra))
        assert get_algebra(algebra).allclose(result.distances, reference)


class TestSequentialEquivalence:
    @pytest.mark.parametrize("algebra", DISTRIBUTED_ALGEBRAS)
    def test_sequential_solvers_agree(self, algebra):
        adj = graph_for(algebra)
        reference = semiring_closure(adj, algebra)
        resolved = get_algebra(algebra)
        assert resolved.allclose(floyd_warshall_numpy(adj, algebra=algebra), reference)
        assert resolved.allclose(
            floyd_warshall_blocked(adj, 8, algebra=algebra), reference)
        assert resolved.allclose(
            repeated_squaring_apsp(adj, algebra=algebra), reference)

    def test_longest_path_on_dag(self):
        # Weighted DAG: longest path must pick the heavier two-hop route.
        n = 6
        dag = np.full((n, n), np.inf)
        for i in range(n - 1):
            dag[i, i + 1] = 1.0
        dag[0, 2] = 1.5  # shortcut lighter than 0->1->2 (weight 2)
        closure = floyd_warshall_numpy(dag, algebra="longest-path")
        assert closure[0, 2] == 2.0
        assert closure[0, n - 1] == float(n - 1)
        assert repeated_squaring_apsp(dag, algebra="longest-path")[0, 2] == 2.0

    def test_longest_path_rejects_cyclic_input(self):
        from repro.common.errors import ValidationError
        adj = graph_for("shortest-path")  # symmetric => cyclic
        with pytest.raises(ValidationError):
            floyd_warshall_numpy(adj, algebra="longest-path")


class TestFailFast:
    def test_distributed_solvers_run_longest_path_in_full_layout(self):
        # The full-grid layout unlocks the DAG-only algebra on every solver:
        # the request resolves to layout="full" (the algebra's only layout)
        # and an explicit triangular request fails fast.
        for solver in SOLVERS:
            assert solver_supports_algebra(solver, "longest-path")
            request = SolveRequest(solver=solver, algebra="longest-path")
            assert request.layout == "full"
            with pytest.raises(ConfigurationError):
                SolveRequest(solver=solver, algebra="longest-path",
                             layout="triangular")

    def test_triangular_layout_rejected_for_directed_requests(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(directed=True, layout="triangular")

    def test_unknown_algebra_rejected_at_request_time(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(algebra="no-such-algebra")

    def test_unsupported_dtype_rejected_at_request_time(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(algebra="reachability", dtype="float64")

    def test_algebra_alias_canonicalised(self):
        req = SolveRequest(algebra="bottleneck")
        assert req.algebra == "widest-path"
        assert req.dtype == "float64"

    def test_registry_metadata_exposes_algebras(self):
        for info in solver_catalog():
            assert set(info.algebras) == set(DISTRIBUTED_ALGEBRAS) | {"longest-path"}
            assert "algebras" in info.as_dict()
            assert "layouts" in info.as_dict()
            assert set(info.layouts) == {"triangular", "full"}


class TestRoundTrips:
    def test_engine_round_trip(self, engine):
        adj = graph_for("widest-path")
        request = SolveRequest(solver="blocked-cb", block_size=8,
                               algebra="widest-path")
        job = engine.submit(adj, request)
        result = job.result()
        assert result.algebra == "widest-path"
        assert "widest-path" in result.summary()
        assert "algebra=widest-path" in request.describe()

    def test_solve_apsp_round_trip(self):
        adj = graph_for("reachability")
        result = solve_apsp(adj, solver="blocked-cb", block_size=8,
                            algebra="reachability")
        assert result.distances.dtype == np.bool_
        assert get_algebra("reachability").allclose(
            result.distances, semiring_closure(adj, "reachability"))

    def test_plan_describes_algebra(self, engine):
        adj = graph_for("widest-path")
        plan = engine.plan(adj, SolveRequest(solver="blocked-cb", block_size=8,
                                             algebra="widest-path", dtype="float32"))
        described = plan.describe()
        assert described["algebra"] == "widest-path"
        assert described["dtype"] == "float32"

    def test_cli_round_trip(self, capsys):
        from repro.experiments.cli import main
        code = main(["solve", "--n", "24", "--algebra", "widest-path",
                     "--block-size", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "widest-path" in out and "OK" in out

    def test_cli_longest_path_solves_a_generated_dag(self, capsys):
        # The generated longest-path input is a DAG, and the full layout
        # makes the algebra run on the distributed solvers end-to-end.
        from repro.experiments.cli import main
        code = main(["solve", "--n", "16", "--algebra", "longest-path",
                     "--block-size", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "longest-path" in out and "OK" in out

    def test_cli_unsupported_layout_exits_cleanly(self, capsys):
        # longest-path is full-layout-only: asking for triangular must fail
        # with a message at request construction, not a traceback.
        from repro.experiments.cli import main
        code = main(["solve", "--n", "8", "--algebra", "longest-path",
                     "--layout", "triangular"])
        captured = capsys.readouterr()
        assert code == 2
        assert "longest-path" in captured.err

    def test_cli_round_trip_float32(self, capsys):
        from repro.experiments.cli import main
        code = main(["solve", "--n", "24", "--dtype", "float32",
                     "--block-size", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "float32" in out and "OK" in out

    def test_bench_runner_round_trip(self):
        from repro.bench import BenchScenario, BenchSuite, run_suite
        suite = BenchSuite(
            name="algebra-roundtrip",
            description="widest-path + reachability through the bench runner",
            scenarios=(
                BenchScenario(name="widest", solver="blocked-cb", n=N,
                              block_size=8, algebra="widest-path",
                              num_executors=2, cores_per_executor=2),
                BenchScenario(name="reach-bool", solver="blocked-cb", n=N,
                              block_size=8, algebra="reachability", dtype="bool",
                              num_executors=2, cores_per_executor=2),
                BenchScenario(name="minplus-f32", solver="blocked-cb", n=N,
                              block_size=8, dtype="float32",
                              num_executors=2, cores_per_executor=2),
            ),
        )
        results = run_suite(suite, verify=True)
        assert [r.scenario.name for r in results] == ["widest", "reach-bool",
                                                      "minplus-f32"]
        assert all(r.verified for r in results)
        for r in results:
            assert r.as_dict()["params"]["algebra"] == r.scenario.algebra

    def test_algebras_suite_registered(self):
        from repro.bench import available_suites, get_suite
        assert "algebras" in available_suites()
        suite = get_suite("algebras")
        names = {s.name for s in suite.scenarios}
        assert {"shortest-path-f64", "shortest-path-f32",
                "reachability-bool"} <= names

"""Tests for the Table 1 functional building blocks."""

import numpy as np
import pytest

from repro.core import building_blocks as bb
from repro.graph.generators import erdos_renyi_adjacency
from repro.linalg.blocks import matrix_to_blocks
from repro.linalg.kernels import floyd_warshall
from repro.linalg.semiring import minplus_product


@pytest.fixture(scope="module")
def blocks16():
    """Upper-triangular blocks of a 16-vertex graph with b=4 (q=4)."""
    adj = erdos_renyi_adjacency(16, seed=33)
    return adj, dict(matrix_to_blocks(adj, 4))


class TestPredicates:
    def test_in_column(self):
        assert bb.in_column(2)(((1, 2), None))
        assert not bb.in_column(2)(((2, 1), None))

    def test_on_diagonal(self):
        assert bb.on_diagonal(3)(((3, 3), None))
        assert not bb.on_diagonal(3)(((3, 4), None))
        assert not bb.on_diagonal(3)(((2, 2), None))

    def test_in_block_row_or_column(self):
        pred = bb.in_block_row_or_column(1)
        assert pred(((1, 3), None))
        assert pred(((0, 1), None))
        assert pred(((1, 1), None))
        assert not pred(((0, 2), None))

    def test_not_in_block_row_or_column(self):
        pred = bb.not_in_block_row_or_column(1)
        assert pred(((0, 2), None))
        assert not pred(((1, 2), None))

    def test_off_diagonal_in_row_or_column(self):
        pred = bb.off_diagonal_in_row_or_column(1)
        assert pred(((0, 1), None))
        assert pred(((1, 2), None))
        assert not pred(((1, 1), None))
        assert not pred(((0, 2), None))


class TestExtractColumn:
    def test_pieces_cover_full_column(self, blocks16):
        adj, blocks = blocks16
        k, pivot_block, k_local = 6, 1, 2           # global column 6 with b=4
        pieces = []
        for record in blocks.items():
            if bb.in_block_row_or_column(pivot_block)(record):
                pieces.extend(bb.extract_col(pivot_block, k_local)(record))
        column = bb.assemble_column(pieces, 16, 4)
        assert np.array_equal(column, adj[:, k])

    def test_diagonal_block_emits_single_piece(self, blocks16):
        _, blocks = blocks16
        record = ((1, 1), blocks[(1, 1)])
        pieces = bb.extract_col(1, 0)(record)
        assert len(pieces) == 1
        assert pieces[0][0] == 1

    def test_row_block_is_transposed(self, blocks16):
        adj, blocks = blocks16
        record = ((1, 3), blocks[(1, 3)])   # stored as row-block of 1, column 3
        pieces = bb.extract_col(1, 2)(record)
        # Represents A[12:16, 6] = adj[12:16, 6]
        found = dict(pieces)
        assert 3 in found
        assert np.array_equal(found[3], adj[12:16, 6])


class TestFwUpdateWithColumn:
    def test_matches_rank1_update(self, blocks16):
        adj, blocks = blocks16
        column = adj[:, 5].copy()
        update = bb.fw_update_with_column(column, 4)
        key, updated = update(((0, 2), blocks[(0, 2)]))
        expected = np.minimum(blocks[(0, 2)], column[0:4, None] + column[8:12][None, :])
        assert key == (0, 2)
        assert np.allclose(updated, expected)


class TestBlockKernels:
    def test_floyd_warshall_block(self, blocks16):
        _, blocks = blocks16
        key, out = bb.floyd_warshall_block(((1, 1), blocks[(1, 1)]))
        assert key == (1, 1)
        assert np.allclose(out, floyd_warshall(blocks[(1, 1)]))

    def test_floyd_warshall_block_does_not_mutate_input(self, blocks16):
        _, blocks = blocks16
        original = blocks[(0, 0)].copy()
        bb.floyd_warshall_block(((0, 0), blocks[(0, 0)]))
        assert np.array_equal(blocks[(0, 0)], original)

    def test_mat_min_and_prod(self, blocks16):
        _, blocks = blocks16
        a = blocks[(0, 1)]
        other = np.full_like(a, 2.0)
        assert np.allclose(bb.mat_min(((0, 1), a), other)[1], np.minimum(a, 2.0))
        assert np.allclose(bb.mat_prod(((0, 1), a), other)[1], minplus_product(a, other))

    def test_min_plus_orientation(self, blocks16):
        _, blocks = blocks16
        a, d = blocks[(0, 1)], bb.floyd_warshall_block(((1, 1), blocks[(1, 1)]))[1]
        right = bb.min_plus(((0, 1), a), d)[1]
        left = bb.min_plus(((0, 1), a), d, other_on_left=True)[1]
        assert np.allclose(right, np.minimum(a, minplus_product(a, d)))
        assert np.allclose(left, np.minimum(a, minplus_product(d, a)))


class TestCopyDiag:
    def test_copy_count_and_keys(self):
        q, pivot = 5, 2
        diag = np.zeros((3, 3))
        copies = bb.copy_diag(q, pivot)(((pivot, pivot), diag))
        assert len(copies) == q - 1
        keys = {key for key, _ in copies}
        assert keys == {(0, 2), (1, 2), (2, 3), (2, 4)}
        assert all(tag == bb.TAG_DIAG for _, (tag, _) in copies)


class TestCopyCol:
    def test_column_block_targets(self):
        q, pivot = 4, 2
        block = np.arange(4.0).reshape(2, 2)
        # Stored block (0, 2): column block A_{0,pivot}.
        copies = bb.copy_col(q, pivot)(((0, 2), block))
        tagged = {(key, tag) for key, (tag, _) in copies}
        # Left operand for block-row 0 targets, right operand for block-col 0 targets.
        assert ((0, 1), bb.TAG_LEFT) in tagged
        assert ((0, 3), bb.TAG_LEFT) in tagged
        assert ((0, 0), bb.TAG_LEFT) in tagged and ((0, 0), bb.TAG_RIGHT) in tagged
        # Never targets the pivot row/column.
        assert all(pivot not in key for key, _ in tagged)

    def test_row_block_supplies_transposes(self):
        q, pivot = 4, 1
        block = np.array([[1.0, 2.0], [3.0, 4.0]])
        # Stored block (1, 3): row block A_{pivot,3}.
        copies = bb.copy_col(q, pivot)(((1, 3), block))
        by_key_tag = {(key, tag): arr for key, (tag, arr) in copies}
        # For target (0, 3) it is the right operand A_{pivot,3} itself.
        assert np.array_equal(by_key_tag[((0, 3), bb.TAG_RIGHT)], block)
        # For target (3, 3) it is also the left operand, transposed (A_{3,pivot}).
        assert np.array_equal(by_key_tag[((3, 3), bb.TAG_LEFT)], block.T)

    def test_diagonal_record_produces_nothing(self):
        copies = bb.copy_col(4, 2)(((2, 2), np.zeros((2, 2))))
        assert copies == []


class TestListHelpers:
    def test_create_append_merge(self):
        acc = bb.create_list("a")
        acc = bb.list_append(acc, "b")
        assert acc == ["a", "b"]
        assert bb.merge_lists(["a"], ["b", "c"]) == ["a", "b", "c"]


class TestUnpackPhases:
    def test_phase2_column_block(self):
        base = np.full((2, 2), 5.0)
        diag = np.zeros((2, 2))
        key, out = bb.unpack_phase2(3)(((1, 3), [(bb.TAG_BASE, base), (bb.TAG_DIAG, diag)]))
        expected = np.minimum(base, minplus_product(base, diag))
        assert np.allclose(out, expected)

    def test_phase2_row_block_uses_left_product(self):
        base = np.array([[5.0, 7.0], [9.0, 11.0]])
        diag = np.array([[0.0, 1.0], [1.0, 0.0]])
        _, out = bb.unpack_phase2(0)(((0, 2), [(bb.TAG_DIAG, diag), (bb.TAG_BASE, base)]))
        expected = np.minimum(base, minplus_product(diag, base))
        assert np.allclose(out, expected)

    def test_phase2_missing_base_raises(self):
        with pytest.raises(ValueError):
            bb.unpack_phase2(0)(((0, 1), [(bb.TAG_DIAG, np.zeros((2, 2)))]))

    def test_phase2_missing_diag_is_noop(self):
        base = np.ones((2, 2))
        _, out = bb.unpack_phase2(0)(((0, 1), [(bb.TAG_BASE, base)]))
        assert np.array_equal(out, base)

    def test_phase3_applies_left_right_product(self):
        base = np.full((2, 2), 10.0)
        left = np.array([[1.0, 2.0], [3.0, 4.0]])
        right = np.array([[0.5, 1.5], [2.5, 3.5]])
        _, out = bb.unpack_phase3(1)(((0, 2), [
            (bb.TAG_BASE, base), (bb.TAG_LEFT, left), (bb.TAG_RIGHT, right)]))
        expected = np.minimum(base, minplus_product(left, right))
        assert np.allclose(out, expected)

    def test_phase3_missing_operand_is_noop(self):
        base = np.ones((2, 2))
        _, out = bb.unpack_phase3(1)(((0, 2), [(bb.TAG_BASE, base),
                                               (bb.TAG_LEFT, np.zeros((2, 2)))]))
        assert np.array_equal(out, base)


class TestMatprodColumnContributions:
    def test_square_via_contributions_matches_dense(self):
        """Summing (min-reducing) all emitted contributions reproduces A ⊗ A."""
        adj = erdos_renyi_adjacency(12, seed=44)
        blocks = dict(matrix_to_blocks(adj, 4))
        q = 3
        dense_square = np.full_like(adj, np.inf)
        expected = np.minimum(adj, minplus_product(adj, adj))
        for target in range(q):
            # Orient the column blocks the way the solver does.
            column = {}
            for (i, j), block in blocks.items():
                if j == target:
                    column[i] = block
                if i == target and j != target:
                    column[j] = block.T
            emit = bb.matprod_column_contributions(target, column)
            partial: dict = {}
            for record in blocks.items():
                for key, value in emit(record):
                    partial[key] = np.minimum(partial[key], value) if key in partial else value
            for (i, j), value in partial.items():
                dense_square[i * 4:(i + 1) * 4, j * 4:(j + 1) * 4] = value
        # Fill lower triangle by symmetry and compare (diagonal of A is 0 so
        # A ⊗ A <= A and the min with A is already included).
        for i in range(3):
            for j in range(3):
                if i > j:
                    dense_square[i * 4:(i + 1) * 4, j * 4:(j + 1) * 4] = \
                        dense_square[j * 4:(j + 1) * 4, i * 4:(i + 1) * 4].T
        assert np.allclose(dense_square, expected)

    def test_callable_fetch(self):
        adj = erdos_renyi_adjacency(8, seed=45)
        blocks = dict(matrix_to_blocks(adj, 4))
        column = {0: blocks[(0, 1)], 1: blocks[(1, 1)]}
        emit = bb.matprod_column_contributions(1, lambda k: column[k])
        out = emit(((0, 1), blocks[(0, 1)]))
        assert len(out) == 2  # both roles contribute to column 1


class TestPackedBroadcastColumn:
    """Boolean columns assemble packed; float columns stay dense."""

    def test_bool_column_assembles_to_packed_vector(self):
        from repro.linalg.bitset import is_packed_vector
        pieces = [(0, np.array([True, False, True, False])),
                  (1, np.array([False, True, False, True]))]
        column = bb.assemble_column(pieces, 8, 4, "reachability")
        assert is_packed_vector(column)
        assert np.array_equal(
            column[0:8],
            [True, False, True, False, False, True, False, True])
        assert column.nbytes == 8                      # one uint64 word

    def test_float_column_stays_dense(self):
        column = bb.assemble_column([(0, np.array([1.0, 2.0]))], 8, 4)
        assert isinstance(column, np.ndarray) and column.dtype == np.float64

    def test_update_callable_slices_packed_column(self):
        from repro.linalg.bitset import PackedBlock
        rng = np.random.default_rng(8)
        dense = rng.random((8, 8)) < 0.4
        np.fill_diagonal(dense, True)
        pieces = [(0, dense[0:4, 5].copy()), (1, dense[4:8, 5].copy())]
        column = bb.assemble_column(pieces, 8, 4, "reachability")
        update = bb.fw_update_with_column(column, 4, "reachability")
        _, updated = update(((0, 1), PackedBlock.from_dense(dense[0:4, 4:8])))
        expected = dense[0:4, 4:8] | (dense[0:4, 5][:, None] & dense[4:8, 5][None, :])
        assert np.array_equal(updated.to_dense(), expected)

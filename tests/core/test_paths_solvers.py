"""End-to-end path reconstruction: algebra × solver × backend property checks.

The central property (the PR's acceptance bar): for every witnessed solve,
reconstructing any reachable pair's route yields a real edge path whose
⊗-fold equals the reported closure entry exactly (up to dtype rounding).
"""

import numpy as np
import pytest

from repro import APSPEngine, SolveRequest
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError, SolverError
from repro.bench.runner import graph_for_algebra, reference_closure
from repro.core.api import solve_apsp
from repro.linalg import witness as W
from repro.linalg.algebra import get_algebra
from repro.sequential.floyd_warshall import (floyd_warshall_blocked,
                                             floyd_warshall_numpy)
from repro.sequential.repeated_squaring import repeated_squaring_apsp

ALGEBRAS = ("shortest-path", "widest-path", "most-reliable", "reachability")
SOLVERS = ("blocked-cb", "blocked-im", "fw-2d", "repeated-squaring")

N = 28
SEED = 17


def check_all_pairs(algebra, adjacency, distances, parents, dtype=None):
    """The fold-equals-closure property over every ordered pair."""
    alg = get_algebra(algebra)
    prepared = alg.prepare_adjacency(adjacency, dtype=dtype)
    reference = reference_closure(adjacency, algebra, dtype=dtype)
    rtol, atol = (1e-4, 1e-6) if distances.dtype.itemsize < 8 else (1e-9, 1e-12)
    assert alg.allclose(distances, reference, rtol=max(rtol, 1e-5))
    n = distances.shape[0]
    zero = alg.zero_like(distances.dtype)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if distances[i, j] == zero:
                assert parents[i, j] == W.NO_VERTEX
                continue
            path = W.reconstruct_path(parents, i, j)
            assert path[0] == i and path[-1] == j
            fold = W.path_weight(prepared, path, alg)
            if distances.dtype == np.bool_:
                assert bool(fold) and bool(distances[i, j])
            else:
                assert np.isclose(float(fold), float(distances[i, j]),
                                  rtol=rtol, atol=atol)


@pytest.mark.parametrize("algebra", ALGEBRAS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_distributed_paths_fold_to_closure(algebra, solver):
    adjacency = graph_for_algebra(N, SEED, algebra)
    with APSPEngine() as engine:
        result = engine.solve(adjacency, SolveRequest(
            solver=solver, block_size=8, algebra=algebra, paths=True))
    assert result.has_paths
    assert result.storage == "dense"
    assert "path_rows_repaired" in result.metrics
    check_all_pairs(algebra, adjacency, result.distances, result.parents)


@pytest.mark.parametrize("backend", ("threads", "processes"))
@pytest.mark.parametrize("algebra", ("shortest-path", "widest-path",
                                     "reachability"))
def test_paths_across_backends(backend, algebra):
    """Witness blocks survive the thread pool and the process-pool IPC."""
    adjacency = graph_for_algebra(N, SEED + 1, algebra)
    config = EngineConfig(backend=backend, num_executors=2,
                          cores_per_executor=2)
    with APSPEngine(config) as engine:
        result = engine.solve(adjacency, SolveRequest(
            solver="blocked-cb", block_size=8, algebra=algebra, paths=True))
    check_all_pairs(algebra, adjacency, result.distances, result.parents)


def test_paths_float32_dtype_preserved():
    adjacency = graph_for_algebra(N, 3, "shortest-path")
    with APSPEngine() as engine:
        result = engine.solve(adjacency, SolveRequest(
            solver="blocked-im", block_size=8, dtype="float32", paths=True))
    assert result.distances.dtype == np.float32
    assert result.parents.dtype == np.int32
    check_all_pairs("shortest-path", adjacency, result.distances,
                    result.parents, dtype="float32")


def test_paths_sparse_ingestion():
    """CSR inputs cut straight into witnessed blocks (no densify)."""
    scipy_sparse = pytest.importorskip("scipy.sparse")
    del scipy_sparse
    from repro.graph.sparse import erdos_renyi_sparse, sparse_to_dense
    csr = erdos_renyi_sparse(40, seed=9)
    with APSPEngine() as engine:
        result = engine.solve(csr, SolveRequest(solver="blocked-cb",
                                                block_size=12, paths=True))
    dense = sparse_to_dense(csr)
    check_all_pairs("shortest-path", dense, result.distances, result.parents)


@pytest.mark.parametrize("algebra", ALGEBRAS)
def test_sequential_paths(algebra):
    adjacency = graph_for_algebra(N, SEED + 2, algebra)
    d1, p1 = floyd_warshall_numpy(adjacency, algebra=algebra, paths=True)
    check_all_pairs(algebra, adjacency, d1, p1)
    d2, p2 = floyd_warshall_blocked(adjacency, 9, algebra=algebra, paths=True)
    check_all_pairs(algebra, adjacency, d2, p2)
    d3, p3 = repeated_squaring_apsp(adjacency, algebra=algebra, paths=True)
    check_all_pairs(algebra, adjacency, d3, p3)


def test_sequential_repeated_squaring_paths_with_iterations():
    adjacency = graph_for_algebra(12, 0, "shortest-path")
    distances, parents, iterations = repeated_squaring_apsp(
        adjacency, paths=True, return_iterations=True)
    assert iterations >= 1
    check_all_pairs("shortest-path", adjacency, distances, parents)


def test_longest_path_paths_on_dag():
    """The DAG-only algebra tracks witnesses in the sequential solvers."""
    rng = np.random.default_rng(11)
    n = 16
    adjacency = np.full((n, n), np.inf)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.3:
                adjacency[u, v] = rng.uniform(1.0, 4.0)
    np.fill_diagonal(adjacency, 0.0)
    distances, parents = floyd_warshall_numpy(adjacency,
                                              algebra="longest-path",
                                              paths=True)
    alg = get_algebra("longest-path")
    prepared = alg.prepare_adjacency(adjacency)
    zero = alg.zero_like(distances.dtype)
    for i in range(n):
        for j in range(n):
            if i == j or distances[i, j] == zero:
                continue
            path = W.reconstruct_path(parents, i, j)
            fold = W.path_weight(prepared, path, alg)
            assert np.isclose(float(fold), float(distances[i, j]))


# ---------------------------------------------------------------------------
# Request / plan / result plumbing
# ---------------------------------------------------------------------------
class TestPathsPlumbing:
    def test_request_resolves_paths_storage(self):
        request = SolveRequest(algebra="reachability", paths=True)
        assert request.paths and request.storage == "dense"
        assert "paths" in request.describe()
        assert request.to_options().paths

    def test_request_rejects_packed_paths(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(algebra="reachability", storage="packed", paths=True)

    def test_plan_carries_paths(self):
        from repro.core.registry import get_solver_class
        adjacency = graph_for_algebra(16, 0, "shortest-path")
        solver = get_solver_class("blocked-cb")(
            options=SolveRequest(paths=True, block_size=8).to_options())
        plan = solver.prepare(adjacency)
        assert plan.paths
        assert plan.describe()["paths"] is True
        records = list(plan.block_records())
        assert all(W.is_witnessed(block) for _, block in records)

    def test_result_without_parents_raises(self):
        result = solve_apsp(graph_for_algebra(12, 0, "shortest-path"),
                            solver="blocked-cb", block_size=4)
        assert not result.has_paths
        with pytest.raises(SolverError):
            result.reconstruct_path(0, 1)

    def test_summary_marks_paths(self):
        adjacency = graph_for_algebra(12, 0, "shortest-path")
        with APSPEngine() as engine:
            result = engine.solve(adjacency, SolveRequest(paths=True,
                                                          block_size=4))
        assert "+paths" in result.summary()
        assert result.reconstruct_path(0, 0) == [0]

    def test_validate_result_still_passes_with_paths(self):
        adjacency = graph_for_algebra(16, 1, "widest-path")
        with APSPEngine() as engine:
            result = engine.solve(adjacency, SolveRequest(
                algebra="widest-path", paths=True, validate=True,
                block_size=8))
        assert result.has_paths

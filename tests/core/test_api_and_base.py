"""Tests for the public API front-end and the solver base utilities."""

import numpy as np
import pytest

from repro import APSPResult, available_solvers, solve_apsp
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError, SolverError, ValidationError
from repro.core.api import get_solver_class
from repro.core.base import SolverOptions, SparkAPSPSolver, auto_block_size
from repro.core.blocked_collect_broadcast import BlockedCollectBroadcastSolver
from repro.core.blocked_inmemory import BlockedInMemorySolver
from repro.core.floyd_warshall_2d import FloydWarshall2DSolver
from repro.core.repeated_squaring import RepeatedSquaringSolver


class TestRegistry:
    def test_available_solvers(self):
        assert set(available_solvers()) == {
            "repeated-squaring", "fw-2d", "blocked-im", "blocked-cb"}

    @pytest.mark.parametrize("alias,cls", [
        ("blocked-cb", BlockedCollectBroadcastSolver),
        ("cb", BlockedCollectBroadcastSolver),
        ("Blocked_CB", BlockedCollectBroadcastSolver),
        ("blocked-im", BlockedInMemorySolver),
        ("im", BlockedInMemorySolver),
        ("fw-2d", FloydWarshall2DSolver),
        ("fw2d", FloydWarshall2DSolver),
        ("repeated-squaring", RepeatedSquaringSolver),
        ("rs", RepeatedSquaringSolver),
    ])
    def test_aliases(self, alias, cls):
        assert get_solver_class(alias) is cls

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            get_solver_class("bellman-ford")


class TestSolveApsp:
    def test_default_solver_is_blocked_cb(self, small_er_graph, small_er_reference):
        result = solve_apsp(small_er_graph, block_size=12)
        assert result.solver == "blocked-cb"
        assert np.allclose(result.distances, small_er_reference)

    def test_all_options_forwarded(self, small_er_graph):
        config = EngineConfig(num_executors=2, cores_per_executor=2)
        result = solve_apsp(small_er_graph, solver="blocked-im", block_size=16,
                            partitioner="PH", partitions_per_core=3, config=config)
        assert result.partitioner == "PH"
        assert result.block_size == 16
        assert result.num_partitions == 12

    def test_num_partitions_override(self, small_er_graph):
        result = solve_apsp(small_er_graph, solver="blocked-cb", block_size=16,
                            num_partitions=5)
        assert result.num_partitions == 5

    def test_validate_flag(self, small_er_graph):
        result = solve_apsp(small_er_graph, block_size=16, validate=True)
        assert isinstance(result, APSPResult)

    def test_asymmetric_input_rejected_under_triangular_layout(self):
        # layout="auto" (the default) would solve this on the full grid;
        # explicitly requesting the mirrored triangular storage must reject
        # the asymmetric input rather than silently symmetrize it.
        adj = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            solve_apsp(adj, layout="triangular")

    def test_asymmetric_input_solves_under_auto_layout(self):
        adj = np.array([[0.0, 1.0], [2.0, 0.0]])
        result = solve_apsp(adj)
        assert result.layout == "full"
        assert np.array_equal(result.distances, adj)

    def test_negative_weight_rejected(self):
        adj = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValidationError):
            solve_apsp(adj)

    def test_auto_block_size_used_when_omitted(self, small_er_graph, small_er_reference):
        result = solve_apsp(small_er_graph)
        assert result.block_size >= 1
        assert np.allclose(result.distances, small_er_reference)


class TestAutoBlockSize:
    def test_within_bounds(self):
        assert 1 <= auto_block_size(100, total_cores=8) <= 100

    def test_scales_down_with_more_cores(self):
        assert auto_block_size(10_000, total_cores=1024) <= auto_block_size(10_000, total_cores=4)

    def test_small_n(self):
        assert auto_block_size(3, total_cores=64) >= 1

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            auto_block_size(0, total_cores=4)


class TestSolverOptionsAndResult:
    def test_options_defaults(self):
        opts = SolverOptions()
        assert opts.partitioner == "MD"
        assert opts.partitions_per_core == 2

    def test_result_gops(self):
        result = APSPResult(distances=np.zeros((4, 4)), solver="x", n=4, block_size=2,
                            q=2, iterations=2, num_partitions=2, partitioner="MD",
                            pure=True, elapsed_seconds=2.0)
        assert result.gops == pytest.approx(64 / 2.0 / 1e9)

    def test_validate_result_rejects_bad_diagonal(self):
        bad = np.ones((4, 4))
        result = APSPResult(distances=bad, solver="x", n=4, block_size=2, q=2,
                            iterations=1, num_partitions=1, partitioner="MD",
                            pure=True, elapsed_seconds=1.0)
        with pytest.raises(SolverError):
            SparkAPSPSolver.validate_result(result)

    def test_validate_result_rejects_asymmetry(self):
        bad = np.zeros((4, 4))
        bad[0, 1] = 1.0
        result = APSPResult(distances=bad, solver="x", n=4, block_size=2, q=2,
                            iterations=1, num_partitions=1, partitioner="MD",
                            pure=True, elapsed_seconds=1.0)
        with pytest.raises(SolverError):
            SparkAPSPSolver.validate_result(result)

    def test_validate_result_rejects_triangle_violation(self):
        d = np.array([[0.0, 10.0, 1.0],
                      [10.0, 0.0, 1.0],
                      [1.0, 1.0, 0.0]])
        result = APSPResult(distances=d, solver="x", n=3, block_size=1, q=3,
                            iterations=1, num_partitions=1, partitioner="MD",
                            pure=True, elapsed_seconds=1.0)
        with pytest.raises(SolverError):
            SparkAPSPSolver.validate_result(result, sample=1000)

    def test_validate_result_accepts_correct_matrix(self, small_er_graph, small_er_reference):
        result = APSPResult(distances=small_er_reference, solver="x", n=48, block_size=12,
                            q=4, iterations=4, num_partitions=4, partitioner="MD",
                            pure=True, elapsed_seconds=1.0)
        SparkAPSPSolver.validate_result(result)


class TestExternalContextReuse:
    def test_solver_can_share_a_context(self, small_er_graph, small_er_reference):
        from repro.spark.context import SparkContext
        config = EngineConfig(num_executors=2, cores_per_executor=2)
        with SparkContext(config) as sc:
            solver = BlockedCollectBroadcastSolver(config=config,
                                                   options=SolverOptions(block_size=16))
            first = solver.solve(small_er_graph, context=sc)
            second = solver.solve(small_er_graph, context=sc)
            assert np.allclose(first.distances, second.distances)
            assert np.allclose(first.distances, small_er_reference)
            # The context stays usable after the solves.
            assert sc.parallelize([1, 2, 3]).count() == 3

"""Dynamic closure maintenance: ``engine.update`` against full re-closures.

The acceptance surface of the update path: a batch of edge insertions,
relaxations, increases and deletions applied incrementally to the cached
closure must land on *exactly* the closure a from-scratch solve of the
mutated adjacency produces — across algebras, storage policies, layouts and
witness tracking — while the report and the cost model tell the truth about
which path ran.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.runner import (graph_for_algebra, reference_closure,
                                update_batch_for_algebra)
from repro.common.errors import ConfigurationError, SolverError, ValidationError
from repro.core import dynamic
from repro.core.engine import APSPEngine
from repro.core.request import EdgeUpdate, SolveRequest
from repro.linalg.algebra import get_algebra
from repro.linalg.bitset import PackedBlock
from repro.linalg.witness import NO_VERTEX, consistent_parent_rows, path_weight

#: Algebras whose rank-1 sweeps are exact (absorptive ⊕); longest-path is
#: excluded by construction and covered by its own refusal tests below.
INCREMENTAL_ALGEBRAS = ("shortest-path", "widest-path", "most-reliable",
                        "reachability")


def solve_kept(adjacency, request):
    """Solve with a kept closure and return ``(engine, state)``."""
    engine = APSPEngine()
    engine.solve(adjacency, request, keep_closure=True)
    return engine, engine.closure


def mixed_batch(state, rng, count):
    """Improvements, worsenings and deletions against ``state``'s adjacency."""
    n = state.n
    algebra = get_algebra(state.request.algebra)
    name = algebra.name
    existing = np.argwhere(
        (state.adjacency != algebra.zero_like(state.adjacency.dtype))
        & ~np.eye(n, dtype=bool))
    edges = []
    improving = update_batch_for_algebra(n, int(rng.integers(1 << 30)),
                                         name, count)
    for index in range(count):
        kind = int(rng.integers(3))
        if kind == 0 or existing.shape[0] == 0:
            edges.append(improving[index])
        else:
            u, v = (int(x) for x in existing[int(rng.integers(existing.shape[0]))])
            if kind == 1:
                edges.append(EdgeUpdate(u, v, None))          # delete
            elif name == "reachability":
                edges.append(EdgeUpdate(u, v, True))          # noop re-add
            elif name == "most-reliable":
                edges.append(EdgeUpdate(u, v, 0.05))          # worsen
            elif name == "widest-path":
                edges.append(EdgeUpdate(u, v, 0.5))           # narrower
            else:
                edges.append(EdgeUpdate(u, v, 500.0))         # longer
    return edges


class TestIncrementalEqualsResolve:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000),
           algebra=st.sampled_from(INCREMENTAL_ALGEBRAS),
           n=st.integers(8, 28),
           count=st.integers(1, 6))
    def test_mixed_batch_matches_full_reclosure(self, seed, algebra, n, count):
        adjacency = graph_for_algebra(n, seed, algebra)
        request = SolveRequest(solver="blocked-cb",
                               block_size=max(4, n // 3), algebra=algebra)
        engine, state = solve_kept(adjacency, request)
        rng = np.random.default_rng(seed + 1)
        report = engine.update(mixed_batch(state, rng, count),
                               force="incremental")
        assert report.mode == "incremental"
        expected = reference_closure(state.adjacency, algebra)
        if state.distances.dtype == np.bool_:
            assert np.array_equal(state.distances, expected)
        else:
            assert np.allclose(state.distances, expected)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 24))
    def test_directed_full_grid(self, seed, n):
        adjacency = graph_for_algebra(n, seed, directed=True)
        request = SolveRequest(solver="blocked-cb", block_size=max(4, n // 3),
                               layout="full", directed=True)
        engine, state = solve_kept(adjacency, request)
        assert not state.undirected
        rng = np.random.default_rng(seed + 1)
        engine.update(mixed_batch(state, rng, 4), force="incremental")
        assert np.allclose(state.distances,
                           reference_closure(state.adjacency))
        # Directed: only the stored orientation changed.
        assert np.isinf(state.adjacency).any()

    def test_packed_storage_stays_word_consistent(self):
        adjacency = graph_for_algebra(20, 3, "reachability")
        request = SolveRequest(solver="blocked-cb", block_size=8,
                               algebra="reachability", storage="packed")
        engine, state = solve_kept(adjacency, request)
        existing = np.argwhere(state.adjacency & ~np.eye(20, dtype=bool))
        u, v = (int(x) for x in existing[0])
        engine.update([EdgeUpdate(2, 17, True), EdgeUpdate(u, v, None)],
                      force="incremental")
        assert np.array_equal(state.distances,
                              reference_closure(state.adjacency, "reachability"))
        assert np.array_equal(state.packed.words,
                              PackedBlock.from_dense(state.distances).words)

    def test_float32_closure_updates_in_dtype(self):
        adjacency = graph_for_algebra(16, 5)
        request = SolveRequest(solver="blocked-cb", block_size=8,
                               dtype="float32")
        engine, state = solve_kept(adjacency, request)
        engine.update([EdgeUpdate(0, 9, 0.125)], force="incremental")
        assert state.distances.dtype == np.float32
        assert np.allclose(
            state.distances,
            reference_closure(state.adjacency, dtype="float32"), rtol=1e-5)


class TestWitnessedUpdates:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 20),
           count=st.integers(1, 4))
    def test_parents_stay_globally_consistent(self, seed, n, count):
        adjacency = graph_for_algebra(n, seed)
        request = SolveRequest(solver="blocked-cb", block_size=max(4, n // 3),
                               paths=True)
        engine, state = solve_kept(adjacency, request)
        rng = np.random.default_rng(seed + 1)
        engine.update(mixed_batch(state, rng, count), force="incremental")
        expected = reference_closure(state.adjacency)
        assert np.allclose(state.distances, expected)
        assert consistent_parent_rows(state.parents).all()
        # Every parent chain realizes the optimal weight it claims.
        algebra = get_algebra("shortest-path")
        for i in range(n):
            for j in range(n):
                if i == j or np.isinf(state.distances[i, j]):
                    continue
                path = [j]
                while path[-1] != i:
                    path.append(int(state.parents[i, path[-1]]))
                path.reverse()
                assert np.isclose(
                    path_weight(state.adjacency, path, algebra),
                    expected[i, j])

    def test_unreachable_cells_keep_no_vertex(self):
        adjacency = np.full((6, 6), np.inf)
        np.fill_diagonal(adjacency, 0.0)
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        request = SolveRequest(solver="blocked-cb", block_size=3, paths=True)
        engine, state = solve_kept(adjacency, request)
        engine.update([EdgeUpdate(2, 3, 2.0)], force="incremental")
        assert state.parents[0, 4] == NO_VERTEX
        assert state.parents[2, 3] == 2 and state.distances[2, 3] == 2.0


class TestModeSelection:
    def test_requires_cached_closure(self):
        with pytest.raises(SolverError):
            APSPEngine().update([EdgeUpdate(0, 1, 1.0)])

    def test_invalid_force_rejected(self):
        adjacency = graph_for_algebra(12, 0)
        engine, _ = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=4))
        with pytest.raises(ConfigurationError):
            engine.update([EdgeUpdate(0, 1, 1.0)], force="eventually")

    def test_out_of_range_endpoint_rejected(self):
        adjacency = graph_for_algebra(12, 0)
        engine, _ = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=4))
        with pytest.raises(ValidationError):
            engine.update([EdgeUpdate(0, 12, 1.0)])

    def test_self_loop_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            EdgeUpdate(3, 3, 1.0)

    def test_empty_batch_is_a_noop_report(self):
        adjacency = graph_for_algebra(12, 0)
        engine, state = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                           block_size=4))
        before = state.distances.copy()
        report = engine.update([])
        assert report.mode == "noop" and report.edges == 0
        assert np.array_equal(state.distances, before)

    def test_deleting_a_non_edge_is_a_noop(self):
        adjacency = np.full((8, 8), np.inf)
        np.fill_diagonal(adjacency, 0.0)
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        engine, state = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                           block_size=4))
        report = engine.update([(5, 6)])
        assert report.noops == 1 and report.changed_rows == 0

    def test_large_batch_takes_the_resolve_path(self):
        n = 24
        adjacency = graph_for_algebra(n, 2)
        engine, state = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                           block_size=8))
        batch = update_batch_for_algebra(n, 11, count=n * 2)
        report = engine.update(batch)
        assert report.mode == "resolve"
        assert "break-even" in report.reason
        assert np.allclose(state.distances, reference_closure(state.adjacency))

    def test_single_edge_takes_the_incremental_path(self):
        adjacency = graph_for_algebra(32, 2)
        engine, state = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                           block_size=8))
        report = engine.update([EdgeUpdate(1, 30, 0.05)])
        assert report.mode == "incremental"
        assert report.break_even_edges and report.break_even_edges > 1

    def test_longest_path_refuses_incremental(self):
        adjacency = graph_for_algebra(12, 4, "longest-path")
        request = SolveRequest(solver="blocked-cb", block_size=4,
                               algebra="longest-path", directed=True,
                               layout="full")
        engine, state = solve_kept(adjacency, request)
        with pytest.raises(ConfigurationError):
            engine.update([EdgeUpdate(0, 5, 25.0)], force="incremental")
        report = engine.update([EdgeUpdate(0, 5, 25.0)])   # auto: re-solve
        assert report.mode == "resolve"
        assert np.allclose(state.distances,
                           reference_closure(state.adjacency, "longest-path"))

    def test_oversized_affected_set_falls_back_mid_batch(self):
        # A path graph routes every pair through every interior edge, so
        # deleting one affects all rows and trips the affected-set guard.
        n = 16
        adjacency = np.full((n, n), np.inf)
        np.fill_diagonal(adjacency, 0.0)
        for i in range(n - 1):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        engine, state = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                           block_size=4))
        report = engine.update([EdgeUpdate(7, 8, None)])
        assert report.mode == "resolve" and "touches" in report.reason
        assert np.isinf(state.distances[0, n - 1])

    def test_update_stats_counters(self):
        adjacency = graph_for_algebra(16, 2)
        engine, _ = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=8))
        engine.update([EdgeUpdate(0, 9, 0.05)])
        engine.update(update_batch_for_algebra(16, 3, count=40))
        stats = engine.stats()["updates"]
        assert stats["batches"] == 2 and stats["edges"] == 41
        assert stats["incremental"] == 1 and stats["resolves"] == 1
        assert stats["update_seconds"] > 0


class TestCostModelEstimates:
    def test_break_even_scales_with_n(self):
        small = graph_for_algebra(16, 0)
        large = graph_for_algebra(64, 0)
        _, s_small = solve_kept(small, SolveRequest(solver="blocked-cb",
                                                    block_size=8))
        _, s_large = solve_kept(large, SolveRequest(solver="blocked-cb",
                                                    block_size=16))
        est_small = dynamic.update_estimates(s_small, 1)
        est_large = dynamic.update_estimates(s_large, 1)
        assert est_large["break_even_edges"] > est_small["break_even_edges"]
        assert est_small["incremental_seconds"] < est_small["resolve_seconds"]

    def test_report_carries_estimates(self):
        adjacency = graph_for_algebra(16, 0)
        engine, _ = solve_kept(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=8))
        report = engine.update([EdgeUpdate(0, 5, 0.1)])
        assert report.estimated_incremental_seconds is not None
        assert report.estimated_resolve_seconds is not None
        assert report.describe()


class TestServingCoherence:
    def test_served_routes_reflect_updates(self):
        adjacency = graph_for_algebra(24, 6)
        engine = APSPEngine()
        service = engine.serve(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=8))
        before = service.route(0, 17)
        report = engine.update([EdgeUpdate(0, 17, 0.01)])
        after = service.route(0, 17)
        assert after.distance <= before.distance
        assert np.isclose(after.distance, 0.01)
        stats = service.stats()
        # Only rows actually sitting in the cache count as invalidations:
        # the `before` query cached exactly source 0's parent row.
        assert stats["cache_invalidations"] == 1
        assert report.changed_rows > 0

    def test_resolve_update_keeps_service_bound(self):
        n = 20
        adjacency = graph_for_algebra(n, 6)
        engine = APSPEngine()
        service = engine.serve(adjacency, SolveRequest(solver="blocked-cb",
                                                       block_size=4))
        engine.update(update_batch_for_algebra(n, 9, count=n * 2))
        # The resolve path rewrote distances in place; routes stay coherent.
        expected = reference_closure(engine.closure.adjacency)
        route = service.route(3, 11)
        assert np.isclose(route.distance, expected[3, 11])

"""Transactional updates + degraded-mode serving tests.

``engine.update()`` is all-or-nothing: when any part of a batch fails, the
cached :class:`ClosureState` is rolled back to its pre-batch snapshot (same
ndarray identity, so serving bindings survive) and a bound
:class:`RouteService` keeps answering from the last good closure, surfacing
``degraded`` / ``last_error`` / ``staleness`` through ``stats()`` until a
later batch succeeds.
"""

import numpy as np
import pytest

from repro.common.config import EngineConfig
from repro.common.errors import SolverError
from repro.core import dynamic
from repro.core.engine import APSPEngine
from repro.core.request import SolveRequest
from repro.graph.generators import erdos_renyi_adjacency

N = 40
REQUEST = SolveRequest(solver="blocked-cb", block_size=8)


def _engine():
    return APSPEngine(EngineConfig(backend="serial"))


@pytest.fixture
def adjacency():
    return erdos_renyi_adjacency(N, seed=9)


class _InjectedUpdateFailure(SolverError):
    pass


@pytest.fixture
def failing_incremental(monkeypatch):
    """Make the next incremental update blow up mid-apply (after mutation)."""
    real = dynamic.apply_incremental
    state = {"arm": 0}

    def wrapper(closure, batch, **kwargs):
        if state["arm"] > 0:
            state["arm"] -= 1
            # Mutate first so the test proves rollback, not merely "no-op".
            closure.distances[0, :] = closure.algebra.zero
            raise _InjectedUpdateFailure("injected mid-update failure")
        return real(closure, batch, **kwargs)

    monkeypatch.setattr(dynamic, "apply_incremental", wrapper)
    return state


class TestTransactionalRollback:
    def test_failed_update_leaves_closure_untouched(self, adjacency,
                                                    failing_incremental):
        with _engine() as engine:
            engine.solve(adjacency, REQUEST, keep_closure=True)
            state = engine.closure
            before = np.array(state.distances, copy=True)
            distances_id = id(state.distances)
            failing_incremental["arm"] = 1
            with pytest.raises(_InjectedUpdateFailure):
                engine.update([(0, 5, 0.01)])
            assert np.array_equal(state.distances, before)
            assert id(state.distances) == distances_id  # binding preserved
            assert engine.stats()["updates"]["failed"] == 1
            assert engine.stats()["updates"]["batches"] == 0

    def test_update_still_works_after_rollback(self, adjacency,
                                               failing_incremental):
        with _engine() as engine:
            engine.solve(adjacency, REQUEST, keep_closure=True)
            failing_incremental["arm"] = 1
            with pytest.raises(_InjectedUpdateFailure):
                engine.update([(0, 5, 0.01)])
            report = engine.update([(0, 5, 0.01)])
            assert report.mode == "incremental"
            assert engine.closure.distances[0, 5] == pytest.approx(0.01)

    def test_snapshot_restore_roundtrip_is_exact(self, adjacency):
        with _engine() as engine:
            engine.solve(adjacency, REQUEST, keep_closure=True)
            state = engine.closure
            snapshot = state.snapshot()
            before = np.array(state.distances, copy=True)
            state.distances[:] = 0.0
            state.updates_applied += 5
            state.restore(snapshot)
            assert np.array_equal(state.distances, before)
            assert state.updates_applied == snapshot["updates_applied"]


class TestDegradedServing:
    def test_failed_update_degrades_but_keeps_serving(self, adjacency,
                                                      failing_incremental):
        with _engine() as engine:
            service = engine.serve(adjacency, REQUEST)
            reach = [d for d in range(1, N)
                     if np.isfinite(service.distances[0, d])]
            clean_answer = service.route(0, reach[0])
            failing_incremental["arm"] = 1
            with pytest.raises(_InjectedUpdateFailure):
                engine.update([(0, 5, 0.01)])
            serve_stats = engine.stats()["serve"]
            assert serve_stats["degraded"] is True
            assert "_InjectedUpdateFailure" in serve_stats["last_error"]
            assert serve_stats["staleness"]["missed_update_batches"] == 1
            assert serve_stats["staleness"]["degraded_seconds"] >= 0.0
            # Still serving the last good closure, bit-identically.
            again = service.route(0, reach[0])
            assert again.distance == clean_answer.distance
            assert again.path == clean_answer.path

    def test_successful_update_clears_degradation(self, adjacency,
                                                  failing_incremental):
        with _engine() as engine:
            service = engine.serve(adjacency, REQUEST)
            failing_incremental["arm"] = 1
            with pytest.raises(_InjectedUpdateFailure):
                engine.update([(0, 5, 0.01)])
            assert service.stats()["degraded"] is True
            engine.update([(0, 5, 0.01)])
            stats = service.stats()
            assert stats["degraded"] is False
            assert stats["last_error"] is None
            assert stats["staleness"]["missed_update_batches"] == 0
            assert service.route(0, 5).distance == pytest.approx(0.01)

    def test_repeated_failures_accumulate_staleness(self, adjacency,
                                                    failing_incremental):
        with _engine() as engine:
            service = engine.serve(adjacency, REQUEST)
            failing_incremental["arm"] = 2
            for _ in range(2):
                with pytest.raises(_InjectedUpdateFailure):
                    engine.update([(0, 5, 0.01)])
            stats = service.stats()
            assert stats["staleness"]["missed_update_batches"] == 2
            assert engine.stats()["updates"]["failed"] == 2

    def test_healthy_service_reports_not_degraded(self, adjacency):
        with _engine() as engine:
            service = engine.serve(adjacency, REQUEST)
            stats = service.stats()
            assert stats["degraded"] is False
            assert stats["last_error"] is None
            assert stats["staleness"]["missed_update_batches"] == 0
            assert stats["staleness"]["degraded_seconds"] == 0.0

    def test_real_fault_during_forced_resolve_degrades(self, adjacency):
        """End-to-end: injected task faults exhaust retries mid-re-solve."""
        from repro.common.retry import BackoffPolicy
        from repro.spark.faults import FaultPlan

        # First, count the tasks a clean serve-solve launches, so the fault
        # can be aimed at the *resolve* (the update path), not the solve.
        with _engine() as probe:
            probe.serve(adjacency, REQUEST)
            clean_tasks = probe.metrics["tasks_launched"]
        config = EngineConfig(backend="serial",
                              retry=BackoffPolicy(max_attempts=1,
                                                  base_seconds=0.0,
                                                  jitter=0.0, seed=1))
        plan = FaultPlan(fail_task_indices={clean_tasks})
        with APSPEngine(config, fault_plan=plan) as engine:
            service = engine.serve(adjacency, REQUEST)
            before = np.array(service.distances, copy=True)
            with pytest.raises(SolverError):
                engine.update([(0, 5, 0.01)], force="resolve")
            assert service.stats()["degraded"] is True
            assert np.array_equal(service.distances, before)
            # Recovery: the next (incremental) batch succeeds and heals.
            engine.update([(0, 5, 0.01)])
            assert service.stats()["degraded"] is False

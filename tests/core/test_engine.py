"""Tests for the session API: APSPEngine, APSPJob, SolveRequest, and the registry."""

import os

import numpy as np
import pytest

from repro import APSPEngine, SolveRequest, available_solvers, solve_apsp
from repro.common.config import EngineConfig
from repro.common.errors import ConfigurationError
from repro.core.base import SolvePlan, SparkAPSPSolver
from repro.core.blocked_collect_broadcast import BlockedCollectBroadcastSolver
from repro.core.blocked_inmemory import BlockedInMemorySolver
from repro.core.registry import (get_solver_class, register_solver, solver_catalog,
                                 solver_info, unregister_solver)


class TestSolveRequest:
    def test_defaults(self):
        req = SolveRequest()
        assert req.solver == "blocked-cb"
        assert req.partitioner == "MD"
        assert req.block_size is None

    def test_alias_canonicalised_at_construction(self):
        assert SolveRequest(solver="cb").solver == "blocked-cb"
        assert SolveRequest(solver="Blocked_IM").solver == "blocked-im"
        assert SolveRequest(solver="rs").solver == "repeated-squaring"

    def test_partitioner_canonicalised(self):
        assert SolveRequest(partitioner="portable_hash").partitioner == "PH"
        assert SolveRequest(partitioner="md").partitioner == "MD"

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(solver="bellman-ford")

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ConfigurationError):
            SolveRequest(partitioner="ROUND_ROBIN")

    @pytest.mark.parametrize("kwargs", [
        {"block_size": 0},
        {"block_size": -4},
        {"partitions_per_core": 0},
        {"num_partitions": 0},
    ])
    def test_invalid_numeric_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SolveRequest(**kwargs)

    def test_coerce_routes_unknown_keywords_to_extra(self):
        req = SolveRequest.coerce(None, solver="im", custom_knob=7)
        assert req.solver == "blocked-im"
        assert req.extra == {"custom_knob": 7}

    def test_coerce_merges_explicit_extra_flat(self):
        req = SolveRequest.coerce(None, solver="im", extra={"x": 1}, custom_knob=7)
        assert req.extra == {"x": 1, "custom_knob": 7}  # no nested {'extra': ...}

    def test_coerce_overrides_existing_request(self):
        base = SolveRequest(solver="blocked-im", block_size=8)
        derived = SolveRequest.coerce(base, validate=True)
        assert derived.block_size == 8 and derived.validate
        assert not base.validate  # original untouched

    def test_to_options_round_trip(self):
        req = SolveRequest(solver="blocked-im", block_size=16, partitioner="PH",
                           partitions_per_core=3, num_partitions=5)
        opts = req.to_options()
        assert (opts.block_size, opts.partitioner, opts.partitions_per_core,
                opts.num_partitions) == (16, "PH", 3, 5)


class TestRegistry:
    def test_metadata_for_builtins(self):
        info = solver_info("cb")
        assert info.name == "blocked-cb"
        assert info.cls is BlockedCollectBroadcastSolver
        assert info.pure is False
        assert "cb" in info.aliases and info.description

    def test_catalog_lists_all_builtins(self):
        names = [info.name for info in solver_catalog()]
        assert names == sorted(available_solvers())
        assert {"blocked-cb", "blocked-im", "fw-2d", "repeated-squaring"} <= set(names)

    def test_register_and_unregister_custom_solver(self, small_er_graph,
                                                   small_er_reference):
        @register_solver(aliases=("my-im",), description="registry test double")
        class CustomSolver(BlockedInMemorySolver):
            name = "custom-im"

        try:
            assert "custom-im" in available_solvers()
            assert get_solver_class("my-im") is CustomSolver
            result = solve_apsp(small_er_graph, solver="custom-im", block_size=16)
            assert np.allclose(result.distances, small_er_reference)
        finally:
            unregister_solver("custom-im")
        assert "custom-im" not in available_solvers()
        with pytest.raises(ConfigurationError):
            get_solver_class("my-im")

    def test_abstract_class_cannot_register(self):
        with pytest.raises(ConfigurationError):
            register_solver(SparkAPSPSolver)

    def test_alias_collision_rejected_without_side_effects(self):
        with pytest.raises(ConfigurationError):
            @register_solver(aliases=("cb",))
            class Clashing(BlockedInMemorySolver):
                name = "clashing"
        # The failed registration left no trace and did not steal the alias.
        assert "clashing" not in available_solvers()
        assert get_solver_class("cb") is BlockedCollectBroadcastSolver

    def test_alias_cannot_shadow_canonical_name(self):
        with pytest.raises(ConfigurationError):
            @register_solver(aliases=("blocked-cb",))
            class Evil(BlockedInMemorySolver):
                name = "evil"
        assert "evil" not in available_solvers()
        assert get_solver_class("blocked-cb") is BlockedCollectBroadcastSolver

    def test_unregister_unknown_name_is_noop(self):
        before = available_solvers()
        unregister_solver("no-such-solver")
        assert available_solvers() == before
        assert get_solver_class("cb") is BlockedCollectBroadcastSolver


class TestEngineSession:
    def test_context_reused_across_solves(self, small_er_graph, small_er_reference,
                                          engine_config):
        with APSPEngine(engine_config) as engine:
            first_context = engine.context
            a = engine.solve(small_er_graph, SolveRequest(solver="blocked-cb",
                                                          block_size=16))
            b = engine.solve(small_er_graph, SolveRequest(solver="blocked-im",
                                                          block_size=12))
            assert engine.context is first_context
            assert np.allclose(a.distances, small_er_reference)
            assert np.allclose(b.distances, small_er_reference)
            # Session metrics accumulate across the two solves...
            session_tasks = engine.metrics["tasks_launched"]
            assert session_tasks >= (a.metrics["tasks_launched"]
                                     + b.metrics["tasks_launched"])
            # ...while each result reports only its own delta.
            assert a.metrics["tasks_launched"] > 0
            assert b.metrics["tasks_launched"] > 0
            stats = engine.stats()
            assert stats["jobs_completed"] == 2 and stats["jobs_failed"] == 0

    def test_solve_accepts_loose_keywords(self, small_er_graph, small_er_reference):
        with APSPEngine() as engine:
            result = engine.solve(small_er_graph, solver="im", block_size=12)
            assert result.solver == "blocked-im"
            assert np.allclose(result.distances, small_er_reference)

    def test_solve_many_stable_job_ids(self, small_er_graph, small_er_reference):
        with APSPEngine() as engine:
            jobs = engine.solve_many([small_er_graph] * 3,
                                     SolveRequest(block_size=16))
            assert [j.job_id for j in jobs] == ["job-0001", "job-0002", "job-0003"]
            for job in jobs:
                assert job.status == "done"
                assert job.elapsed_seconds is not None and job.elapsed_seconds >= 0
                assert np.allclose(job.result().distances, small_er_reference)

    def test_solve_many_per_item_requests(self, small_er_graph, small_er_reference):
        items = [(small_er_graph, SolveRequest(solver="blocked-cb", block_size=16)),
                 (small_er_graph, SolveRequest(solver="fw-2d", block_size=12))]
        with APSPEngine() as engine:
            jobs = engine.solve_many(items)
            assert [j.result().solver for j in jobs] == ["blocked-cb", "fw-2d"]
            assert all(np.allclose(j.result().distances, small_er_reference)
                       for j in jobs)

    def test_submit_is_lazy_until_result(self, small_er_graph):
        with APSPEngine() as engine:
            job = engine.submit(small_er_graph, block_size=16)
            assert job.status == "pending" and not job.done
            result = job.result()
            assert job.status == "done" and job.done
            assert result is job.result()  # cached, not re-run
            assert engine.stats()["jobs_completed"] == 1

    def test_run_pending_executes_queued_jobs(self, small_er_graph):
        with APSPEngine() as engine:
            engine.submit(small_er_graph, block_size=16)
            engine.submit(small_er_graph, solver="im", block_size=12)
            ran = engine.run_pending()
            assert len(ran) == 2
            assert all(j.status == "done" for j in engine.jobs)
            assert engine.run_pending() == []

    def test_failed_job_recorded_not_raised_in_batch(self, small_er_graph):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])  # negative weight
        with APSPEngine() as engine:
            jobs = engine.solve_many([small_er_graph, bad],
                                     SolveRequest(block_size=16))
            assert jobs[0].status == "done"
            assert jobs[1].status == "failed" and jobs[1].error is not None
            with pytest.raises(Exception):
                jobs[1].result()
            stats = engine.stats()
            assert stats["jobs_completed"] == 1 and stats["jobs_failed"] == 1

    def test_plan_inspectable_without_running(self, small_er_graph):
        with APSPEngine() as engine:
            plan = engine.plan(small_er_graph, SolveRequest(solver="blocked-cb",
                                                            block_size=16))
            assert isinstance(plan, SolvePlan)
            described = plan.describe()
            assert described["n"] == 48 and described["block_size"] == 16
            assert described["q"] == 3 and described["num_blocks_upper"] == 6
            assert engine.stats()["jobs_submitted"] == 0  # planning is free

    def test_engine_restartable_via_explicit_start(self, small_er_graph,
                                                   small_er_reference):
        engine = APSPEngine()
        first = engine.solve(small_er_graph, block_size=16)  # lazy first start
        engine.stop()
        assert not engine.running
        # A stopped session refuses to silently spin up a new context...
        from repro.common.errors import SolverError
        with pytest.raises(SolverError):
            engine.solve(small_er_graph, block_size=16)
        # ...but an explicit start() reopens it.
        engine.start()
        second = engine.solve(small_er_graph, block_size=16)
        engine.stop()
        assert np.allclose(first.distances, second.distances)
        assert np.allclose(second.distances, small_er_reference)

    def test_pending_job_after_stop_raises_not_leaks(self, small_er_graph):
        from repro.common.errors import SolverError
        with APSPEngine() as engine:
            job = engine.submit(small_er_graph, block_size=16)
        with pytest.raises(SolverError):
            job.result()
        assert not engine.running  # no context was silently created

    def test_solve_does_not_retain_job_history(self, small_er_graph):
        with APSPEngine() as engine:
            engine.solve(small_er_graph, block_size=16)
            engine.solve(small_er_graph, block_size=16)
            assert engine.jobs == []  # synchronous solves leave no references
            stats = engine.stats()
            assert stats["jobs_submitted"] == 2 and stats["jobs_completed"] == 2

    def test_clear_jobs_prunes_history_keeps_stats(self, small_er_graph):
        with APSPEngine() as engine:
            engine.solve_many([small_er_graph] * 2, SolveRequest(block_size=16))
            pending = engine.submit(small_er_graph, block_size=16)
            finished = engine.clear_jobs()
            assert len(finished) == 2
            assert engine.jobs == [pending]
            assert engine.stats()["jobs_completed"] == 2

    def test_adjacency_released_after_execution(self, small_er_graph):
        with APSPEngine() as engine:
            job = engine.submit(small_er_graph, block_size=16)
            assert job.adjacency is not None
            job.result()
            assert job.adjacency is None  # input released once done

    def test_sharedfs_cleared_between_jobs(self, small_er_graph):
        with APSPEngine() as engine:
            engine.solve(small_er_graph, SolveRequest(solver="blocked-cb",
                                                      block_size=16))
            fs_root = engine.context.shared_fs.root
            leftover = [f for f in os.listdir(fs_root) if f.endswith(".blk")]
            assert leftover == []  # staged blocks dropped at the job boundary


class TestSharedFsOwnership:
    def test_config_never_mutated_and_tempdir_removed(self, small_er_graph):
        config = EngineConfig(num_executors=2, cores_per_executor=2)
        with APSPEngine(config) as engine:
            # blocked-cb stages data through the shared filesystem.
            engine.solve(small_er_graph, SolveRequest(solver="blocked-cb",
                                                      block_size=16))
            root = engine.context._shared_fs_root
            assert root is not None and os.path.isdir(root)
        assert config.shared_fs_dir is None  # config untouched
        assert not os.path.exists(root)      # temp dir cleaned up on stop

    def test_explicit_dir_preserved(self, small_er_graph, tmp_path):
        target = str(tmp_path / "gpfs")
        config = EngineConfig(num_executors=2, cores_per_executor=2,
                              shared_fs_dir=target)
        with APSPEngine(config) as engine:
            engine.solve(small_er_graph, SolveRequest(solver="blocked-cb",
                                                      block_size=16))
        assert os.path.isdir(target)  # user-provided dirs are never removed
        assert config.shared_fs_dir == target

    def test_two_sessions_from_one_config_get_private_tempdirs(self, small_er_graph):
        config = EngineConfig(num_executors=2, cores_per_executor=2)
        request = SolveRequest(solver="blocked-cb", block_size=16)
        with APSPEngine(config) as one:
            one.solve(small_er_graph, request)
            root_one = one.context._shared_fs_root
            with APSPEngine(config) as two:
                two.solve(small_er_graph, request)
                root_two = two.context._shared_fs_root
                assert root_one != root_two


class TestBackwardCompatibility:
    def test_solve_apsp_unchanged(self, small_er_graph, small_er_reference):
        result = solve_apsp(small_er_graph, solver="blocked-cb", block_size=16,
                            partitioner="MD", validate=True)
        assert result.solver == "blocked-cb"
        assert np.allclose(result.distances, small_er_reference)

    def test_solver_classes_still_solve_directly(self, small_er_graph,
                                                 small_er_reference):
        from repro.core.base import SolverOptions
        solver = BlockedInMemorySolver(options=SolverOptions(block_size=12))
        result = solver.solve(small_er_graph)
        assert np.allclose(result.distances, small_er_reference)

    def test_prepare_execute_split_equivalent_to_solve(self, small_er_graph,
                                                       small_er_reference):
        from repro.core.base import SolverOptions
        solver = BlockedCollectBroadcastSolver(options=SolverOptions(block_size=16))
        plan = solver.prepare(small_er_graph)
        result = solver.execute(plan)
        assert np.allclose(result.distances, small_er_reference)
        assert result.block_size == plan.block_size


class TestCliSolvers:
    def test_solvers_subcommand_lists_registry(self, capsys):
        from repro.experiments.cli import main
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in available_solvers():
            assert name in out
        assert "cb" in out and "description" in out

    def test_solvers_subcommand_csv(self, capsys):
        from repro.experiments.cli import main
        assert main(["solvers", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("name,")

    def test_solve_repeat_reuses_session(self, capsys):
        from repro.experiments.cli import main
        assert main(["solve", "--n", "40", "--block-size", "8",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "job-0001" in out and "job-0002" in out
        assert "2 job(s) on one context" in out


class TestValidationSamplingCap:
    def test_sample_count_independent_of_n(self, monkeypatch):
        from repro.core.base import APSPResult

        n = 200  # above the exhaustive-check threshold
        d = np.zeros((n, n))
        result = APSPResult(distances=d, solver="x", n=n, block_size=50, q=4,
                            iterations=1, num_partitions=4, partitioner="MD",
                            pure=True, elapsed_seconds=1.0)
        captured = {}
        real_rng = np.random.default_rng(0)

        def fake_rng(seed):
            class Wrapper:
                def integers(self, low, high, size):
                    captured["size"] = size
                    return real_rng.integers(low, high, size=size)
            return Wrapper()

        monkeypatch.setattr(np.random, "default_rng", fake_rng)
        SparkAPSPSolver.validate_result(result, sample=64)
        assert captured["size"] == (64, 3)  # exactly `sample`, not n*n
